"""Reactive rescheduling: watch the dynamic trace, re-map the future.

The static schedulers plan against the nominal cost model; the dynamic
regime (:mod:`repro.sim.dynamic`) then breaks the plan one-sidedly —
stragglers, failures, noise.  This module closes the loop with an *online*
policy built on the PR-8 incremental kernel:

1. **Observe** — simulate the current plan under the scenario and scan the
   trace for triggers: a processor failure (from the scenario, observable
   the moment it kills or strands work), a link failure (observable through
   lost messages), or a straggler — the first completed run on a processor
   whose ``observed / nominal`` duration ratio reaches ``threshold``.
2. **Pin** — at the earliest unhandled trigger time ``T``, every task that
   observably started before ``T`` is pinned: it keeps its placement from
   the current plan verbatim.  Started tasks are NEVER re-mapped — the
   pinned set is ancestor-closed (a task only starts after its predecessors
   finish) and a per-processor prefix of the plan (dispatch is in plan
   order), exactly the invariants the incremental engine's clean-prefix
   replay needs.
3. **Re-map** — the dirty suffix (everything else) is re-placed by the
   kernel's b-level list pass over the processors still alive at ``T``,
   choosing the processor that minimizes the *inflation-adjusted* finish
   ``start + nominal_duration × inflation[p]``, where ``inflation[p]`` is
   the worst observed slowdown ratio on ``p`` so far (floored by the
   machine's static ``1 / speed_factor``).  Candidates whose inbound routes
   cross an observed-dead link are avoided while any clean candidate
   exists.  The recorded plan stays purely nominal, so every round's plan
   passes the full SCH rule set.
4. **Causality** — each re-mapped task gets a dispatch floor of ``T`` in
   the next simulation: the controller decided at ``T``, so nothing it
   moved may start earlier, and the observed history before ``T`` replays
   bit-for-bit across rounds.  That prefix stability is what makes the
   whole loop deterministic (fuzzed by ``tests/sched/test_reactive_props``)
   and is why triggers can be handled in increasing time order.

The loop terminates because the handled-trigger key space is finite: one
straggler key per processor, one key per failure event.  The
``reactive_safe`` conformance oracle checks every invariant above on the
audit trail (``ReactiveResult.plans`` / ``traces`` / ``rounds``).
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.machine.scenario import LINK_FAIL, PROC_FAIL, FaultScenario
from repro.sched.core import KernelState, SchedKernel
from repro.sched.schedule import Schedule

if TYPE_CHECKING:  # runtime import is deferred to break the sched<->sim cycle
    from repro.sim.dynamic import DynamicTrace
    from repro.sim.trace import TaskRun

#: Scheduler-name suffix marking reactively re-mapped plans.
NAME_SUFFIX = "+reactive"

#: Default observed/nominal duration ratio that flags a straggler.
DEFAULT_THRESHOLD = 2.0

_ZERO_COUNTERS = {"reactive_remaps": 0, "reactive_rounds": 0}
_COUNTERS = dict(_ZERO_COUNTERS)
_COUNTER_LOCK = threading.Lock()


def reactive_counters() -> dict[str, int]:
    """Process-wide reactive-rescheduling counters (thread-safe snapshot)."""
    with _COUNTER_LOCK:
        return dict(_COUNTERS)


def reset_reactive_counters() -> None:
    with _COUNTER_LOCK:
        _COUNTERS.update(_ZERO_COUNTERS)


def _bump(name: str, delta: int = 1) -> None:
    with _COUNTER_LOCK:
        _COUNTERS[name] += delta


# --------------------------------------------------------------------- #
# triggers
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Trigger:
    """One observed reason to re-plan, at an observation time."""

    kind: str  # "failure" | "link" | "straggler"
    time: float
    proc: int | None = None
    link: tuple[int, int] | None = None

    def key(self) -> tuple:
        """Identity for the handled set — stragglers fire once per proc."""
        if self.kind == "straggler":
            return ("straggler", self.proc)
        return (self.kind, self.proc, self.link, self.time)

    def _sort_key(self) -> tuple:
        return (
            self.time,
            self.kind,
            -1 if self.proc is None else self.proc,
            self.link or (-1, -1),
        )


def detect_triggers(
    plan: Schedule,
    trace: DynamicTrace,
    scenario: FaultScenario,
    threshold: float,
) -> list[Trigger]:
    """Every trigger observable in one round, in time order.

    Failure events trigger at their timestamp (a dead processor or link is
    immediately observable); a straggler triggers when its first
    over-threshold run *completes* — the ratio is only measurable at finish.
    """
    triggers = [
        Trigger("failure" if e.kind == PROC_FAIL else "link",
                e.time, proc=e.proc, link=e.link)
        for e in scenario.events
        if e.kind in (PROC_FAIL, LINK_FAIL)
    ]
    first_straggler: dict[int, TaskRun] = {}
    for run in sorted(trace.runs, key=lambda r: (r.finish, r.proc, r.task)):
        if run.proc in first_straggler:
            continue
        nominal = plan.primary(run.task).duration
        if nominal > 1e-12 and (run.finish - run.start) / nominal >= threshold:
            first_straggler[run.proc] = run
    triggers.extend(
        Trigger("straggler", run.finish, proc=proc)
        for proc, run in first_straggler.items()
    )
    return sorted(triggers, key=Trigger._sort_key)


# --------------------------------------------------------------------- #
# one re-planning round
# --------------------------------------------------------------------- #
def _dirty_start(state: KernelState, ti: int, proc: int) -> float:
    """Nominal start for one re-mapped task on one candidate processor —
    the seam the ``reactive_safe`` mutation test corrupts to prove the
    oracle convicts precedence-breaking re-maps."""
    return state.earliest_start(ti, proc)


def _reactive_name(plan: Schedule) -> str:
    base = plan.scheduler or "fixed"
    return base if base.endswith(NAME_SUFFIX) else base + NAME_SUFFIX


def _replan(
    plan: Schedule,
    trace: DynamicTrace,
    scenario: FaultScenario,
    at: float,
) -> tuple[Schedule, frozenset[str], int]:
    """Pin everything started before ``at``; re-map the rest.

    Returns ``(new_plan, pinned_tasks, n_moved)`` where ``n_moved`` counts
    dirty tasks whose processor actually changed.
    """
    graph, machine = plan.graph, plan.machine
    kernel = SchedKernel(graph, machine)
    state = KernelState(kernel, scheduler_name=_reactive_name(plan))
    index = kernel.index
    prev = {t: plan.primary(t) for t in graph.task_names}

    started: set[str] = {r.task for r in trace.runs if r.start < at}
    killed = {r.task for r in trace.killed_runs if r.start < at}
    started |= killed
    pinned = frozenset(started)

    # A killed task never re-runs (started tasks are never re-mapped), so
    # its graph descendants are doomed: their data will never materialize.
    # They must stay in the plan (completeness) but are parked on a dead
    # processor AFTER all viable work — a doomed task sitting on an alive
    # timeline would block every task dispatched behind it.
    doomed: set[str] = set()
    if killed:
        reach = graph.transitive_closure()
        for k in killed:
            doomed |= reach[k]
        doomed -= pinned

    # Phase 1 — replay the pinned prefix verbatim (prev-start order, ties
    # topological), exactly like incremental rescheduling's clean phase.
    topo_pos = {t: i for i, t in enumerate(graph.topological_order())}
    for t in sorted(pinned, key=lambda t: (prev[t].start, topo_pos[t])):
        state.place(index[t], prev[t].proc, prev[t].start)

    # What the controller has observed by ``at``: dead hardware and the
    # worst slowdown ratio per processor (floored by the static factors).
    dead = scenario.failed_procs(at=at)
    dead_links = {
        e.link for e in scenario.events
        if e.kind == LINK_FAIL and e.link is not None and e.time <= at
    }
    inflation = [1.0 / machine.speed_factor(p) for p in machine.procs()]
    for run in trace.runs:
        if run.finish <= at:
            nominal = prev[run.task].duration
            if nominal > 1e-12:
                ratio = (run.finish - run.start) / nominal
                if ratio > inflation[run.proc]:
                    inflation[run.proc] = ratio
    alive = [p for p in machine.procs() if p not in dead]
    if not alive:  # a fully-dead fleet: keep mapping, nothing can run anyway
        alive = list(machine.procs())

    def dead_link_crossings(ti: int, proc: int) -> int:
        """In-edges of ``ti`` whose route to ``proc`` uses a dead link —
        each one is a message that will be lost, stranding the task."""
        crossings = 0
        for edge in kernel.in_edges[ti]:
            src_proc = state.primary(edge.src).proc
            if src_proc == proc:
                continue
            path = kernel.route(src_proc, proc)
            if any((min(a, b), max(a, b)) in dead_links for a, b in zip(path, path[1:])):
                crossings += 1
        return crossings

    def pick(ti: int) -> tuple[int, float]:
        duration = kernel.exec_time[ti]
        candidates = alive
        if dead_links:
            # Routing is fixed shortest-path, so the only way around a dead
            # link is placement: keep the candidates losing the fewest
            # input messages (0 when any clean processor exists).
            counts = {p: dead_link_crossings(ti, p) for p in alive}
            fewest = min(counts.values())
            candidates = [p for p in alive if counts[p] == fewest]
        best: tuple[float, int, float] | None = None
        for p in candidates:
            start = _dirty_start(state, ti, p)
            key = (start + duration * inflation[p], p, start)
            if best is None or key < best:
                best = key
        assert best is not None
        return best[1], best[2]

    # Phase 2 — re-place the viable dirty suffix, highest b-level first.
    # Doomed tasks are skipped here; the doom set is successor-closed, so
    # no viable task ever waits on a doomed placement.
    prio = kernel.priority_array(kernel.b_levels_comm())
    pending = [len(edges) for edges in kernel.in_edges]
    for t in pinned:
        for j in kernel.succ_idx[index[t]]:
            pending[j] -= 1
    skip = pinned | doomed
    heap = [
        ((-prio[i], i), i)
        for i in range(kernel.n)
        if pending[i] == 0 and kernel.tasks[i] not in skip
    ]
    heapq.heapify(heap)
    moved = 0
    while heap:
        _, ti = heapq.heappop(heap)
        t = kernel.tasks[ti]
        proc, start = pick(ti)
        state.place(ti, proc, start)
        if proc != prev[t].proc:
            moved += 1
        for j in kernel.succ_idx[ti]:
            pending[j] -= 1
            if pending[j] == 0 and kernel.tasks[j] not in skip:
                heapq.heappush(heap, ((-prio[j], j), j))

    # Phase 3 — park the doomed tasks on a dead processor, in topological
    # order (their killed ancestors are pinned, so every predecessor of a
    # doomed task is placed by now or earlier in this walk).
    if doomed:
        park_default = min(dead) if dead else 0
        for t in graph.topological_order():
            if t not in doomed:
                continue
            ti = index[t]
            park = prev[t].proc if prev[t].proc in dead else park_default
            state.place(ti, park, state.earliest_start(ti, park))
    return state.sched, pinned, moved


# --------------------------------------------------------------------- #
# the control loop
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ReactiveRound:
    """Audit record of one re-planning round."""

    trigger: Trigger
    pinned: frozenset[str]
    n_remapped: int
    plan_makespan: float


@dataclass
class ReactiveResult:
    """The control loop's outcome plus its full audit trail.

    ``plans[0]`` / ``traces[0]`` are the static input plan and its passive
    dynamic trace; ``plans[i]`` / ``traces[i]`` (``i >= 1``) are the plan
    and trace after round ``rounds[i - 1]``.  ``schedule`` / ``trace`` are
    the final entries.
    """

    schedule: Schedule
    trace: DynamicTrace
    threshold: float
    scenario: FaultScenario
    rounds: list[ReactiveRound] = field(default_factory=list)
    plans: list[Schedule] = field(default_factory=list)
    traces: list[DynamicTrace] = field(default_factory=list)

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_remaps(self) -> int:
        return sum(r.n_remapped for r in self.rounds)

    def makespan(self) -> float:
        return self.trace.makespan()


def reactive_execute(
    schedule: Schedule,
    scenario: FaultScenario | None = None,
    threshold: float = DEFAULT_THRESHOLD,
    contention: bool = False,
) -> ReactiveResult:
    """Run ``schedule`` under ``scenario`` with reactive re-mapping.

    Deterministic: the same inputs always produce the same plans, traces,
    and audit trail.  With an empty scenario on a uniform machine no
    trigger fires and the result is the passive dynamic trace (itself
    byte-identical to the static simulation).
    """
    from repro.sim.dynamic import simulate_dynamic

    scenario = scenario or FaultScenario.empty()
    plan = schedule
    floors: dict[str, float] = {}
    handled: set[tuple] = set()
    trace = simulate_dynamic(
        plan, scenario, contention=contention, dispatch_floors=dict(floors)
    )
    result = ReactiveResult(
        schedule=plan,
        trace=trace,
        threshold=threshold,
        scenario=scenario,
        plans=[plan],
        traces=[trace],
    )
    # Finite key space bounds the loop: <= n_procs straggler keys plus one
    # key per failure event (slowdown-only events never generate triggers).
    bound = schedule.machine.n_procs + len(scenario.events) + 1
    while len(result.rounds) < bound:
        pending = [
            t
            for t in detect_triggers(plan, trace, scenario, threshold)
            if t.key() not in handled
        ]
        if not pending:
            break
        trigger = pending[0]
        handled.add(trigger.key())
        plan, pinned, moved = _replan(plan, trace, scenario, trigger.time)
        for t in plan.graph.task_names:
            if t not in pinned:
                floors[t] = max(floors.get(t, 0.0), trigger.time)
        trace = simulate_dynamic(
            plan, scenario, contention=contention, dispatch_floors=dict(floors)
        )
        result.rounds.append(
            ReactiveRound(
                trigger=trigger,
                pinned=pinned,
                n_remapped=moved,
                plan_makespan=plan.makespan(),
            )
        )
        result.plans.append(plan)
        result.traces.append(trace)
        _bump("reactive_rounds")
        if moved:
            _bump("reactive_remaps", moved)
    result.schedule = plan
    result.trace = trace
    return result
