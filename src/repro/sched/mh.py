"""The Mapping Heuristic (MH) of El-Rewini & Lewis — reference [1] of the paper.

MH is the scheduler Banger uses: it "finds the shortest elapsed execution
time schedule for a specific target machine" by modelling the machine's
interconnection network explicitly.  Messages are routed hop by hop over the
topology's links; each link can carry one message at a time, so the heuristic
sees (and avoids) network *contention*, which is what distinguishes MH from
machine-oblivious list scheduling.

Algorithm per step:

1. among ready tasks pick the one with the highest machine-aware b-level;
2. for every processor, tentatively route all incoming messages over the
   link timelines and compute the task's earliest start;
3. commit the task to the best processor and reserve its messages' links.

With ``contention=False`` links are infinitely wide and MH reduces to a
routed-cost list scheduler (useful as an ablation).
"""

from __future__ import annotations

import bisect

from repro.graph.analysis import b_levels
from repro.graph.taskgraph import TaskGraph
from repro.machine.machine import TargetMachine
from repro.sched.base import Scheduler, ready_tasks
from repro.sched.schedule import Message, Schedule

Link = tuple[int, int]


class LinkTimeline:
    """Busy intervals of one link, with earliest-fit reservation."""

    def __init__(self) -> None:
        self._intervals: list[tuple[float, float]] = []

    def earliest_fit(self, not_before: float, duration: float) -> float:
        """Earliest ``t >= not_before`` with the link free for ``duration``."""
        if duration <= 0:
            return not_before
        t = not_before
        while True:
            idx = bisect.bisect_left(self._intervals, (t, float("-inf")))
            if idx > 0 and self._intervals[idx - 1][1] > t:
                t = self._intervals[idx - 1][1]
                continue
            if idx < len(self._intervals) and self._intervals[idx][0] < t + duration:
                t = self._intervals[idx][1]
                continue
            return t

    def reserve(self, start: float, duration: float) -> None:
        if duration <= 0:
            return
        bisect.insort(self._intervals, (start, start + duration))

    def copy(self) -> "LinkTimeline":
        dup = LinkTimeline()
        dup._intervals = list(self._intervals)
        return dup


class _Network:
    """Per-link timelines for an entire machine."""

    def __init__(self, machine: TargetMachine, shared: bool):
        self.machine = machine
        self.shared = shared  # bus: all links alias one timeline
        self._links: dict[Link, LinkTimeline] = {}
        self._bus = LinkTimeline()

    def _timeline(self, link: Link) -> LinkTimeline:
        if self.shared:
            return self._bus
        return self._links.setdefault(link, LinkTimeline())

    def transit(
        self,
        src: int,
        dst: int,
        size: float,
        available: float,
        commit: bool,
        hops_out: list[tuple[Link, float, float]] | None = None,
    ) -> float:
        """Arrival time of a message injected at ``available`` from src to dst.

        Hop-by-hop store-and-forward over the route's links, paying the
        message startup once at injection.  When ``commit`` is False the
        link timelines are left untouched (tentative evaluation).  When
        ``hops_out`` is given, each reserved hop ``(link, start, finish)``
        is appended — the data behind contention-accurate message records.
        """
        params = self.machine.params
        if src == dst:
            return available
        t = available + params.msg_startup
        hop_time = params.hop_latency + size / params.transmission_rate
        reservations: list[tuple[LinkTimeline, float]] = []
        path = self.machine.route(src, dst)
        for a, b in zip(path, path[1:]):
            link = (min(a, b), max(a, b))
            timeline = self._timeline(link)
            start = timeline.earliest_fit(t, hop_time)
            reservations.append((timeline, start))
            if hops_out is not None:
                hops_out.append((link, start, start + hop_time))
            t = start + hop_time
        if commit:
            for timeline, start in reservations:
                timeline.reserve(start, hop_time)
        return t


class MHScheduler(Scheduler):
    """El-Rewini & Lewis's Mapping Heuristic with link contention.

    Parameters
    ----------
    contention:
        Model links as single-message resources (the real MH).  When False,
        messages never queue — pure routed-cost scheduling.
    """

    name = "mh"

    def __init__(self, contention: bool = True):
        self.contention = contention
        if not contention:
            self.name = "mh-nc"

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        sched = Schedule(graph, machine, scheduler=self.name)
        shared = bool(getattr(machine.topology, "shared_medium", False))
        network = _Network(machine, shared=shared) if self.contention else None

        exec_time = lambda t: machine.exec_time(graph.work(t))
        prio = b_levels(
            graph,
            exec_time=exec_time,
            comm_cost=lambda e: machine.mean_comm_cost(e.size),
        )
        order = {t: i for i, t in enumerate(graph.task_names)}
        done: set[str] = set()

        while len(done) < len(graph):
            ready = ready_tasks(graph, done)
            task = max(ready, key=lambda t: (prio[t], -order[t]))
            proc = self._best_proc(sched, network, task)
            self._commit(sched, network, task, proc)
            done.add(task)
        return sched

    # ------------------------------------------------------------------ #
    def _arrivals(
        self,
        sched: Schedule,
        network: _Network | None,
        task: str,
        proc: int,
        commit: bool,
    ) -> float:
        """Data-ready time of ``task`` on ``proc`` under the network model."""
        graph, machine = sched.graph, sched.machine
        ready = 0.0
        for edge in graph.in_edges(task):
            src = sched.primary(edge.src)
            if network is not None:
                arrival = network.transit(src.proc, proc, edge.size, src.finish, commit)
            else:
                arrival = src.finish + machine.comm_cost(src.proc, proc, edge.size)
            ready = max(ready, arrival)
        return ready

    def _est(self, sched: Schedule, network: _Network | None, task: str, proc: int) -> float:
        ready = self._arrivals(sched, network, task, proc, commit=False)
        timeline = sched.on_proc(proc)
        return max(ready, timeline[-1].finish if timeline else 0.0)

    def _best_proc(self, sched: Schedule, network: _Network | None, task: str) -> int:
        duration = sched.machine.exec_time(sched.graph.work(task))
        best: tuple[float, int] | None = None
        for proc in sched.machine.procs():
            finish = self._est(sched, network, task, proc) + duration
            if best is None or (finish, proc) < best:
                best = (finish, proc)
        assert best is not None
        return best[1]

    def _commit(
        self, sched: Schedule, network: _Network | None, task: str, proc: int
    ) -> None:
        graph, machine = sched.graph, sched.machine
        # recompute per-edge arrivals while committing link reservations, so
        # message records carry the *actual* (contention-delayed) times
        ready = 0.0
        messages: list[Message] = []
        for edge in graph.in_edges(task):
            src = sched.primary(edge.src)
            if network is not None:
                hops: list = []
                arrival = network.transit(
                    src.proc, proc, edge.size, src.finish, commit=True, hops_out=hops
                )
            else:
                arrival = src.finish + machine.comm_cost(src.proc, proc, edge.size)
            ready = max(ready, arrival)
            if src.proc != proc:
                messages.append(
                    Message(
                        src_task=edge.src,
                        dst_task=task,
                        var=edge.var,
                        size=edge.size,
                        src_proc=src.proc,
                        dst_proc=proc,
                        start=src.finish,
                        finish=arrival,
                        route=tuple(machine.route(src.proc, proc)),
                    )
                )
        timeline = sched.on_proc(proc)
        start = max(ready, timeline[-1].finish if timeline else 0.0)
        finish = start + machine.exec_time(graph.work(task))
        sched.add(task, proc, start, finish)
        for message in messages:
            sched.add_message(message)
