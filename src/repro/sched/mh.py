"""The Mapping Heuristic (MH) of El-Rewini & Lewis — reference [1] of the paper.

MH is the scheduler Banger uses: it "finds the shortest elapsed execution
time schedule for a specific target machine" by modelling the machine's
interconnection network explicitly.  Messages are routed hop by hop over the
topology's links; each link can carry one message at a time, so the heuristic
sees (and avoids) network *contention*, which is what distinguishes MH from
machine-oblivious list scheduling.

Algorithm per step:

1. among ready tasks pick the one with the highest machine-aware b-level;
2. for every processor, tentatively route all incoming messages over the
   link timelines and compute the task's earliest start;
3. commit the task to the best processor and reserve its messages' links.

With ``contention=False`` links are infinitely wide and MH reduces to a
routed-cost list scheduler (useful as an ablation).

This implementation runs on the shared :mod:`repro.sched.core` kernel:
ready tasks come from an incremental :class:`~repro.sched.core.ReadyHeap`,
execution times and routes are precomputed/memoized, and the per-processor
tentative pass prunes candidates whose *uncontended* finish lower bound
already loses to the current best (contention only ever delays arrivals, so
the bound is safe).  Results are byte-identical to the pre-kernel scheduler.
"""

from __future__ import annotations

import bisect

from repro.graph.taskgraph import TaskGraph
from repro.machine.machine import TargetMachine
from repro.sched.base import Scheduler
from repro.sched.core import KernelState, ReadyHeap, SchedKernel
from repro.sched.schedule import Message, Schedule

Link = tuple[int, int]


class LinkTimeline:
    """Busy intervals of one link, with earliest-fit reservation.

    Intervals are kept in *canonical merged form*: sorted, non-overlapping,
    and never touching (a reservation that abuts an existing interval is
    coalesced into it).  Only the link's free-time set matters to
    :meth:`earliest_fit`, and merging preserves it exactly — so results are
    identical to an unmerged list while a saturated link collapses into a
    handful of busy blocks.  A message injected at or after the link's last
    busy moment (the common monotone case) is an O(1) append.
    """

    def __init__(self) -> None:
        self._intervals: list[tuple[float, float]] = []

    def earliest_fit(self, not_before: float, duration: float) -> float:
        """Earliest ``t >= not_before`` with the link free for ``duration``."""
        if duration <= 0:
            return not_before
        intervals = self._intervals
        if not intervals or not_before >= intervals[-1][1]:
            return not_before
        idx = bisect.bisect_left(intervals, (not_before, float("-inf")))
        t = not_before
        if idx > 0 and intervals[idx - 1][1] > t:
            t = intervals[idx - 1][1]
        for i in range(idx, len(intervals)):
            start, end = intervals[i]
            if start >= t + duration:
                return t  # the gap before interval i fits
            if end > t:
                t = end
        return t

    def reserve(self, start: float, duration: float) -> None:
        if duration <= 0:
            return
        intervals = self._intervals
        end = start + duration
        if not intervals or start > intervals[-1][1]:
            intervals.append((start, end))
            return
        if start == intervals[-1][1]:
            intervals[-1] = (intervals[-1][0], end)
            return
        idx = bisect.bisect_left(intervals, (start, float("-inf")))
        lo = idx
        if lo > 0 and intervals[lo - 1][1] >= start:
            lo -= 1
            start = intervals[lo][0]
            if intervals[lo][1] > end:
                end = intervals[lo][1]
        hi = idx
        while hi < len(intervals) and intervals[hi][0] <= end:
            if intervals[hi][1] > end:
                end = intervals[hi][1]
            hi += 1
        intervals[lo:hi] = [(start, end)]

    def copy(self) -> "LinkTimeline":
        dup = LinkTimeline()
        dup._intervals = list(self._intervals)
        return dup


class _Network:
    """Per-link timelines for an entire machine.

    The link timelines a ``(src, dst)`` message crosses are resolved once
    per processor pair (via the kernel's route memo) and cached, so the
    per-transit cost is the hop walk itself, not routing.
    """

    def __init__(self, machine: TargetMachine, kernel: SchedKernel, shared: bool):
        self.machine = machine
        self.kernel = kernel
        self.shared = shared  # bus: all links alias one timeline
        self._links: dict[Link, LinkTimeline] = {}
        self._bus = LinkTimeline()
        self._pair: dict[tuple[int, int], list[LinkTimeline]] = {}

    def _timelines(self, src: int, dst: int) -> list[LinkTimeline]:
        pair = (src, dst)
        timelines = self._pair.get(pair)
        if timelines is None:
            path = self.kernel.route(src, dst)
            timelines = []
            for a, b in zip(path, path[1:]):
                if self.shared:
                    timelines.append(self._bus)
                else:
                    link = (a, b) if a < b else (b, a)
                    timelines.append(self._links.setdefault(link, LinkTimeline()))
            self._pair[pair] = timelines
        return timelines

    def transit(
        self,
        src: int,
        dst: int,
        size: float,
        available: float,
        commit: bool,
    ) -> float:
        """Arrival time of a message injected at ``available`` from src to dst.

        Hop-by-hop store-and-forward over the route's links, paying the
        message startup once at injection.  When ``commit`` is False the
        link timelines are left untouched (tentative evaluation).
        """
        params = self.machine.params
        if src == dst:
            return available
        t = available + params.msg_startup
        hop_time = params.hop_latency + size / params.transmission_rate
        timelines = self._timelines(src, dst)
        if commit:
            reservations: list[tuple[LinkTimeline, float]] = []
            for timeline in timelines:
                start = timeline.earliest_fit(t, hop_time)
                reservations.append((timeline, start))
                t = start + hop_time
            for timeline, start in reservations:
                timeline.reserve(start, hop_time)
        else:
            for timeline in timelines:
                t = timeline.earliest_fit(t, hop_time) + hop_time
        return t


class MHScheduler(Scheduler):
    """El-Rewini & Lewis's Mapping Heuristic with link contention.

    Parameters
    ----------
    contention:
        Model links as single-message resources (the real MH).  When False,
        messages never queue — pure routed-cost scheduling.
    """

    name = "mh"

    def __init__(self, contention: bool = True):
        self.contention = contention
        if not contention:
            self.name = "mh-nc"

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        kernel = SchedKernel(graph, machine)
        state = KernelState(kernel, scheduler_name=self.name)
        shared = bool(getattr(machine.topology, "shared_medium", False))
        network = _Network(machine, kernel, shared=shared) if self.contention else None

        prio = kernel.priority_array(kernel.b_levels_comm())
        heap = ReadyHeap(kernel, key=lambda i: (-prio[i], i))
        for _ in range(kernel.n):
            ti = heap.pop()
            proc = self._best_proc(state, network, ti)
            self._commit(state, network, ti, proc)
            heap.complete(ti)
        return state.sched

    # ------------------------------------------------------------------ #
    def _best_proc(self, state: KernelState, network: _Network | None, ti: int) -> int:
        kernel = state.kernel
        duration = kernel.exec_time[ti]
        edges = kernel.in_edges[ti]
        sources = [state.primary(e.src) for e in edges]
        comm = kernel.comm_cost
        tails = state.tails
        best: tuple[float, int] | None = None
        for proc in range(len(tails)):
            # Uncontended lower bound on the finish time: contention can only
            # delay arrivals, so if even this loses to the current best the
            # tentative transit walk is skipped entirely.
            ready_lb = 0.0
            for edge, src in zip(edges, sources):
                arrival = src.finish + comm(src.proc, proc, edge.size)
                if arrival > ready_lb:
                    ready_lb = arrival
            tail = tails[proc]
            finish_lb = (ready_lb if ready_lb > tail else tail) + duration
            if network is None:
                finish = finish_lb
            else:
                if best is not None and finish_lb > best[0] + 1e-9 * (1.0 + abs(best[0])):
                    continue  # cannot win even without any queueing delay
                ready = 0.0
                for edge, src in zip(edges, sources):
                    arrival = network.transit(
                        src.proc, proc, edge.size, src.finish, commit=False
                    )
                    if arrival > ready:
                        ready = arrival
                finish = (ready if ready > tail else tail) + duration
            if best is None or (finish, proc) < best:
                best = (finish, proc)
        assert best is not None
        return best[1]

    def _commit(
        self, state: KernelState, network: _Network | None, ti: int, proc: int
    ) -> None:
        kernel = state.kernel
        task = kernel.tasks[ti]
        comm = kernel.comm_cost
        # recompute per-edge arrivals while committing link reservations, so
        # message records carry the *actual* (contention-delayed) times
        ready = 0.0
        messages: list[Message] = []
        for edge in kernel.in_edges[ti]:
            src = state.primary(edge.src)
            if network is not None:
                arrival = network.transit(
                    src.proc, proc, edge.size, src.finish, commit=True
                )
            else:
                arrival = src.finish + comm(src.proc, proc, edge.size)
            if arrival > ready:
                ready = arrival
            if src.proc != proc:
                messages.append(
                    Message(
                        src_task=edge.src,
                        dst_task=task,
                        var=edge.var,
                        size=edge.size,
                        src_proc=src.proc,
                        dst_proc=proc,
                        start=src.finish,
                        finish=arrival,
                        route=kernel.route(src.proc, proc),
                    )
                )
        tail = state.tails[proc]
        start = ready if ready > tail else tail
        state.add(task, proc, start, start + kernel.exec_time[ti])
        for message in messages:
            state.sched.add_message(message)
