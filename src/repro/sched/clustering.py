"""Linear clustering (Kim & Browne) and cluster-to-processor mapping.

Clustering attacks scheduling from the other direction: first decide which
tasks must *never* communicate (put them in one cluster), then map clusters
onto the machine.  Linear clustering repeatedly takes the current critical
path — computation and communication included — makes it a cluster, zeroes
its internal edges, and recurses on the remaining tasks.

The cluster→processor mapping is LPT (largest processing time first onto the
least-loaded processor), and the final timing pass is a fixed-assignment
list schedule, shared with the baselines via :func:`assignment_to_schedule`
(which runs on the :mod:`repro.sched.core` kernel).
"""

from __future__ import annotations

from repro.graph.taskgraph import TaskGraph
from repro.machine.machine import TargetMachine
from repro.sched.base import Scheduler
from repro.sched.core import KernelState, ReadyHeap, SchedKernel
from repro.sched.schedule import Schedule


def assignment_to_schedule(
    graph: TaskGraph,
    machine: TargetMachine,
    assignment: dict[str, int],
    scheduler_name: str = "fixed",
    insertion: bool = False,
) -> Schedule:
    """Timing pass for a fixed task→processor assignment.

    Tasks are released in b-level priority order (communication included),
    each starting as early as its inputs and its assigned processor allow.
    The result is always feasible for any complete assignment.
    """
    missing = [t for t in graph.task_names if t not in assignment]
    if missing:
        from repro.errors import ScheduleError

        raise ScheduleError(f"assignment misses tasks: {missing[:5]}")
    kernel = SchedKernel(graph, machine)
    state = KernelState(kernel, scheduler_name=scheduler_name)
    prio = kernel.priority_array(kernel.b_levels_comm())
    heap = ReadyHeap(kernel, key=lambda i: (-prio[i], i))
    for _ in range(kernel.n):
        ti = heap.pop()
        proc = assignment[kernel.tasks[ti]]
        start = state.earliest_start(ti, proc, insertion=insertion)
        state.place(ti, proc, start)
        heap.complete(ti)
    return state.sched


def linear_clusters(graph: TaskGraph, machine: TargetMachine) -> list[list[str]]:
    """Kim–Browne linear clustering: iterated critical-path extraction.

    Returns clusters as task lists in topological order; every task belongs
    to exactly one cluster.
    """
    exec_of = {t: machine.exec_time(graph.work(t)) for t in graph.task_names}
    comm_of_size: dict[float, float] = {}

    def comm(e) -> float:
        cost = comm_of_size.get(e.size)
        if cost is None:
            cost = machine.mean_comm_cost(e.size)
            comm_of_size[e.size] = cost
        return cost

    remaining = set(graph.task_names)
    clusters: list[list[str]] = []
    topo_pos = {t: i for i, t in enumerate(graph.topological_order())}

    while remaining:
        # b-levels restricted to the remaining subgraph
        bl: dict[str, float] = {}
        for t in sorted(remaining, key=topo_pos.__getitem__, reverse=True):
            bl[t] = exec_of[t] + max(
                (
                    comm(e) + bl[e.dst]
                    for e in graph.out_edges(t)
                    if e.dst in remaining
                ),
                default=0.0,
            )
        entries = [
            t
            for t in remaining
            if all(p not in remaining for p in graph.predecessors(t))
        ]
        start = max(entries, key=lambda t: (bl[t], -topo_pos[t]))
        path = [start]
        cur = start
        while True:
            nexts = [e for e in graph.out_edges(cur) if e.dst in remaining]
            if not nexts:
                break
            best = max(nexts, key=lambda e: (comm(e) + bl[e.dst], -topo_pos[e.dst]))
            path.append(best.dst)
            cur = best.dst
        clusters.append(path)
        remaining -= set(path)
    return clusters


def map_clusters_lpt(
    clusters: list[list[str]], graph: TaskGraph, machine: TargetMachine
) -> dict[str, int]:
    """Assign clusters to processors, heaviest first onto the least loaded."""
    exec_of = {t: machine.exec_time(graph.work(t)) for t in graph.task_names}
    loads = {p: 0.0 for p in machine.procs()}
    assignment: dict[str, int] = {}
    weighted = sorted(
        clusters,
        key=lambda c: -sum(exec_of[t] for t in c),
    )
    for cluster in weighted:
        proc = min(loads, key=lambda p: (loads[p], p))
        for t in cluster:
            assignment[t] = proc
        loads[proc] += sum(exec_of[t] for t in cluster)
    return assignment


class LinearClusteringScheduler(Scheduler):
    """Linear clustering + LPT mapping + fixed-assignment timing pass."""

    name = "lc"

    def __init__(self, insertion: bool = True):
        self.insertion = insertion

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        clusters = linear_clusters(graph, machine)
        assignment = map_clusters_lpt(clusters, graph, machine)
        return assignment_to_schedule(
            graph, machine, assignment, scheduler_name=self.name, insertion=self.insertion
        )
