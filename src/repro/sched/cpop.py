"""CPOP — Critical Path On a Processor (Topcuoglu, Hariri & Wu).

A classic companion to list scheduling: tasks on the critical path are
pinned to one dedicated processor (so the longest chain never pays a
message), and everything else is placed by earliest finish time with
insertion.  Priorities are ``t-level + b-level`` — a task's best possible
path length through it.

Runs on the shared :mod:`repro.sched.core` kernel; byte-identical to the
pre-kernel implementation.
"""

from __future__ import annotations

from repro.graph.taskgraph import TaskGraph
from repro.machine.machine import TargetMachine
from repro.sched.base import Scheduler
from repro.sched.core import KernelState, SchedKernel, run_priority_list
from repro.sched.schedule import Schedule


class CPOPScheduler(Scheduler):
    """Critical-path tasks share one processor; the rest go by EFT."""

    name = "cpop"

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        kernel = SchedKernel(graph, machine)
        state = KernelState(kernel, scheduler_name=self.name)
        tl = kernel.t_levels_comm()
        bl = kernel.b_levels_comm()
        priority = [tl[t] + bl[t] for t in kernel.tasks]
        cp_value = max(priority, default=0.0)

        # walk the critical path from its entry task downwards
        index = kernel.index
        on_cp: set[int] = set()
        cp_entries = [
            t for t in graph.entry_tasks()
            if abs(priority[index[t]] - cp_value) < 1e-9
        ]
        if cp_entries:
            cur = cp_entries[0]
            on_cp.add(index[cur])
            while True:
                nxts = [
                    s for s in graph.successors(cur)
                    if abs(priority[index[s]] - cp_value) < 1e-9
                ]
                if not nxts:
                    break
                cur = nxts[0]
                on_cp.add(index[cur])

        # the dedicated processor: the one the whole path runs fastest on —
        # homogeneous machines make this a tie, so processor 0 wins
        cp_proc = 0

        def pick(ti: int) -> tuple[int, float]:
            if ti in on_cp:
                return cp_proc, state.earliest_start(ti, cp_proc, insertion=True)
            return state.best_processor(ti, insertion=True)

        return run_priority_list(
            kernel, state, key=lambda i: (-priority[i], i), pick_processor=pick
        )
