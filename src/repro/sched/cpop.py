"""CPOP — Critical Path On a Processor (Topcuoglu, Hariri & Wu).

A classic companion to list scheduling: tasks on the critical path are
pinned to one dedicated processor (so the longest chain never pays a
message), and everything else is placed by earliest finish time with
insertion.  Priorities are ``t-level + b-level`` — a task's best possible
path length through it.
"""

from __future__ import annotations

from repro.graph.analysis import b_levels, t_levels
from repro.graph.taskgraph import TaskGraph
from repro.machine.machine import TargetMachine
from repro.sched.base import Scheduler, best_processor, earliest_start, place, ready_tasks
from repro.sched.schedule import Schedule


class CPOPScheduler(Scheduler):
    """Critical-path tasks share one processor; the rest go by EFT."""

    name = "cpop"

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        sched = Schedule(graph, machine, scheduler=self.name)
        exec_time = lambda t: machine.exec_time(graph.work(t))
        comm = lambda e: machine.mean_comm_cost(e.size)
        tl = t_levels(graph, exec_time=exec_time, comm_cost=comm)
        bl = b_levels(graph, exec_time=exec_time, comm_cost=comm)
        priority = {t: tl[t] + bl[t] for t in graph.task_names}
        cp_value = max(priority.values(), default=0.0)

        # walk the critical path from its entry task downwards
        on_cp: set[str] = set()
        cp_entries = [
            t for t in graph.entry_tasks() if abs(priority[t] - cp_value) < 1e-9
        ]
        if cp_entries:
            cur = cp_entries[0]
            on_cp.add(cur)
            while True:
                nxts = [
                    s for s in graph.successors(cur)
                    if abs(priority[s] - cp_value) < 1e-9
                ]
                if not nxts:
                    break
                cur = nxts[0]
                on_cp.add(cur)

        # the dedicated processor: the one the whole path runs fastest on —
        # homogeneous machines make this a tie, so processor 0 wins
        cp_proc = 0

        order = {t: i for i, t in enumerate(graph.task_names)}
        done: set[str] = set()
        while len(done) < len(graph):
            ready = ready_tasks(graph, done)
            task = max(ready, key=lambda t: (priority[t], -order[t]))
            if task in on_cp:
                start = earliest_start(sched, task, cp_proc, insertion=True)
                place(sched, task, cp_proc, start)
            else:
                proc, start = best_processor(sched, task, insertion=True)
                place(sched, task, proc, start)
            done.add(task)
        return sched
