"""DSH — the Duplication Scheduling Heuristic (Kruatrachue & Lewis).

The insight behind duplication: when a message from a predecessor delays a
task, it can be cheaper to *re-execute* the predecessor locally in the idle
gap than to wait for the wire.  DSH is the aggressive end of the PPSE
heuristic family the paper's scheduling layer drew on (Kruatrachue's 1987
thesis under Lewis, cited in the acknowledgements).

This implementation duplicates **direct** predecessors iteratively: while the
critical (latest-arriving) message can be replaced by a local copy that
starts the task earlier, the copy is inserted into an idle slot.  Copies are
planned tentatively per candidate processor and committed only for the
winner, so the result is always feasible (the independent validator checks
duplicated schedules too).

Runs on the shared :mod:`repro.sched.core` kernel (incremental ready heap,
precomputed execution times, memoized communication costs); byte-identical
to the pre-kernel implementation.
"""

from __future__ import annotations

from repro.graph.taskgraph import TaskGraph
from repro.machine.machine import TargetMachine
from repro.sched.base import Scheduler
from repro.sched.core import KernelState, ReadyHeap, SchedKernel
from repro.sched.schedule import Schedule

_EPS = 1e-12


class DSHScheduler(Scheduler):
    """List scheduling by static level with idle-slot task duplication.

    Parameters
    ----------
    max_dups_per_task:
        Upper bound on copies planned while placing one task (runaway guard;
        the loop also stops at the first non-improving copy).
    """

    name = "dsh"

    def __init__(self, max_dups_per_task: int = 8):
        self.max_dups_per_task = max_dups_per_task

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        kernel = SchedKernel(graph, machine)
        state = KernelState(kernel, scheduler_name=self.name)
        sl = kernel.priority_array(kernel.static_levels())
        heap = ReadyHeap(kernel, key=lambda i: (-sl[i], i))
        for _ in range(kernel.n):
            ti = heap.pop()
            best: tuple[float, int, float, list[tuple[str, float, float]]] | None = None
            duration = kernel.exec_time[ti]
            for proc in range(machine.n_procs):
                est, dups = self._plan(state, ti, proc)
                key = (est + duration, proc)
                if best is None or key < (best[0], best[1]):
                    best = (est + duration, proc, est, dups)
            assert best is not None
            _, proc, est, dups = best
            for name, start, finish in dups:
                state.add(name, proc, start, finish)
            state.place(ti, proc, est)
            heap.complete(ti)
        return state.sched

    # ------------------------------------------------------------------ #
    def _plan(
        self, state: KernelState, ti: int, proc: int
    ) -> tuple[float, list[tuple[str, float, float]]]:
        """Earliest start of task ``ti`` on ``proc`` with planned duplications.

        Returns ``(est, copies)`` where ``copies`` is a list of
        ``(task_name, start, finish)`` duplications on ``proc`` that must be
        committed for ``est`` to hold.
        """
        kernel = state.kernel
        comm = kernel.comm_cost
        task = kernel.tasks[ti]
        duration = kernel.exec_time[ti]
        in_edges = kernel.in_edges[ti]
        added: list[tuple[str, float, float]] = []

        def finishes_of(u: str) -> list[tuple[float, int]]:
            """(finish, proc) of every available copy of u, planned included."""
            placed = state.placements_or_none(u)
            out = [(e.finish, e.proc) for e in placed] if placed else []
            out += [(f, proc) for (n, s, f) in added if n == u]
            return out

        def arrival(edge) -> float:
            return min(
                f + comm(p, proc, edge.size) for f, p in finishes_of(edge.src)
            )

        def occupancy() -> list[tuple[float, float]]:
            slots = [(e.start, e.finish) for e in state.sched.timeline(proc)]
            slots += [(s, f) for (_, s, f) in added]
            return sorted(slots)

        def earliest_slot(ready: float, dur: float) -> float:
            prev = 0.0
            for s, f in occupancy():
                start = max(ready, prev)
                if start + dur <= s + _EPS:
                    return start
                prev = max(prev, f)
            return max(ready, prev)

        def est_now() -> float:
            ready = max((arrival(e) for e in in_edges), default=0.0)
            return earliest_slot(ready, duration)

        est = est_now()
        for _ in range(self.max_dups_per_task):
            if not in_edges:
                break
            crit = max(in_edges, key=arrival)
            if arrival(crit) <= _EPS:
                break
            u = crit.src
            if any(p == proc for _, p in finishes_of(u)):
                break  # the critical input is already local
            # data-ready time of a copy of u on this processor
            u_ready = 0.0
            feasible = True
            for e in kernel.in_edges[kernel.index[u]]:
                if e.src not in state:
                    feasible = False
                    break
                u_ready = max(
                    u_ready,
                    min(
                        f + comm(p, proc, e.size)
                        for f, p in finishes_of(e.src)
                    ),
                )
            if not feasible:
                break
            u_dur = kernel.exec_time[kernel.index[u]]
            u_start = earliest_slot(u_ready, u_dur)
            added.append((u, u_start, u_start + u_dur))
            new_est = est_now()
            if new_est < est - _EPS:
                est = new_est
            else:
                added.pop()
                break
        return est, added
