"""What-if schedule editing: move tasks by hand, see the consequences now.

The paper's principle 4 (instant feedback) applies to schedules too: an
expert user looking at a Gantt chart will want to drag a task to another
processor and watch the makespan respond.  These helpers implement that as
pure functions: each edit takes a schedule, changes the *assignment*, and
re-times everything with the shared fixed-assignment pass — so the result
is always feasible, and the before/after delta is honest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ScheduleError
from repro.sched.clustering import assignment_to_schedule
from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class EditResult:
    """Outcome of one hand edit."""

    schedule: Schedule
    makespan_before: float
    makespan_after: float

    @property
    def delta(self) -> float:
        """Positive = the edit made things worse."""
        return self.makespan_after - self.makespan_before

    def render(self) -> str:
        arrow = "worse" if self.delta > 1e-9 else ("better" if self.delta < -1e-9 else "same")
        return (
            f"makespan {self.makespan_before:.3f} -> {self.makespan_after:.3f} "
            f"({arrow}, {self.delta:+.3f})"
        )


def _retime(schedule: Schedule, assignment: dict[str, int]) -> Schedule:
    return assignment_to_schedule(
        schedule.graph,
        schedule.machine,
        assignment,
        scheduler_name=f"{schedule.scheduler}+edit" if schedule.scheduler else "edit",
        insertion=True,
    )


def move_task(schedule: Schedule, task: str, proc: int) -> EditResult:
    """Reassign one task to another processor and re-time the schedule.

    Duplicated schedules cannot be hand-edited this way (the assignment is
    no longer a function); simplify with the primary copies first.
    """
    if schedule.has_duplication():
        raise ScheduleError(
            "cannot hand-edit a duplicated schedule; use primary_assignment() first"
        )
    if proc not in schedule.machine.procs():
        raise ScheduleError(
            f"processor {proc} out of range for {schedule.machine.name!r}"
        )
    assignment = schedule.assignment()
    if task not in assignment:
        raise ScheduleError(f"unknown task {task!r}")
    before = schedule.makespan()
    assignment[task] = proc
    edited = _retime(schedule, assignment)
    return EditResult(edited, before, edited.makespan())


def swap_tasks(schedule: Schedule, a: str, b: str) -> EditResult:
    """Exchange the processors of two tasks."""
    if schedule.has_duplication():
        raise ScheduleError("cannot hand-edit a duplicated schedule")
    assignment = schedule.assignment()
    for t in (a, b):
        if t not in assignment:
            raise ScheduleError(f"unknown task {t!r}")
    before = schedule.makespan()
    assignment[a], assignment[b] = assignment[b], assignment[a]
    edited = _retime(schedule, assignment)
    return EditResult(edited, before, edited.makespan())


def move_cluster(schedule: Schedule, tasks: list[str], proc: int) -> EditResult:
    """Move a group of tasks together (e.g. a whole Gantt row segment)."""
    if schedule.has_duplication():
        raise ScheduleError("cannot hand-edit a duplicated schedule")
    assignment = schedule.assignment()
    for t in tasks:
        if t not in assignment:
            raise ScheduleError(f"unknown task {t!r}")
    if proc not in schedule.machine.procs():
        raise ScheduleError(f"processor {proc} out of range")
    before = schedule.makespan()
    for t in tasks:
        assignment[t] = proc
    edited = _retime(schedule, assignment)
    return EditResult(edited, before, edited.makespan())


def primary_assignment(schedule: Schedule) -> Schedule:
    """Collapse a duplicated schedule to its primary copies and re-time."""
    return _retime(schedule, schedule.assignment())


def best_single_move(schedule: Schedule) -> EditResult | None:
    """Greedy hill-climb step: the single task move that helps most.

    Returns None when no move improves the makespan — the schedule is
    1-move locally optimal.
    """
    if schedule.has_duplication():
        schedule = primary_assignment(schedule)
    assignment = schedule.assignment()
    before = schedule.makespan()
    best: EditResult | None = None
    for task in schedule.graph.task_names:
        current = assignment[task]
        for proc in schedule.machine.procs():
            if proc == current:
                continue
            trial = dict(assignment)
            trial[task] = proc
            edited = _retime(schedule, trial)
            after = edited.makespan()
            if after < before - 1e-9 and (best is None or after < best.makespan_after):
                best = EditResult(edited, before, after)
    return best


def hill_climb(schedule: Schedule, max_moves: int = 50) -> Schedule:
    """Apply :func:`best_single_move` until no move helps (or the cap hits).

    A cheap post-pass usable after any heuristic; never worsens a schedule.
    """
    current = primary_assignment(schedule) if schedule.has_duplication() else schedule
    for _ in range(max_moves):
        step = best_single_move(current)
        if step is None:
            break
        current = step.schedule
    return current
