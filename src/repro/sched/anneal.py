"""Simulated-annealing refinement over task→processor assignments.

A stochastic post-pass: start from any heuristic's assignment and walk the
neighbourhood (move one task to another processor), accepting uphill steps
with the Metropolis rule under a geometric cooling ladder.  Deterministic
for a fixed seed.  Complements :func:`repro.sched.edit.hill_climb`, which
is the greedy special case (temperature 0).
"""

from __future__ import annotations

import math
import random

from repro.graph.taskgraph import TaskGraph
from repro.machine.machine import TargetMachine
from repro.sched.base import Scheduler
from repro.sched.clustering import assignment_to_schedule
from repro.sched.edit import primary_assignment
from repro.sched.mh import MHScheduler
from repro.sched.schedule import Schedule


class AnnealingScheduler(Scheduler):
    """Refine an inner heuristic's schedule by simulated annealing.

    Parameters
    ----------
    inner:
        Heuristic providing the starting point (default MH).
    iterations:
        Total proposal count.
    start_temp:
        Initial temperature as a fraction of the initial makespan.
    seed:
        RNG seed (results are reproducible).
    """

    name = "anneal"

    def __init__(
        self,
        inner: Scheduler | None = None,
        iterations: int = 400,
        start_temp: float = 0.15,
        seed: int = 0,
    ):
        self.inner = inner or MHScheduler()
        self.iterations = iterations
        self.start_temp = start_temp
        self.seed = seed

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        initial = self.inner.schedule(graph, machine)
        if initial.has_duplication():
            initial = primary_assignment(initial)
        if machine.n_procs == 1 or len(graph) <= 1:
            return initial

        rng = random.Random(self.seed)
        tasks = graph.task_names
        current = initial.assignment()
        current_cost = initial.makespan()
        best = dict(current)
        best_cost = current_cost

        temp0 = max(self.start_temp * current_cost, 1e-9)
        for step in range(self.iterations):
            temp = temp0 * (0.02 / 1.0) ** (step / max(self.iterations - 1, 1))
            task = rng.choice(tasks)
            old_proc = current[task]
            new_proc = rng.randrange(machine.n_procs - 1)
            if new_proc >= old_proc:
                new_proc += 1
            current[task] = new_proc
            candidate = assignment_to_schedule(
                graph, machine, current, scheduler_name=self.name, insertion=True
            )
            cost = candidate.makespan()
            delta = cost - current_cost
            if delta <= 0 or rng.random() < math.exp(-delta / temp):
                current_cost = cost
                if cost < best_cost - 1e-12:
                    best_cost = cost
                    best = dict(current)
            else:
                current[task] = old_proc

        final = assignment_to_schedule(
            graph, machine, best, scheduler_name=self.name, insertion=True
        )
        # the refinement must never lose to its own starting point
        if final.makespan() > initial.makespan() + 1e-9:
            initial_again = assignment_to_schedule(
                graph, machine, initial.assignment(),
                scheduler_name=self.name, insertion=True,
            )
            return initial_again if initial_again.makespan() <= initial.makespan() else initial
        return final
