"""Dominant Sequence Clustering (Yang & Gerasoulis) and Sarkar's edge zeroing.

Two more members of the clustering family PPSE drew on, complementing
:mod:`repro.sched.clustering`'s linear clustering:

* **DSC** walks tasks in priority order (t-level + b-level, the "dominant
  sequence") and merges each task into the predecessor cluster that most
  reduces its start time, provided the merge does not delay it;
* **Sarkar** examines edges heaviest-first and zeroes an edge (merges its
  endpoint clusters) whenever the estimated parallel time of the clustered
  graph does not grow.

Both produce cluster lists that are then mapped onto the real machine with
the shared LPT + fixed-assignment timing pass.  The cluster walks use the
:mod:`repro.sched.core` kernel's incremental ready heap and memoized costs.
"""

from __future__ import annotations

from repro.graph.taskgraph import TaskGraph
from repro.machine.machine import TargetMachine
from repro.sched.base import Scheduler
from repro.sched.clustering import assignment_to_schedule, map_clusters_lpt
from repro.sched.core import ReadyHeap, SchedKernel
from repro.sched.schedule import Schedule


def cluster_makespan(
    graph: TaskGraph, machine: TargetMachine, owner: dict[str, int]
) -> float:
    """PERT estimate of the clustered graph on unbounded processors.

    Tasks sharing a cluster serialise (in topological order); edges inside a
    cluster are free; edges between clusters cost the machine's mean
    communication.  This is the objective Sarkar's merge test uses.
    """
    exec_of = {t: machine.exec_time(graph.work(t)) for t in graph.task_names}
    comm_of_size: dict[float, float] = {}
    finish: dict[str, float] = {}
    cluster_free: dict[int, float] = {}
    for task in graph.topological_order():
        ready = 0.0
        for e in graph.in_edges(task):
            if owner[e.src] == owner[task]:
                cost = 0.0
            else:
                cost = comm_of_size.get(e.size)
                if cost is None:
                    cost = machine.mean_comm_cost(e.size)
                    comm_of_size[e.size] = cost
            ready = max(ready, finish[e.src] + cost)
        start = max(ready, cluster_free.get(owner[task], 0.0))
        finish[task] = start + exec_of[task]
        cluster_free[owner[task]] = finish[task]
    return max(finish.values(), default=0.0)


def dsc_clusters(graph: TaskGraph, machine: TargetMachine) -> list[list[str]]:
    """DSC-style clustering; returns clusters as topologically ordered lists."""
    kernel = SchedKernel(graph, machine)
    comm = lambda e: kernel.mean_comm_cost(e.size)
    bl = kernel.priority_array(kernel.b_levels_comm())

    owner: dict[str, int] = {}
    members: dict[int, list[str]] = {}
    cluster_finish: dict[int, float] = {}
    finish: dict[str, float] = {}
    next_cluster = 0

    # priority = b-level, examined in a topological-compatible order: among
    # unexamined tasks with all predecessors examined, highest b-level first
    heap = ReadyHeap(kernel, key=lambda i: (-bl[i], i))
    for _ in range(kernel.n):
        ti = heap.pop()
        task = kernel.tasks[ti]
        duration = kernel.exec_time[ti]
        in_edges = kernel.in_edges[ti]

        # candidate clusters: each predecessor's, or a fresh one
        best_cluster = None
        best_start = None
        for cand in {owner[p] for p in graph.predecessors(task)}:
            ready_time = 0.0
            for e in in_edges:
                cost = 0.0 if owner[e.src] == cand else comm(e)
                ready_time = max(ready_time, finish[e.src] + cost)
            start = max(ready_time, cluster_finish.get(cand, 0.0))
            if best_start is None or start < best_start - 1e-12:
                best_start = start
                best_cluster = cand
        fresh_ready = max(
            (finish[e.src] + comm(e) for e in in_edges), default=0.0
        )
        if best_start is None or fresh_ready < best_start - 1e-12:
            best_cluster = next_cluster
            next_cluster += 1
            best_start = fresh_ready

        owner[task] = best_cluster
        members.setdefault(best_cluster, []).append(task)
        finish[task] = best_start + duration
        cluster_finish[best_cluster] = finish[task]
        heap.complete(ti)

    return [members[c] for c in sorted(members)]


def sarkar_clusters(graph: TaskGraph, machine: TargetMachine) -> list[list[str]]:
    """Sarkar's edge-zeroing clustering."""
    owner = {t: i for i, t in enumerate(graph.task_names)}
    current = cluster_makespan(graph, machine, owner)

    comm_of_size: dict[float, float] = {}

    def mean_comm(size: float) -> float:
        cost = comm_of_size.get(size)
        if cost is None:
            cost = machine.mean_comm_cost(size)
            comm_of_size[size] = cost
        return cost

    edges = sorted(
        graph.edges,
        key=lambda e: (-mean_comm(e.size), e.src, e.dst),
    )
    for e in edges:
        a, b = owner[e.src], owner[e.dst]
        if a == b:
            continue
        trial = {t: (a if c == b else c) for t, c in owner.items()}
        trial_makespan = cluster_makespan(graph, machine, trial)
        if trial_makespan <= current + 1e-12:
            owner = trial
            current = trial_makespan

    topo_pos = {t: i for i, t in enumerate(graph.topological_order())}
    members: dict[int, list[str]] = {}
    for t, c in owner.items():
        members.setdefault(c, []).append(t)
    groups = [sorted(g, key=topo_pos.__getitem__) for g in members.values()]
    groups.sort(key=lambda g: topo_pos[g[0]])
    return groups


class DSCScheduler(Scheduler):
    """DSC clustering + LPT mapping + fixed-assignment timing."""

    name = "dsc"

    def __init__(self, insertion: bool = True):
        self.insertion = insertion

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        clusters = dsc_clusters(graph, machine)
        assignment = map_clusters_lpt(clusters, graph, machine)
        return assignment_to_schedule(
            graph, machine, assignment, scheduler_name=self.name,
            insertion=self.insertion,
        )


class SarkarScheduler(Scheduler):
    """Sarkar edge-zeroing + LPT mapping + fixed-assignment timing."""

    name = "sarkar"

    def __init__(self, insertion: bool = True):
        self.insertion = insertion

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        clusters = sarkar_clusters(graph, machine)
        assignment = map_clusters_lpt(clusters, graph, machine)
        return assignment_to_schedule(
            graph, machine, assignment, scheduler_name=self.name,
            insertion=self.insertion,
        )
