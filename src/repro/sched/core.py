"""The shared scheduling kernel: precomputed arrays, memoized costs, ready sets.

Every list-family heuristic in :mod:`repro.sched` runs the same inner loop:
pick the next ready task by a static priority, evaluate candidate processors
under the machine's cost model, place the task, repeat.  Before this module
existed each scheduler paid for that loop retail — a full
``ready_tasks(graph, done)`` rescan per step, a fresh
``machine.exec_time(graph.work(task))`` call per query, a BFS-table walk per
route, and a copied timeline per earliest-start probe.  The kernel buys those
wholesale, once per ``(graph, machine)`` pair:

* :class:`SchedKernel` — interned task indices, a per-task execution-time
  array, per-task in-edge/successor lists, and memo tables for
  ``comm_cost``/``mean_comm_cost``/``route`` keyed by processor pair and
  message size;
* :class:`ReadyHeap` / :class:`ReadySet` — incremental ready tracking driven
  by per-task pending-predecessor counters (each completion decrements its
  successors; a task enters the structure exactly when its count hits zero),
  replacing the O(V·(V+E)) rescans;
* :class:`KernelState` — a :class:`~repro.sched.schedule.Schedule` under
  construction plus O(1) processor tails and per-task placement mirrors, with
  drop-in ``data_ready_time``/``earliest_start``/``best_processor``/``place``
  that reproduce :mod:`repro.sched.base` **byte for byte** (same floats, same
  tie-breaks, same message records).

The kernel is an optimisation layer, not a new algorithm: the golden
equivalence suite (``tests/sched/test_core_equivalence.py``) pins every
registered scheduler to the frozen pre-kernel reference in
:mod:`repro.sched._reference`, and ``benchmarks/bench_ext_sched_core.py``
guards the speedup.

Module-level counters (:func:`kernel_counters`) feed
:class:`~repro.sched.service.ServiceStats` so ``banger sweep --stats``
shows kernel builds and route-cache behaviour.
"""

from __future__ import annotations

import heapq
import threading
import time
from bisect import insort
from typing import Callable, Sequence

from repro.errors import ScheduleError
from repro.graph.analysis import b_levels, static_levels, t_levels
from repro.graph.taskgraph import TaskEdge, TaskGraph
from repro.machine.compiled import (
    compiled_counters,
    compiled_for,
    reset_compiled_counters,
)
from repro.machine.machine import TargetMachine
from repro.sched.schedule import Message, Placement, Schedule

# --------------------------------------------------------------------- #
# observability
# --------------------------------------------------------------------- #
_ZERO_COUNTERS = {
    "kernel_builds": 0,
    "kernel_build_ms": 0.0,
    "route_cache_hits": 0,
    "route_cache_misses": 0,
}
_COUNTERS = dict(_ZERO_COUNTERS)

#: Counter increments are read-modify-write; concurrent server traffic
#: (threaded inline mode, the stats stress test) must not drop counts.
_COUNTER_LOCK = threading.Lock()


def _bump(name: str, delta: int | float = 1) -> None:
    with _COUNTER_LOCK:
        _COUNTERS[name] += delta


def kernel_counters() -> dict[str, int | float]:
    """A snapshot of the process-wide kernel counters (thread-safe).

    ``kernel_builds``/``kernel_build_ms`` count :class:`SchedKernel`
    constructions and their cumulative wall time; ``route_cache_hits``/
    ``route_cache_misses`` count memoized-route lookups across all kernels;
    ``compiled_hits``/``compiled_misses`` count compiled-topology table
    lookups (see :mod:`repro.machine.compiled`).
    """
    with _COUNTER_LOCK:
        snapshot: dict[str, int | float] = dict(_COUNTERS)
    snapshot.update(compiled_counters())
    return snapshot


def reset_kernel_counters() -> None:
    """Zero the kernel counters (benchmarks and tests)."""
    with _COUNTER_LOCK:
        _COUNTERS.update(_ZERO_COUNTERS)
    reset_compiled_counters()


# --------------------------------------------------------------------- #
# the kernel proper
# --------------------------------------------------------------------- #
class SchedKernel:
    """Precomputed, memoized scheduling context for one graph × machine.

    Attributes
    ----------
    tasks / index:
        Task names in graph insertion order and the name → index map.  The
        insertion index doubles as the deterministic tie-breaker every seed
        scheduler used via its ``order`` dict.
    exec_time:
        ``machine.exec_time(graph.work(t))`` per task, computed once.
    in_edges / succ_idx:
        Per-task in-edge lists (graph order, duplicates preserved) and
        per-out-edge successor indices (for ready-set propagation).
    """

    def __init__(self, graph: TaskGraph, machine: TargetMachine):
        t0 = time.perf_counter()
        self.graph = graph
        self.machine = machine
        self.tasks: list[str] = list(graph.task_names)
        self.n = len(self.tasks)
        self.index: dict[str, int] = {t: i for i, t in enumerate(self.tasks)}
        self.exec_time: list[float] = [
            machine.exec_time(graph.work(t)) for t in self.tasks
        ]
        self.in_edges: list[list[TaskEdge]] = [graph.in_edges(t) for t in self.tasks]
        idx = self.index
        self.succ_idx: list[list[int]] = [
            [idx[e.dst] for e in graph.out_edges(t)] for t in self.tasks
        ]
        self._params = machine.params
        self._topology = machine.topology
        # Compile-ahead tables: content-addressed by machine hash, so a warm
        # topology costs one O(1) cache probe instead of lazy BFS per pair.
        self._compiled = compiled_for(machine)
        self._hops: dict[tuple[int, int], int] = {}
        self._comm: dict[tuple[int, float], float] = {}
        self._routes: dict[tuple[int, int], tuple[int, ...]] = {}
        self._mean_comm: dict[float, float] = {}
        self._levels: dict[str, dict[str, float]] = {}
        with _COUNTER_LOCK:
            _COUNTERS["kernel_builds"] += 1
            _COUNTERS["kernel_build_ms"] += (time.perf_counter() - t0) * 1000.0

    # ------------------------------------------------------------------ #
    # memoized cost model (identical values to TargetMachine's methods)
    # ------------------------------------------------------------------ #
    def comm_cost(self, src_proc: int, dst_proc: int, size: float) -> float:
        """Memoized ``machine.comm_cost`` (two levels: hops, then cost)."""
        if src_proc == dst_proc:
            return 0.0
        pair = (src_proc, dst_proc)
        hops = self._hops.get(pair)
        if hops is None:
            hops = self._compiled.hops(src_proc, dst_proc)
            self._hops[pair] = hops
        key = (hops, size)
        cost = self._comm.get(key)
        if cost is None:
            cost = self._params.comm_time(size, hops)
            self._comm[key] = cost
        return cost

    def mean_comm_cost(self, size: float) -> float:
        """Memoized ``machine.mean_comm_cost`` (one entry per message size)."""
        cost = self._mean_comm.get(size)
        if cost is None:
            cost = self._compiled.mean_comm_cost(self._params, size)
            self._mean_comm[size] = cost
        return cost

    def route(self, src_proc: int, dst_proc: int) -> tuple[int, ...]:
        """Memoized ``machine.route`` as a tuple (ready for message records)."""
        pair = (src_proc, dst_proc)
        path = self._routes.get(pair)
        if path is None:
            _bump("route_cache_misses")
            path = self._compiled.route(src_proc, dst_proc)
            self._routes[pair] = path
        else:
            _bump("route_cache_hits")
        return path

    # ------------------------------------------------------------------ #
    # memoized priority levels (same floats as the seed lambdas produced)
    # ------------------------------------------------------------------ #
    def _exec_of(self, task: str) -> float:
        return self.exec_time[self.index[task]]

    def b_levels_comm(self) -> dict[str, float]:
        """b-levels with mean machine communication (MH/MCP/CPOP priority)."""
        levels = self._levels.get("bl_comm")
        if levels is None:
            levels = b_levels(
                self.graph,
                exec_time=self._exec_of,
                comm_cost=lambda e: self.mean_comm_cost(e.size),
            )
            self._levels["bl_comm"] = levels
        return levels

    def t_levels_comm(self) -> dict[str, float]:
        levels = self._levels.get("tl_comm")
        if levels is None:
            levels = t_levels(
                self.graph,
                exec_time=self._exec_of,
                comm_cost=lambda e: self.mean_comm_cost(e.size),
            )
            self._levels["tl_comm"] = levels
        return levels

    def static_levels(self) -> dict[str, float]:
        levels = self._levels.get("sl")
        if levels is None:
            levels = static_levels(self.graph, exec_time=self._exec_of)
            self._levels["sl"] = levels
        return levels

    def priority_array(self, levels: dict[str, float]) -> list[float]:
        """A level dict reindexed by task index (for heap keys)."""
        return [levels[t] for t in self.tasks]


# --------------------------------------------------------------------- #
# incremental ready tracking
# --------------------------------------------------------------------- #
class _ReadyBase:
    """Pending-predecessor counters shared by the heap and set variants.

    A task's counter starts at its in-edge count (duplicate edges count per
    edge on both sides, so the arithmetic is self-consistent) and each
    completed predecessor decrements it once per connecting edge; the task
    becomes ready exactly when the counter reaches zero — precisely the
    ``all(p in done ...)`` condition of the seed's ``ready_tasks`` rescan.
    """

    def __init__(self, kernel: SchedKernel):
        self._succ = kernel.succ_idx
        self._pending = [len(edges) for edges in kernel.in_edges]

    def _initial_ready(self) -> list[int]:
        return [i for i, count in enumerate(self._pending) if count == 0]

    def _release(self, i: int) -> list[int]:
        """Decrement ``i``'s successors; return the newly ready indices."""
        fresh: list[int] = []
        pending = self._pending
        for j in self._succ[i]:
            pending[j] -= 1
            if pending[j] == 0:
                fresh.append(j)
        return fresh


class ReadyHeap(_ReadyBase):
    """Priority-ordered ready tasks for static-priority schedulers.

    ``key(i)`` must be a total order whose minimum matches the seed
    scheduler's selection — e.g. ``(-prio[i], i)`` reproduces
    ``max(ready, key=lambda t: (prio[t], -order[t]))`` exactly, because the
    insertion index ``i`` IS the seed's ``order[t]``.
    """

    def __init__(self, kernel: SchedKernel, key: Callable[[int], tuple]):
        super().__init__(kernel)
        self._key = key
        self._heap = [(key(i), i) for i in self._initial_ready()]
        heapq.heapify(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def pop(self) -> int:
        """Remove and return the highest-priority ready task index."""
        if not self._heap:
            raise ScheduleError("no ready task (cyclic graph?)")
        return heapq.heappop(self._heap)[1]

    def complete(self, i: int) -> None:
        """Mark ``i`` done (after :meth:`pop`), releasing its successors."""
        for j in self._release(i):
            heapq.heappush(self._heap, (self._key(j), j))


class ReadySet(_ReadyBase):
    """Iterable ready set for schedulers whose selection key is dynamic
    (ETF, DLS evaluate every ready task × processor pair per step)."""

    def __init__(self, kernel: SchedKernel):
        super().__init__(kernel)
        self._ready: set[int] = set(self._initial_ready())

    def __len__(self) -> int:
        return len(self._ready)

    def __iter__(self):
        return iter(self._ready)

    def complete(self, i: int) -> None:
        """Remove ``i`` from the set and release its successors."""
        self._ready.discard(i)
        self._ready.update(self._release(i))


# --------------------------------------------------------------------- #
# schedule-under-construction with O(1) hot-path queries
# --------------------------------------------------------------------- #
class KernelState:
    """A schedule being built, mirrored for fast queries.

    Wraps the real :class:`~repro.sched.schedule.Schedule` (still the output
    object and overlap validator) and maintains:

    * ``tails`` — per-processor finish of the last-by-start placement, so
      non-insertion earliest-start is O(1) instead of an ``on_proc`` copy;
    * per-task placement lists pre-sorted by ``(finish, proc)``, so
      ``placements``/``primary`` skip the per-call sort of the seed.

    All query methods take task *indices* (see :attr:`SchedKernel.index`);
    predecessor lookups inside take the task *names* carried by edges.
    """

    def __init__(self, kernel: SchedKernel, scheduler_name: str = ""):
        self.kernel = kernel
        self.sched = Schedule(kernel.graph, kernel.machine, scheduler=scheduler_name)
        self.tails: list[float] = [0.0] * kernel.machine.n_procs
        self._placed: dict[str, list[Placement]] = {}

    # ------------------------------------------------------------------ #
    def __contains__(self, task: str) -> bool:
        return task in self._placed

    def placements(self, task: str) -> list[Placement]:
        """All copies of ``task``, sorted by ``(finish, proc)`` — live list."""
        return self._placed[task]

    def placements_or_none(self, task: str) -> list[Placement] | None:
        return self._placed.get(task)

    def primary(self, task: str) -> Placement:
        """The earliest-finishing copy (same tie-break as ``Schedule.primary``)."""
        return self._placed[task][0]

    # ------------------------------------------------------------------ #
    def add(self, task: str, proc: int, start: float, finish: float) -> Placement:
        """Place a (copy of) ``task`` and update the mirrors."""
        entry = self.sched.add(task, proc, start, finish)
        self.tails[proc] = self.sched.proc_tail(proc)
        lst = self._placed.setdefault(task, [])
        insort(lst, entry, key=lambda e: (e.finish, e.proc))
        return entry

    # ------------------------------------------------------------------ #
    # the base.py primitives, kernel-accelerated and byte-identical
    # ------------------------------------------------------------------ #
    def data_ready_time(self, ti: int, proc: int) -> float:
        kernel = self.kernel
        comm = kernel.comm_cost
        placed = self._placed
        ready = 0.0
        for edge in kernel.in_edges[ti]:
            plist = placed.get(edge.src)
            if plist is None:
                raise ScheduleError(
                    f"cannot compute EST of {kernel.tasks[ti]!r}: "
                    f"predecessor {edge.src!r} unscheduled"
                )
            if len(plist) == 1:
                src = plist[0]
                arrival = src.finish + comm(src.proc, proc, edge.size)
            else:
                arrival = min(
                    s.finish + comm(s.proc, proc, edge.size) for s in plist
                )
            if arrival > ready:
                ready = arrival
        return ready

    def earliest_start(self, ti: int, proc: int, insertion: bool = False) -> float:
        if not 0 <= proc < len(self.tails):
            raise ScheduleError(
                f"processor {proc} out of range for machine "
                f"{self.kernel.machine.name!r}"
            )
        ready = self.data_ready_time(ti, proc)
        if not insertion:
            tail = self.tails[proc]
            return ready if ready > tail else tail
        return self.sched.insertion_slot(proc, ready, self.kernel.exec_time[ti])

    def best_processor(self, ti: int, insertion: bool = False) -> tuple[int, float]:
        duration = self.kernel.exec_time[ti]
        best: tuple[float, int, float] | None = None
        for proc in range(len(self.tails)):
            start = self.earliest_start(ti, proc, insertion=insertion)
            key = (start + duration, proc, start)
            if best is None or key < best:
                best = key
        assert best is not None
        return best[1], best[2]

    def place(self, ti: int, proc: int, start: float) -> None:
        """Place task ``ti`` and record its messages — mirrors ``base.place``."""
        kernel = self.kernel
        comm = kernel.comm_cost
        task = kernel.tasks[ti]
        self.add(task, proc, start, start + kernel.exec_time[ti])
        for edge in kernel.in_edges[ti]:
            plist = self._placed[edge.src]
            if len(plist) == 1:
                src = plist[0]
            else:
                src = min(
                    plist, key=lambda s: s.finish + comm(s.proc, proc, edge.size)
                )
            if src.proc == proc:
                continue
            cost = comm(src.proc, proc, edge.size)
            self.sched.add_message(
                Message(
                    src_task=edge.src,
                    dst_task=task,
                    var=edge.var,
                    size=edge.size,
                    src_proc=src.proc,
                    dst_proc=proc,
                    start=src.finish,
                    finish=src.finish + cost,
                    route=kernel.route(src.proc, proc),
                )
            )


# --------------------------------------------------------------------- #
# convenience driver for the common static-priority loop
# --------------------------------------------------------------------- #
def run_priority_list(
    kernel: SchedKernel,
    state: KernelState,
    key: Callable[[int], tuple],
    pick_processor: Callable[[int], tuple[int, float]],
) -> Schedule:
    """The canonical list-scheduling loop: heap-pop, place, release.

    ``pick_processor(ti) -> (proc, start)`` is the only scheduler-specific
    part; everything else (ready tracking, placement, message recording) is
    shared.
    """
    heap = ReadyHeap(kernel, key)
    for _ in range(kernel.n):
        ti = heap.pop()
        proc, start = pick_processor(ti)
        state.place(ti, proc, start)
        heap.complete(ti)
    return state.sched
