"""Schedule (de)serialization: save a Gantt chart, reload it later.

A schedule document embeds its task graph and machine so it is
self-contained; loading reconstructs a fully functional
:class:`~repro.sched.schedule.Schedule` that can be rendered, simulated,
edited, and code-generated.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ScheduleError
from repro.graph.serialize import taskgraph_from_dict, taskgraph_to_dict
from repro.machine.machine import TargetMachine
from repro.sched.schedule import Message, Schedule

FORMAT_VERSION = 1


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "type": "schedule",
        "scheduler": schedule.scheduler,
        "graph": taskgraph_to_dict(schedule.graph),
        "machine": schedule.machine.to_dict(),
        "placements": [
            {"task": e.task, "proc": e.proc, "start": e.start, "finish": e.finish}
            for e in schedule
        ],
        "messages": [
            {
                "src_task": m.src_task,
                "dst_task": m.dst_task,
                "var": m.var,
                "size": m.size,
                "src_proc": m.src_proc,
                "dst_proc": m.dst_proc,
                "start": m.start,
                "finish": m.finish,
                "route": list(m.route),
            }
            for m in schedule.messages
        ],
    }


def schedule_from_dict(data: dict[str, Any]) -> Schedule:
    if data.get("type") != "schedule":
        raise ScheduleError(f"not a schedule document (type={data.get('type')!r})")
    graph = taskgraph_from_dict(data["graph"])
    machine = TargetMachine.from_dict(data["machine"])
    schedule = Schedule(graph, machine, scheduler=data.get("scheduler", ""))
    for p in data.get("placements", []):
        schedule.add(p["task"], p["proc"], p["start"], p["finish"])
    for m in data.get("messages", []):
        schedule.add_message(
            Message(
                src_task=m["src_task"],
                dst_task=m["dst_task"],
                var=m.get("var", ""),
                size=m.get("size", 1.0),
                src_proc=m["src_proc"],
                dst_proc=m["dst_proc"],
                start=m["start"],
                finish=m["finish"],
                route=tuple(m.get("route", ())),
            )
        )
    return schedule


def schedule_to_json(schedule: Schedule, indent: int | None = 2) -> str:
    return json.dumps(schedule_to_dict(schedule), indent=indent)


def schedule_from_json(text: str) -> Schedule:
    return schedule_from_dict(json.loads(text))
