"""Grain packing (Kruatrachue & Lewis): merge fine grains into larger tasks.

"Static Task Scheduling and Grain Packing in Parallel Processing Systems"
is the other half of the Kruatrachue thesis behind Banger's scheduling layer:
when tasks are small relative to message costs, *pack* communicating tasks
into one grain so the message disappears, then schedule the coarser graph.

Two packers are provided:

* :func:`pack_linear_chains` — purely structural: merge ``u -> v`` whenever
  ``u`` has one successor and ``v`` one predecessor (never changes the
  graph's parallelism);
* :func:`pack_by_ratio` — machine-aware: repeatedly merge across the edge
  whose communication cost most exceeds the gain from running its endpoints
  in parallel, subject to an acyclicity check.

:class:`GrainPackedScheduler` wraps any inner scheduler: pack, schedule the
packed graph, then expand each grain back into its constituent tasks run
back-to-back in the grain's slot, yielding a feasible schedule of the
*original* graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScheduleError
from repro.graph.taskgraph import TaskGraph
from repro.machine.machine import TargetMachine
from repro.sched.base import Scheduler
from repro.sched.schedule import Schedule


@dataclass
class Packing:
    """A coarsened graph plus the grain → ordered-member mapping."""

    packed: TaskGraph
    members: dict[str, list[str]] = field(default_factory=dict)

    def grain_of(self, task: str) -> str:
        for grain, tasks in self.members.items():
            if task in tasks:
                return grain
        raise ScheduleError(f"task {task!r} not in any grain")


def _grain_work(graph: TaskGraph, members: list[str], machine: TargetMachine | None) -> float:
    """Weight of a grain such that its execution time equals the sum of its
    members' execution times (extra process startups folded into work)."""
    total = sum(graph.work(t) for t in members)
    if machine is not None and len(members) > 1:
        total += (len(members) - 1) * machine.params.process_startup * machine.params.processor_speed
    return total


def _build_packed(
    graph: TaskGraph, groups: list[list[str]], machine: TargetMachine | None
) -> Packing:
    """Contract each ordered group into one grain task."""
    owner: dict[str, str] = {}
    members: dict[str, list[str]] = {}
    for group in groups:
        grain = group[0] if len(group) == 1 else "+".join(group)
        members[grain] = list(group)
        for t in group:
            owner[t] = grain

    packed = TaskGraph(f"{graph.name}:packed")
    for grain, group in members.items():
        packed.add_task(grain, work=_grain_work(graph, group, machine),
                        label="+".join(graph.task(t).label or t for t in group))
    seen: set[tuple[str, str, str]] = set()
    for e in graph.edges:
        gs, gd = owner[e.src], owner[e.dst]
        if gs == gd:
            continue
        key = (gs, gd, e.var)
        if key in seen:
            continue
        seen.add(key)
        packed.add_edge(gs, gd, var=e.var, size=e.size)
    if not packed.is_acyclic():
        raise ScheduleError("grain packing produced a cyclic graph")
    return Packing(packed=packed, members=members)


def pack_linear_chains(
    graph: TaskGraph, machine: TargetMachine | None = None
) -> Packing:
    """Merge maximal single-in/single-out chains into grains."""
    next_in_chain: dict[str, str] = {}
    for t in graph.task_names:
        succs = graph.successors(t)
        if len(set(succs)) == 1:
            (v,) = set(succs)
            if len(set(graph.predecessors(v))) == 1:
                next_in_chain[t] = v
    has_prev = set(next_in_chain.values())
    groups: list[list[str]] = []
    for t in graph.topological_order():
        if t in has_prev:
            continue
        group = [t]
        while group[-1] in next_in_chain:
            group.append(next_in_chain[group[-1]])
        groups.append(group)
    return _build_packed(graph, groups, machine)


def pack_by_ratio(
    graph: TaskGraph,
    machine: TargetMachine,
    threshold: float = 1.0,
    max_grain_tasks: int = 8,
) -> Packing:
    """Merge across edges whose mean message cost exceeds ``threshold`` ×
    the smaller endpoint's execution time.

    Candidate edges are processed heaviest-cost-first; a merge is skipped if
    it would create a cycle (i.e. another path connects the two grains) or
    grow a grain past ``max_grain_tasks`` members.
    """
    owner = {t: t for t in graph.task_names}
    members: dict[str, list[str]] = {t: [t] for t in graph.task_names}

    def find(t: str) -> str:
        while owner[t] != t:
            owner[t] = owner[owner[t]]
            t = owner[t]
        return t

    def would_cycle(a: str, b: str) -> bool:
        """True if merging grains a and b creates a cycle in the contraction."""
        contracted: dict[str, set[str]] = {}
        for e in graph.edges:
            ga, gb = find(e.src), find(e.dst)
            ga = a if ga == b else ga
            gb = a if gb == b else gb
            if ga != gb:
                contracted.setdefault(ga, set()).add(gb)
        # DFS from the merged grain looking for a path back to itself
        seen: set[str] = set()
        stack = list(contracted.get(a, ()))
        while stack:
            g = stack.pop()
            if g == a:
                return True
            if g in seen:
                continue
            seen.add(g)
            stack.extend(contracted.get(g, ()))
        return False

    comm_of_size: dict[float, float] = {}

    def mean_comm(size: float) -> float:
        memo = comm_of_size.get(size)
        if memo is None:
            memo = machine.mean_comm_cost(size)
            comm_of_size[size] = memo
        return memo

    exec_of = {t: machine.exec_time(graph.work(t)) for t in graph.task_names}
    candidates = sorted(
        graph.edges,
        key=lambda e: -mean_comm(e.size),
    )
    for e in candidates:
        cost = mean_comm(e.size)
        gain = min(exec_of[e.src], exec_of[e.dst])
        if cost < threshold * gain:
            continue
        ga, gb = find(e.src), find(e.dst)
        if ga == gb:
            continue
        if len(members[ga]) + len(members[gb]) > max_grain_tasks:
            continue
        if would_cycle(ga, gb):
            continue
        owner[gb] = ga
        members[ga].extend(members.pop(gb))

    # order each grain's members topologically so expansion is feasible
    topo_pos = {t: i for i, t in enumerate(graph.topological_order())}
    groups = [sorted(g, key=topo_pos.__getitem__) for g in members.values()]
    groups.sort(key=lambda g: topo_pos[g[0]])
    return _build_packed(graph, groups, machine)


class GrainPackedScheduler(Scheduler):
    """Pack grains, schedule the coarse graph, expand back to real tasks.

    Parameters
    ----------
    inner:
        Scheduler for the packed graph.
    packer:
        ``"chains"`` (structural) or ``"ratio"`` (machine-aware).
    threshold:
        Passed to :func:`pack_by_ratio`.
    """

    name = "grain"

    def __init__(self, inner: Scheduler, packer: str = "ratio", threshold: float = 1.0):
        if packer not in ("chains", "ratio"):
            raise ScheduleError(f"unknown packer {packer!r} (use 'chains' or 'ratio')")
        self.inner = inner
        self.packer = packer
        self.threshold = threshold
        self.name = f"grain[{inner.name}]"

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        if self.packer == "chains":
            packing = pack_linear_chains(graph, machine)
        else:
            packing = pack_by_ratio(graph, machine, threshold=self.threshold)
        coarse = self.inner.schedule(packing.packed, machine)
        expanded = expand_packed_schedule(coarse, packing, graph)
        expanded.scheduler = self.name
        return expanded


def expand_packed_schedule(
    coarse: Schedule, packing: Packing, graph: TaskGraph
) -> Schedule:
    """Rewrite a packed-graph schedule as a schedule of the original graph.

    Each grain's members run back-to-back inside the grain's slot, in the
    grain's stored (topological) order; the grain weight was constructed so
    the pieces exactly fill the slot.
    """
    machine = coarse.machine
    out = Schedule(graph, machine, scheduler=coarse.scheduler and f"{coarse.scheduler}+expand")
    for entry in coarse:
        t = entry.start
        for member in packing.members[entry.task]:
            dur = machine.exec_time(graph.work(member))
            out.add(member, entry.proc, t, t + dur)
            t += dur
        if t > entry.finish + 1e-6:
            raise ScheduleError(
                f"grain {entry.task!r} members overflow its slot "
                f"({t:g} > {entry.finish:g})"
            )
    out.messages = list(coarse.messages)
    return out
