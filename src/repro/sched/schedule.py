"""Schedule representation: the data behind the paper's Gantt charts.

A :class:`Schedule` maps each task of a :class:`~repro.graph.taskgraph.TaskGraph`
to one or more ``(processor, start, finish)`` placements ("or more" because
the duplication heuristic may run a task on several processors).  Schedules
also record the messages the scheduler planned, so communication can be drawn
on the Gantt chart and replayed by the simulator.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ScheduleError
from repro.graph.taskgraph import TaskGraph
from repro.machine.machine import TargetMachine


@dataclass(frozen=True)
class Placement:
    """One execution of ``task`` on ``proc`` during ``[start, finish)``."""

    task: str
    proc: int
    start: float
    finish: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ScheduleError(f"task {self.task!r}: negative start {self.start}")
        if self.finish < self.start:
            raise ScheduleError(
                f"task {self.task!r}: finish {self.finish} before start {self.start}"
            )

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class Message:
    """A planned inter-processor transfer for edge ``src_task -> dst_task``."""

    src_task: str
    dst_task: str
    var: str
    size: float
    src_proc: int
    dst_proc: int
    start: float
    finish: float
    route: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.finish < self.start:
            raise ScheduleError(
                f"message {self.src_task}->{self.dst_task}: finish before start"
            )


class Schedule:
    """Task placements on a target machine, plus planned messages.

    Parameters
    ----------
    graph, machine:
        What is being scheduled and onto what.
    scheduler:
        Name of the heuristic that produced this schedule (for reports).
    """

    def __init__(self, graph: TaskGraph, machine: TargetMachine, scheduler: str = ""):
        self.graph = graph
        self.machine = machine
        self.scheduler = scheduler
        self._by_proc: dict[int, list[Placement]] = {p: [] for p in machine.procs()}
        self._by_task: dict[str, list[Placement]] = {}
        # Parallel per-processor arrays kept in lockstep with _by_proc:
        # placement start times (for O(log n) insertion-point search) and
        # prefix maxima of finish times (for O(log n) idle-gap search).
        self._starts: dict[int, list[float]] = {p: [] for p in machine.procs()}
        self._pmax: dict[int, list[float]] = {p: [] for p in machine.procs()}
        self.messages: list[Message] = []

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add(self, task: str, proc: int, start: float, finish: float) -> Placement:
        """Place (a copy of) ``task`` on ``proc``; overlap is checked here."""
        if task not in self.graph:
            raise ScheduleError(f"task {task!r} is not in graph {self.graph.name!r}")
        if proc not in self._by_proc:
            raise ScheduleError(
                f"processor {proc} out of range for machine {self.machine.name!r}"
            )
        entry = Placement(task, proc, start, finish)
        timeline = self._by_proc[proc]
        starts = self._starts[proc]
        idx = bisect.bisect_left(starts, start)
        if idx > 0 and timeline[idx - 1].finish > start + 1e-9:
            raise ScheduleError(
                f"task {task!r} at [{start}, {finish}) overlaps "
                f"{timeline[idx - 1].task!r} on processor {proc}"
            )
        if idx < len(timeline) and timeline[idx].start < finish - 1e-9:
            raise ScheduleError(
                f"task {task!r} at [{start}, {finish}) overlaps "
                f"{timeline[idx].task!r} on processor {proc}"
            )
        if any(abs(p.start - start) < 1e-12 and p.proc == proc
               for p in self._by_task.get(task, ())):
            raise ScheduleError(f"task {task!r} placed twice at the same slot")
        timeline.insert(idx, entry)
        starts.insert(idx, start)
        pmax = self._pmax[proc]
        if idx == len(pmax):
            pmax.append(finish if not pmax else max(pmax[-1], finish))
        else:
            pmax.insert(idx, 0.0)
            running = pmax[idx - 1] if idx else 0.0
            for j in range(idx, len(timeline)):
                if timeline[j].finish > running:
                    running = timeline[j].finish
                pmax[j] = running
        self._by_task.setdefault(task, []).append(entry)
        return entry

    def add_message(self, message: Message) -> None:
        self.messages.append(message)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def __contains__(self, task: str) -> bool:
        return task in self._by_task

    def __iter__(self) -> Iterator[Placement]:
        for proc in sorted(self._by_proc):
            yield from self._by_proc[proc]

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_task.values())

    def placements(self, task: str) -> list[Placement]:
        """Every copy of ``task`` (more than one only under duplication)."""
        if task not in self._by_task:
            raise ScheduleError(f"task {task!r} has not been scheduled")
        return sorted(self._by_task[task], key=lambda e: (e.finish, e.proc))

    def primary(self, task: str) -> Placement:
        """The earliest-finishing copy of ``task``."""
        return self.placements(task)[0]

    def proc_of(self, task: str) -> int:
        return self.primary(task).proc

    def assignment(self) -> dict[str, int]:
        """task -> processor of its primary copy."""
        return {t: self.primary(t).proc for t in self._by_task}

    def on_proc(self, proc: int) -> list[Placement]:
        if proc not in self._by_proc:
            raise ScheduleError(f"processor {proc} out of range")
        return list(self._by_proc[proc])

    def timeline(self, proc: int) -> list[Placement]:
        """The live start-ordered timeline of ``proc`` — do NOT mutate.

        Unlike :meth:`on_proc` this does not copy, so the scheduler inner
        loops can read timelines without per-call allocation.
        """
        if proc not in self._by_proc:
            raise ScheduleError(f"processor {proc} out of range")
        return self._by_proc[proc]

    def proc_tail(self, proc: int) -> float:
        """Finish time of the last-by-start placement on ``proc`` (0 if idle)."""
        timeline = self._by_proc[proc]
        return timeline[-1].finish if timeline else 0.0

    def insertion_slot(self, proc: int, ready: float, duration: float) -> float:
        """Earliest gap start for a ``duration`` task ready at ``ready``.

        Identical semantics (including the 1e-12 fit tolerance) to scanning
        the whole timeline for the first idle gap, but skips straight to the
        first placement whose start a gap could possibly precede, using the
        parallel start array and the prefix-max finish array — O(log n)
        plus the short scan over actually-plausible gaps.
        """
        timeline = self._by_proc[proc]
        if not timeline:
            return ready
        starts = self._starts[proc]
        pmax = self._pmax[proc]
        # A gap ending at starts[k] can only fit if
        # max(ready, prev_end) + duration <= starts[k] + 1e-12, and since
        # max(ready, prev_end) >= ready, every k with
        # ready + duration > starts[k] + 1e-12 is certainly rejected.
        k = bisect.bisect_left(starts, ready + duration - 1e-12)
        while k > 0 and not (ready + duration > starts[k - 1] + 1e-12):
            k -= 1  # float-boundary guard: only skip provably rejected gaps
        prev_end = pmax[k - 1] if k else 0.0
        for j in range(k, len(timeline)):
            start = ready if ready > prev_end else prev_end
            if start + duration <= starts[j] + 1e-12:
                return start
            finish = timeline[j].finish
            if finish > prev_end:
                prev_end = finish
        return ready if ready > prev_end else prev_end

    # ------------------------------------------------------------------ #
    # aggregate measures
    # ------------------------------------------------------------------ #
    @property
    def n_procs(self) -> int:
        return self.machine.n_procs

    def makespan(self) -> float:
        return max((e.finish for v in self._by_proc.values() for e in v), default=0.0)

    def proc_finish(self, proc: int) -> float:
        timeline = self.on_proc(proc)
        return timeline[-1].finish if timeline else 0.0

    def busy_time(self, proc: int) -> float:
        return sum(e.duration for e in self.on_proc(proc))

    def idle_time(self, proc: int) -> float:
        """Idle time on ``proc`` before the global makespan."""
        return self.makespan() - self.busy_time(proc)

    def procs_used(self) -> list[int]:
        return [p for p, v in sorted(self._by_proc.items()) if v]

    def gaps(self, proc: int) -> list[tuple[float, float]]:
        """Idle intervals on ``proc`` between time 0 and its last finish."""
        out: list[tuple[float, float]] = []
        t = 0.0
        for e in self.on_proc(proc):
            if e.start > t + 1e-12:
                out.append((t, e.start))
            t = max(t, e.finish)
        return out

    def has_duplication(self) -> bool:
        return any(len(v) > 1 for v in self._by_task.values())

    def scheduled_tasks(self) -> list[str]:
        return sorted(self._by_task)

    def is_complete(self) -> bool:
        """Every graph task has at least one placement."""
        return all(t in self._by_task for t in self.graph.task_names)

    def __repr__(self) -> str:
        return (
            f"Schedule({self.scheduler or 'unnamed'!r}, graph={self.graph.name!r}, "
            f"machine={self.machine.name!r}, makespan={self.makespan():.3f})"
        )
