"""The scheduling service: content-addressed caching + parallel sweeps.

The paper's promise is *instant feedback* — every edit should refresh the
Gantt charts and the speedup-prediction chart immediately.  Recomputing a
schedule from scratch on every query breaks that promise as designs and
machine sweeps grow, so :class:`ScheduleService` sits between the
interactive surface (:class:`~repro.env.project.BangerProject`, the CLI,
the shell) and the heuristics in :mod:`repro.sched`:

* **Content-addressed memoization.**  A schedule is keyed by the fingerprint
  of its task graph (:meth:`TaskGraph.content_hash`), its target machine
  (:meth:`TargetMachine.content_hash`), and its scheduler configuration
  (:func:`~repro.sched.registry.scheduler_cache_key`).  Identical questions
  get identical — cached — answers; any mutation produces a new key, so the
  cache can never serve stale results.  An in-memory LRU is always on; an
  on-disk cache (``BANGER_CACHE_DIR`` or ``~/.cache/banger``, versioned)
  is optional and corruption-tolerant: a bad entry is evicted and
  recomputed, never a traceback.

* **Parallel sweeps.**  Figure-3 style sweeps (many machine sizes, many
  schedulers) fan out across a :class:`~concurrent.futures.ProcessPoolExecutor`
  with deterministic result ordering and a graceful serial fallback when the
  scheduler cannot be pickled (or no extra CPUs exist).

* **Observability.**  :meth:`ScheduleService.stats` reports hits, misses,
  evictions, worker counts, and per-sweep wall time — surfaced by
  ``banger sweep --stats``.

Schedules returned by the service are shared objects; treat them as
immutable (every editing helper in :mod:`repro.sched.edit` already returns
a new schedule).
"""

from __future__ import annotations

import json
import os
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Sequence

from repro.errors import ScheduleError
from repro.graph.analysis import average_parallelism
from repro.graph.serialize import fingerprint
from repro.graph.taskgraph import TaskGraph
from repro.machine.compiled import (
    CompiledTopology,
    compiled_for,
    evict_compiled,
    seed_compiled,
)
from repro.machine.machine import TargetMachine, make_machine, single_processor
from repro.machine.params import IDEAL, MachineParams
from repro.sched.base import Scheduler
from repro.sched.core import kernel_counters
from repro.sched.registry import resolve_scheduler, scheduler_cache_key
from repro.sched.schedule import Schedule
from repro.sched.serialize import schedule_from_dict, schedule_to_dict
from repro.sched.sweeps import SpeedupPoint, SpeedupReport
from repro.store.evict import dir_files, enforce_size_cap

#: Bump when the on-disk entry format changes; old directories are ignored.
CACHE_VERSION = 1

#: Sweeps with at least this many tasks per scheduling problem are worth a
#: process pool; below it, fork/pickle overhead dominates and auto mode
#: stays serial.
AUTO_PARALLEL_MIN_TASKS = 64


# --------------------------------------------------------------------- #
# the one options object every scheduling entry point consumes
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScheduleRequest:
    """Options for any scheduling query — single schedule or sweep.

    Parameters
    ----------
    scheduler:
        Registry name or :class:`Scheduler` instance.
    proc_counts:
        Machine sizes for sweeps (``None`` = the caller's default).
    family:
        Topology family for sweeps (``None`` = derive from the project's
        configured machine).
    params:
        Machine parameters for sweeps (``None`` = the configured machine's).
    jobs:
        Sweep parallelism: ``None`` = auto, ``1`` = serial, ``n`` = up to
        ``n`` worker processes.
    use_cache:
        Set ``False`` to bypass (neither read nor write) the cache.
    """

    scheduler: str | Scheduler = "mh"
    proc_counts: tuple[int, ...] | None = None
    family: str | None = None
    params: MachineParams | None = None
    jobs: int | None = None
    use_cache: bool = True

    def resolved_scheduler(self) -> Scheduler:
        return resolve_scheduler(self.scheduler)


def as_request(value: Any = None, **overrides: Any) -> ScheduleRequest:
    """Coerce the polymorphic argument of the project API into a request.

    Accepts an existing :class:`ScheduleRequest`, a scheduler name, a
    :class:`Scheduler` instance, a sequence of processor counts, or ``None``.
    Keyword overrides with value ``None`` are ignored, so call sites can pass
    their optional parameters straight through.
    """
    if isinstance(value, ScheduleRequest):
        base = value
    elif value is None:
        base = ScheduleRequest()
    elif isinstance(value, (str, Scheduler)):
        base = ScheduleRequest(scheduler=value)
    elif isinstance(value, Sequence):
        base = ScheduleRequest(proc_counts=tuple(int(n) for n in value))
    else:
        raise ScheduleError(
            "expected a ScheduleRequest, scheduler name, Scheduler, or "
            f"sequence of processor counts, got {type(value).__name__}"
        )
    updates = {k: v for k, v in overrides.items() if v is not None}
    return replace(base, **updates) if updates else base


def default_family(machine: TargetMachine, fallback: str = "hypercube") -> str:
    """The sweep family implied by a configured machine.

    Custom (hand-drawn or reloaded-without-family) topologies cannot be
    rebuilt at other sizes, so they fall back to the paper's hypercube.
    """
    family = machine.topology.family
    return fallback if family == "custom" else family


# --------------------------------------------------------------------- #
# observability
# --------------------------------------------------------------------- #
@dataclass
class ServiceStats:
    """Counters for cache behaviour and sweep execution."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    ir_hits: int = 0
    ir_misses: int = 0
    disk_hits: int = 0
    disk_writes: int = 0
    disk_evictions: int = 0
    disk_gc_deletions: int = 0
    sweeps: int = 0
    parallel_sweeps: int = 0
    serial_fallbacks: int = 0
    last_sweep_seconds: float = 0.0
    last_sweep_jobs: int = 1
    max_workers: int = 1
    entries: int = 0
    kernel_builds: int = 0
    kernel_build_ms: float = 0.0
    route_cache_hits: int = 0
    route_cache_misses: int = 0
    compiled_hits: int = 0
    compiled_misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        doc = dict(vars(self))
        doc["hit_rate"] = round(self.hit_rate, 4)
        return doc

    def render(self) -> str:
        return (
            f"cache: {self.hits} hit(s), {self.misses} miss(es), "
            f"{self.evictions} eviction(s), {self.entries} entries "
            f"(hit rate {self.hit_rate:.0%})\n"
            f"disk:  {self.disk_hits} hit(s), {self.disk_writes} write(s), "
            f"{self.disk_evictions} corrupt entr(ies) evicted, "
            f"{self.disk_gc_deletions} trimmed by the size cap\n"
            f"sweep: {self.sweeps} run(s), {self.parallel_sweeps} parallel, "
            f"{self.serial_fallbacks} serial fallback(s), last "
            f"{self.last_sweep_seconds * 1000:.1f} ms on "
            f"{self.last_sweep_jobs} job(s) (max workers {self.max_workers})\n"
            f"kernel: {self.kernel_builds} build(s) in "
            f"{self.kernel_build_ms:.1f} ms, routes {self.route_cache_hits} "
            f"hit(s) / {self.route_cache_misses} miss(es), compiled "
            f"topologies {self.compiled_hits} hit(s) / "
            f"{self.compiled_misses} miss(es)"
        )


# --------------------------------------------------------------------- #
# process-pool worker (module level so it pickles)
# --------------------------------------------------------------------- #
def _schedule_worker(
    scheduler: Scheduler, graph: TaskGraph, machine: TargetMachine
) -> Schedule:
    return scheduler.schedule(graph, machine)


#: Exceptions that mean "this work could not be shipped to a worker process"
#: (unpicklable scheduler/graph, dead pool, fork failure) — everything else
#: is a genuine scheduling error and propagates.
_POOL_ERRORS = (
    pickle.PicklingError,
    BrokenProcessPool,
    AttributeError,
    TypeError,
    ImportError,
    OSError,
)


class ScheduleService:
    """Persistent, queryable scheduling behind the interactive surface.

    Parameters
    ----------
    max_entries:
        In-memory LRU capacity (schedules, across all graphs/machines).
    disk_cache:
        ``None`` (default): on-disk caching is enabled only when the
        ``BANGER_CACHE_DIR`` environment variable is set.  ``True``: use
        ``$BANGER_CACHE_DIR``, else ``$XDG_CACHE_HOME/banger``, else
        ``~/.cache/banger``.  ``False``: memory only.  A path: use it.
    max_workers:
        Upper bound on sweep worker processes (default: CPU count).
    disk_cache_max_bytes:
        Byte cap on the versioned disk cache.  ``None`` (default) reads
        ``BANGER_CACHE_MAX_BYTES`` from the environment; unset/0 means
        uncapped (the pre-cap behaviour).  When set, every disk write
        trims the cache oldest-first back under the cap using the shared
        eviction policy in :mod:`repro.store.evict`.
    """

    def __init__(
        self,
        max_entries: int = 512,
        disk_cache: bool | str | Path | None = None,
        max_workers: int | None = None,
        disk_cache_max_bytes: int | None = None,
    ):
        if max_entries < 1:
            raise ScheduleError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        if disk_cache_max_bytes is None:
            try:
                disk_cache_max_bytes = int(
                    os.environ.get("BANGER_CACHE_MAX_BYTES", "0")
                )
            except ValueError:
                disk_cache_max_bytes = 0
        self.disk_cache_max_bytes = disk_cache_max_bytes or None
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self._lru: "OrderedDict[tuple[str, str, str], Schedule]" = OrderedDict()
        # Lowered-program cache (memory only): same content key as the
        # schedule LRU — the IR is a pure function of (graph, machine,
        # scheduler) — but a separate store, because the disk layer only
        # knows how to round-trip Schedule documents.
        self._ir_lru: "OrderedDict[tuple[str, str, str], Any]" = OrderedDict()
        # Compiled-topology tables, keyed by machine hash alone (they depend
        # on nothing else).  Also written through to the disk tier so warm
        # tables are shared across processes and shards.
        self._compiled_lru: "OrderedDict[str, CompiledTopology]" = OrderedDict()
        self._disk_dir = self._resolve_disk_dir(disk_cache)
        self._stats = ServiceStats(max_workers=self.max_workers)
        # One service may be shared by many threads (the banger daemon's
        # inline mode, threaded test drivers): every LRU mutation and stats
        # increment happens under this lock so concurrent traffic cannot
        # drop counts or corrupt the OrderedDict.
        self._lock = threading.RLock()
        # Kernel counters are process-wide; remember where they stood at
        # construction so stats() reports only this service's share.
        self._kernel_base = kernel_counters()

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve_disk_dir(disk_cache: bool | str | Path | None) -> Path | None:
        if disk_cache is False:
            return None
        if disk_cache is None:
            env = os.environ.get("BANGER_CACHE_DIR")
            if not env:
                return None
            root = Path(env)
        elif disk_cache is True:
            env = os.environ.get("BANGER_CACHE_DIR")
            if env:
                root = Path(env)
            else:
                xdg = os.environ.get("XDG_CACHE_HOME")
                base = Path(xdg) if xdg else Path.home() / ".cache"
                root = base / "banger"
        else:
            root = Path(disk_cache)
        return root / f"v{CACHE_VERSION}"

    @property
    def disk_dir(self) -> Path | None:
        """The versioned on-disk cache directory, or ``None`` if disabled."""
        return self._disk_dir

    # ------------------------------------------------------------------ #
    # the memoized primitive
    # ------------------------------------------------------------------ #
    def _key(
        self,
        graph: TaskGraph,
        machine: TargetMachine,
        scheduler: Scheduler,
        graph_fp: str | None = None,
    ) -> tuple[str, str, str]:
        return (
            graph_fp or graph.content_hash(),
            machine.content_hash(),
            scheduler_cache_key(scheduler),
        )

    def schedule(
        self,
        graph: TaskGraph,
        machine: TargetMachine,
        scheduler: str | Scheduler = "mh",
        use_cache: bool = True,
    ) -> Schedule:
        """Schedule ``graph`` on ``machine``, memoized by content."""
        sched = resolve_scheduler(scheduler)
        if not use_cache:
            return sched.schedule(graph, machine)
        key = self._key(graph, machine, sched)
        cached = self._get(key)
        if cached is not None:
            return cached
        # Warm the compiled-topology tables (disk tier included) before the
        # kernel asks for them, so a cold process on a known machine still
        # skips route compilation.
        self.compiled(machine)
        result = sched.schedule(graph, machine)
        self._put(key, result)
        return result

    def compiled(self, machine: TargetMachine) -> CompiledTopology:
        """The compiled routing tables for ``machine``, memoized by hash.

        Three tiers: this service's LRU, the versioned disk cache (under
        ``compiled/<machine-hash>.json``), then compilation via
        :func:`repro.machine.compiled.compiled_for`.  Whatever tier answers,
        the process-wide cache consulted by :class:`~repro.sched.core.SchedKernel`
        is seeded, so subsequent kernel builds hit in O(1).
        """
        key = machine.content_hash()
        with self._lock:
            hit = self._compiled_lru.get(key)
            if hit is not None:
                self._compiled_lru.move_to_end(key)
                return hit
        tables = self._compiled_disk_get(key)
        from_disk = tables is not None
        if tables is None:
            tables = compiled_for(machine)
        else:
            seed_compiled(tables)
        with self._lock:
            self._compiled_lru[key] = tables
            self._compiled_lru.move_to_end(key)
            while len(self._compiled_lru) > self.max_entries:
                self._compiled_lru.popitem(last=False)
        if not from_disk:
            self._compiled_disk_put(tables)
        return tables

    def lower(
        self,
        graph: TaskGraph,
        machine: TargetMachine,
        scheduler: str | Scheduler = "mh",
        use_cache: bool = True,
    ):
        """The lowered program for ``graph`` on ``machine``, memoized.

        Lowering (:func:`repro.codegen.ir.lower`) is a pure function of the
        schedule, and the schedule is a pure function of this key, so the
        :class:`~repro.codegen.ir.LoweredProgram` is cached under the same
        content-addressed triple as the schedule itself.  Every codegen
        surface (``banger codegen``, the daemon's ``/codegen`` op, the
        project API) shares entries through here.
        """
        from repro.codegen.ir import lower as _lower

        sched = resolve_scheduler(scheduler)
        if not use_cache:
            return _lower(sched.schedule(graph, machine))
        key = self._key(graph, machine, sched)
        with self._lock:
            if key in self._ir_lru:
                self._ir_lru.move_to_end(key)
                self._stats.ir_hits += 1
                return self._ir_lru[key]
            self._stats.ir_misses += 1
        program = _lower(self.schedule(graph, machine, sched))
        with self._lock:
            self._ir_lru[key] = program
            self._ir_lru.move_to_end(key)
            while len(self._ir_lru) > self.max_entries:
                self._ir_lru.popitem(last=False)
        return program

    # ------------------------------------------------------------------ #
    # sweeps
    # ------------------------------------------------------------------ #
    def schedules_for_sizes(
        self,
        graph: TaskGraph,
        proc_counts: Sequence[int],
        scheduler: str | Scheduler = "mh",
        family: str = "hypercube",
        params: MachineParams = IDEAL,
        jobs: int | None = None,
        use_cache: bool = True,
    ) -> dict[int, Schedule]:
        """One schedule per machine size, cache-aware and fanned out.

        The result dict iterates in ``proc_counts`` order regardless of
        which entries were cached or which worker finished first.
        """
        sched = resolve_scheduler(scheduler)
        t0 = time.perf_counter()
        sizes = list(dict.fromkeys(int(n) for n in proc_counts))
        machines = {
            n: single_processor(params) if n == 1 else make_machine(family, n, params)
            for n in sizes
        }
        out, jobs_used = self._batch(
            [(graph, machines[n], sched) for n in sizes], jobs, use_cache
        )
        self._note_sweep(t0, jobs_used)
        return {n: s for n, s in zip(sizes, out)}

    def predict_speedup(
        self,
        graph: TaskGraph,
        proc_counts: Sequence[int] = (1, 2, 4, 8),
        scheduler: str | Scheduler = "mh",
        family: str = "hypercube",
        params: MachineParams = IDEAL,
        jobs: int | None = None,
        use_cache: bool = True,
    ) -> SpeedupReport:
        """The Figure-3 speedup sweep, built on the cached schedule batch."""
        sched = resolve_scheduler(scheduler)
        schedules = self.schedules_for_sizes(
            graph, proc_counts, scheduler=sched, family=family, params=params,
            jobs=jobs, use_cache=use_cache,
        )
        serial = sum(params.exec_time(t.work) for t in graph.tasks)
        points = []
        for n in dict.fromkeys(int(c) for c in proc_counts):
            ms = schedules[n].makespan()
            sp = serial / ms if ms > 0 else 0.0
            points.append(
                SpeedupPoint(
                    n_procs=n,
                    makespan=ms,
                    speedup=sp,
                    efficiency=sp / n if n else 0.0,
                )
            )
        return SpeedupReport(
            graph=graph.name,
            scheduler=sched.name,
            family=family,
            serial_time=serial,
            points=tuple(points),
            max_parallelism=average_parallelism(
                graph, exec_time=lambda t: params.exec_time(graph.work(t))
            ),
        )

    def compare_schedulers(
        self,
        graph: TaskGraph,
        machine: TargetMachine,
        schedulers: Sequence[str | Scheduler],
        jobs: int | None = None,
        use_cache: bool = True,
    ) -> dict[str, Schedule]:
        """One schedule per heuristic on a fixed machine (ablation sweeps)."""
        t0 = time.perf_counter()
        resolved = [resolve_scheduler(s) for s in schedulers]
        out, jobs_used = self._batch(
            [(graph, machine, s) for s in resolved], jobs, use_cache
        )
        self._note_sweep(t0, jobs_used)
        return {s.name: schedule for s, schedule in zip(resolved, out)}

    # ------------------------------------------------------------------ #
    # batch execution
    # ------------------------------------------------------------------ #
    def _batch(
        self,
        items: list[tuple[TaskGraph, TargetMachine, Scheduler]],
        jobs: int | None,
        use_cache: bool,
    ) -> tuple[list[Schedule], int]:
        """Resolve a batch of scheduling problems, cache first, pool second.

        Returns the schedules aligned with ``items`` plus the worker count
        actually used for the misses.
        """
        graph_fps: dict[int, str] = {}
        results: list[Schedule | None] = [None] * len(items)
        missing: list[int] = []
        for i, (graph, machine, sched) in enumerate(items):
            if not use_cache:
                missing.append(i)
                continue
            fp = graph_fps.setdefault(id(graph), graph.content_hash())
            key = self._key(graph, machine, sched, graph_fp=fp)
            cached = self._get(key)
            if cached is not None:
                results[i] = cached
            else:
                missing.append(i)
        jobs_used = self._effective_jobs(jobs, missing, items)
        fresh = self._run_missing([items[i] for i in missing], jobs_used)
        for i, schedule in zip(missing, fresh):
            if use_cache:
                graph, machine, sched = items[i]
                fp = graph_fps.setdefault(id(graph), graph.content_hash())
                self._put(self._key(graph, machine, sched, graph_fp=fp), schedule)
            results[i] = schedule
        return results, jobs_used  # type: ignore[return-value]

    def _effective_jobs(
        self,
        jobs: int | None,
        missing: list[int],
        items: list[tuple[TaskGraph, TargetMachine, Scheduler]],
    ) -> int:
        if len(missing) < 2:
            return 1
        if jobs is not None:
            return max(1, min(jobs, len(missing)))
        # auto: a pool only pays off for graphs big enough to out-cost fork
        biggest = max(len(items[i][0]) for i in missing)
        if biggest < AUTO_PARALLEL_MIN_TASKS or self.max_workers < 2:
            return 1
        return min(self.max_workers, len(missing))

    def _run_missing(
        self,
        work: list[tuple[TaskGraph, TargetMachine, Scheduler]],
        jobs: int,
    ) -> list[Schedule]:
        if not work:
            return []
        if jobs <= 1:
            return [s.schedule(g, m) for g, m, s in work]
        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = [
                    pool.submit(_schedule_worker, s, g, m) for g, m, s in work
                ]
                results = [f.result() for f in futures]
            with self._lock:
                self._stats.parallel_sweeps += 1
            return results
        except _POOL_ERRORS:
            # Unpicklable scheduler/graph or a broken pool: do the same work
            # serially — identical results, just slower.  Real scheduling
            # errors re-raise from the serial run.
            with self._lock:
                self._stats.serial_fallbacks += 1
            return [s.schedule(g, m) for g, m, s in work]

    def _note_sweep(self, t0: float, jobs_used: int) -> None:
        with self._lock:
            self._stats.sweeps += 1
            self._stats.last_sweep_seconds = time.perf_counter() - t0
            self._stats.last_sweep_jobs = jobs_used

    # ------------------------------------------------------------------ #
    # cache internals
    # ------------------------------------------------------------------ #
    def _get(self, key: tuple[str, str, str]) -> Schedule | None:
        with self._lock:
            if key in self._lru:
                self._lru.move_to_end(key)
                self._stats.hits += 1
                return self._lru[key]
        disk = self._disk_get(key)
        with self._lock:
            if disk is not None:
                self._stats.hits += 1
                self._stats.disk_hits += 1
                self._insert(key, disk)
                return disk
            self._stats.misses += 1
            return None

    def _put(self, key: tuple[str, str, str], schedule: Schedule) -> None:
        with self._lock:
            self._insert(key, schedule)
        self._disk_put(key, schedule)

    def _insert(self, key: tuple[str, str, str], schedule: Schedule) -> None:
        with self._lock:
            self._lru[key] = schedule
            self._lru.move_to_end(key)
            while len(self._lru) > self.max_entries:
                self._lru.popitem(last=False)
                self._stats.evictions += 1

    # ------------------------------------------------------------------ #
    # disk cache (optional, corruption-tolerant)
    # ------------------------------------------------------------------ #
    def _disk_path(self, key: tuple[str, str, str]) -> Path:
        assert self._disk_dir is not None
        return self._disk_dir / (fingerprint(list(key)) + ".json")

    def _disk_get(self, key: tuple[str, str, str]) -> Schedule | None:
        if self._disk_dir is None:
            return None
        path = self._disk_path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            doc = json.loads(text)
            if doc.get("cache_version") != CACHE_VERSION or doc.get("key") != list(key):
                raise ValueError("cache entry does not match its key")
            return schedule_from_dict(doc["schedule"])
        except Exception:
            # Corrupt or mismatched entry: evict it, never raise.
            with self._lock:
                self._stats.disk_evictions += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _disk_put(self, key: tuple[str, str, str], schedule: Schedule) -> None:
        if self._disk_dir is None:
            return
        try:
            self._disk_dir.mkdir(parents=True, exist_ok=True)
            path = self._disk_path(key)
            doc = {
                "cache_version": CACHE_VERSION,
                "key": list(key),
                "schedule": schedule_to_dict(schedule),
            }
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(doc), encoding="utf-8")
            tmp.replace(path)
            with self._lock:
                self._stats.disk_writes += 1
        except OSError:
            # A read-only or full cache directory must never break scheduling.
            pass
        self._enforce_disk_cap()

    def _enforce_disk_cap(self) -> None:
        """Trim the disk tier oldest-first back under its byte cap."""
        if self._disk_dir is None or not self.disk_cache_max_bytes:
            return
        deleted = enforce_size_cap(
            dir_files(self._disk_dir), self.disk_cache_max_bytes
        )
        if deleted:
            with self._lock:
                self._stats.disk_gc_deletions += len(deleted)

    def gc_disk(self, max_bytes: int | None = None) -> int:
        """Explicitly trim the disk cache to ``max_bytes`` (or the configured
        cap); returns how many entries were deleted.  A no-op when the disk
        tier is off or no cap is known."""
        cap = max_bytes if max_bytes is not None else self.disk_cache_max_bytes
        if self._disk_dir is None or not cap:
            return 0
        deleted = enforce_size_cap(dir_files(self._disk_dir), cap)
        with self._lock:
            self._stats.disk_gc_deletions += len(deleted)
        return len(deleted)

    # ------------------------------------------------------------------ #
    # compiled-topology disk tier (same directory, namespaced keys)
    # ------------------------------------------------------------------ #
    def _compiled_disk_path(self, machine_hash: str) -> Path:
        # Namespaced under compiled/ so the schedule-entry layout (one JSON
        # per key at the top of the versioned directory) is undisturbed.
        assert self._disk_dir is not None
        return self._disk_dir / "compiled" / (machine_hash + ".json")

    def _compiled_disk_get(self, machine_hash: str) -> CompiledTopology | None:
        if self._disk_dir is None:
            return None
        path = self._compiled_disk_path(machine_hash)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            doc = json.loads(text)
            if doc.get("cache_version") != CACHE_VERSION or doc.get("key") != [
                "compiled",
                machine_hash,
            ]:
                raise ValueError("cache entry does not match its key")
            tables = CompiledTopology.from_dict(doc["compiled"])
            if tables.machine_hash != machine_hash:
                raise ValueError("compiled tables carry the wrong machine hash")
            return tables
        except Exception:
            # Corrupt or mismatched tables: evict and recompile, never raise.
            # The schedule-entry disk counters are left alone — compiled
            # traffic is observable via compiled_hits / compiled_misses.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _compiled_disk_put(self, tables: CompiledTopology) -> None:
        if self._disk_dir is None:
            return
        try:
            path = self._compiled_disk_path(tables.machine_hash)
            path.parent.mkdir(parents=True, exist_ok=True)
            doc = {
                "cache_version": CACHE_VERSION,
                "key": ["compiled", tables.machine_hash],
                "compiled": tables.to_dict(),
            }
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(doc), encoding="utf-8")
            tmp.replace(path)
        except OSError:
            pass
        self._enforce_disk_cap()

    # ------------------------------------------------------------------ #
    # invalidation + observability
    # ------------------------------------------------------------------ #
    def invalidate(
        self, graph_hash: str | None = None, machine_hash: str | None = None
    ) -> int:
        """Evict every in-memory entry touching the given fingerprints.

        Content addressing already guarantees correctness (a mutated graph
        or machine hashes to new keys); eviction reclaims the memory held by
        entries that can no longer be asked for.  Returns the count evicted.

        A machine-hash-targeted eviction also drops that machine's
        compiled-topology tables — from this service's LRU, from the
        process-wide cache the kernels consult, and from the disk tier — so
        an in-place topology mutation can never be served routes compiled
        for the old link set.
        """
        with self._lock:
            doomed = [
                key
                for key in self._lru
                if (graph_hash is not None and key[0] == graph_hash)
                or (machine_hash is not None and key[1] == machine_hash)
            ]
            for key in doomed:
                del self._lru[key]
            for key in list(self._ir_lru):
                if (graph_hash is not None and key[0] == graph_hash) or (
                    machine_hash is not None and key[1] == machine_hash
                ):
                    del self._ir_lru[key]
            self._stats.evictions += len(doomed)
            if machine_hash is not None:
                self._compiled_lru.pop(machine_hash, None)
        if machine_hash is not None:
            evict_compiled(machine_hash)
            if self._disk_dir is not None:
                try:
                    self._compiled_disk_path(machine_hash).unlink()
                except OSError:
                    pass
        return len(doomed)

    def clear(self) -> None:
        """Drop every in-memory entry (the disk cache is left alone)."""
        with self._lock:
            self._stats.evictions += len(self._lru)
            self._lru.clear()
            self._ir_lru.clear()
            self._compiled_lru.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def stats(self) -> ServiceStats:
        """A snapshot of the service counters (thread-safe)."""
        with self._lock:
            snap = replace(self._stats)
            snap.entries = len(self._lru)
        counters = kernel_counters()
        base = self._kernel_base
        snap.kernel_builds = int(counters["kernel_builds"] - base["kernel_builds"])
        snap.kernel_build_ms = counters["kernel_build_ms"] - base["kernel_build_ms"]
        snap.route_cache_hits = int(
            counters["route_cache_hits"] - base["route_cache_hits"]
        )
        snap.route_cache_misses = int(
            counters["route_cache_misses"] - base["route_cache_misses"]
        )
        snap.compiled_hits = int(counters["compiled_hits"] - base["compiled_hits"])
        snap.compiled_misses = int(
            counters["compiled_misses"] - base["compiled_misses"]
        )
        return snap

    def __repr__(self) -> str:
        disk = str(self._disk_dir) if self._disk_dir else "off"
        return (
            f"ScheduleService(entries={len(self._lru)}/{self.max_entries}, "
            f"disk={disk}, max_workers={self.max_workers})"
        )


# --------------------------------------------------------------------- #
# module-default instance (used by the functional sweep API)
# --------------------------------------------------------------------- #
_default: ScheduleService | None = None


def default_service() -> ScheduleService:
    """The process-wide service behind :func:`repro.sched.sweeps.predict_speedup`."""
    global _default
    if _default is None:
        _default = ScheduleService()
    return _default
