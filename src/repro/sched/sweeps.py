"""Speedup prediction across machine sizes — the paper's Figure 3 chart.

Banger shows "a speedup prediction graph obtained by mapping the PITL design
onto 2, 4, and 8 hypercube processors".  :func:`predict_speedup` reproduces
that analysis for any graph, scheduler, machine family, and processor-count
sweep, returning one :class:`SpeedupPoint` per machine size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graph.analysis import average_parallelism
from repro.graph.taskgraph import TaskGraph
from repro.machine.machine import make_machine, single_processor
from repro.machine.params import IDEAL, MachineParams
from repro.sched.base import Scheduler
from repro.sched.metrics import efficiency
from repro.sched.mh import MHScheduler
from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class SpeedupPoint:
    """One machine size of a speedup sweep."""

    n_procs: int
    makespan: float
    speedup: float
    efficiency: float

    def as_row(self) -> str:
        return (
            f"{self.n_procs:>5d} {self.makespan:>12.3f} "
            f"{self.speedup:>8.3f} {self.efficiency:>6.3f}"
        )

    @staticmethod
    def header() -> str:
        return f"{'procs':>5} {'makespan':>12} {'speedup':>8} {'eff':>6}"


@dataclass(frozen=True)
class SpeedupReport:
    """A full sweep: serial baseline plus one point per machine size."""

    graph: str
    scheduler: str
    family: str
    serial_time: float
    points: tuple[SpeedupPoint, ...]
    max_parallelism: float

    def best(self) -> SpeedupPoint:
        return max(self.points, key=lambda p: p.speedup)

    def table(self) -> str:
        lines = [
            f"speedup prediction: {self.graph} on {self.family} ({self.scheduler})",
            f"serial time = {self.serial_time:.3f}, "
            f"graph parallelism bound = {self.max_parallelism:.2f}",
            SpeedupPoint.header(),
        ]
        lines += [p.as_row() for p in self.points]
        return "\n".join(lines)


def predict_speedup(
    graph: TaskGraph,
    proc_counts: Sequence[int] = (1, 2, 4, 8),
    scheduler: Scheduler | None = None,
    family: str = "hypercube",
    params: MachineParams = IDEAL,
) -> SpeedupReport:
    """Schedule ``graph`` on each machine size and report speedups.

    The serial baseline runs on a single processor with the same parameters,
    so the curve starts at exactly 1.0 for ``n_procs == 1``.
    """
    scheduler = scheduler or MHScheduler()
    serial = sum(params.exec_time(t.work) for t in graph.tasks)
    points: list[SpeedupPoint] = []
    for n in proc_counts:
        machine = single_processor(params) if n == 1 else make_machine(family, n, params)
        sched = scheduler.schedule(graph, machine)
        ms = sched.makespan()
        sp = serial / ms if ms > 0 else 0.0
        points.append(
            SpeedupPoint(
                n_procs=n,
                makespan=ms,
                speedup=sp,
                efficiency=sp / n if n else 0.0,
            )
        )
    return SpeedupReport(
        graph=graph.name,
        scheduler=scheduler.name,
        family=family,
        serial_time=serial,
        points=tuple(points),
        max_parallelism=average_parallelism(
            graph, exec_time=lambda t: params.exec_time(graph.work(t))
        ),
    )


def schedules_for_sizes(
    graph: TaskGraph,
    proc_counts: Sequence[int],
    scheduler: Scheduler | None = None,
    family: str = "hypercube",
    params: MachineParams = IDEAL,
) -> dict[int, Schedule]:
    """The Gantt-chart side of Figure 3: one schedule per machine size."""
    scheduler = scheduler or MHScheduler()
    out: dict[int, Schedule] = {}
    for n in proc_counts:
        machine = single_processor(params) if n == 1 else make_machine(family, n, params)
        out[n] = scheduler.schedule(graph, machine)
    return out
