"""Speedup prediction across machine sizes — the paper's Figure 3 chart.

Banger shows "a speedup prediction graph obtained by mapping the PITL design
onto 2, 4, and 8 hypercube processors".  :func:`predict_speedup` reproduces
that analysis for any graph, scheduler, machine family, and processor-count
sweep, returning one :class:`SpeedupPoint` per machine size.

Both sweep functions are thin wrappers over the process-wide
:class:`~repro.sched.service.ScheduleService`, so repeated sweeps over
unchanged graphs are served from the content-addressed cache and large
sweeps can fan out across worker processes (``jobs=``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graph.taskgraph import TaskGraph
from repro.machine.params import IDEAL, MachineParams
from repro.sched.base import Scheduler
from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class SpeedupPoint:
    """One machine size of a speedup sweep."""

    n_procs: int
    makespan: float
    speedup: float
    efficiency: float

    def as_row(self) -> str:
        return (
            f"{self.n_procs:>5d} {self.makespan:>12.3f} "
            f"{self.speedup:>8.3f} {self.efficiency:>6.3f}"
        )

    @staticmethod
    def header() -> str:
        return f"{'procs':>5} {'makespan':>12} {'speedup':>8} {'eff':>6}"


@dataclass(frozen=True)
class SpeedupReport:
    """A full sweep: serial baseline plus one point per machine size."""

    graph: str
    scheduler: str
    family: str
    serial_time: float
    points: tuple[SpeedupPoint, ...]
    max_parallelism: float

    def best(self) -> SpeedupPoint:
        return max(self.points, key=lambda p: p.speedup)

    def table(self) -> str:
        lines = [
            f"speedup prediction: {self.graph} on {self.family} ({self.scheduler})",
            f"serial time = {self.serial_time:.3f}, "
            f"graph parallelism bound = {self.max_parallelism:.2f}",
            SpeedupPoint.header(),
        ]
        lines += [p.as_row() for p in self.points]
        return "\n".join(lines)


def predict_speedup(
    graph: TaskGraph,
    proc_counts: Sequence[int] = (1, 2, 4, 8),
    scheduler: Scheduler | str | None = None,
    family: str = "hypercube",
    params: MachineParams = IDEAL,
    jobs: int | None = None,
    service: "ScheduleService | None" = None,
) -> SpeedupReport:
    """Schedule ``graph`` on each machine size and report speedups.

    The serial baseline runs on a single processor with the same parameters,
    so the curve starts at exactly 1.0 for ``n_procs == 1``.
    """
    from repro.sched.service import default_service

    svc = service if service is not None else default_service()
    return svc.predict_speedup(
        graph, proc_counts, scheduler=scheduler, family=family, params=params,
        jobs=jobs,
    )


def schedules_for_sizes(
    graph: TaskGraph,
    proc_counts: Sequence[int],
    scheduler: Scheduler | str | None = None,
    family: str = "hypercube",
    params: MachineParams = IDEAL,
    jobs: int | None = None,
    service: "ScheduleService | None" = None,
) -> dict[int, Schedule]:
    """The Gantt-chart side of Figure 3: one schedule per machine size."""
    from repro.sched.service import default_service

    svc = service if service is not None else default_service()
    return svc.schedules_for_sizes(
        graph, proc_counts, scheduler=scheduler, family=family, params=params,
        jobs=jobs,
    )
