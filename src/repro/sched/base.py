"""Scheduler interface and the machinery shared by the list heuristics.

All PPSE-style heuristics reduce to the same inner loop: keep a ready list,
pick the next task by some priority, compute its earliest start time (EST)
on candidate processors under the machine's communication model, and place
it.  :func:`data_ready_time` and :func:`earliest_start` implement the EST
computation (with optional insertion into idle gaps, the ISH refinement) on
top of a partially built :class:`~repro.sched.schedule.Schedule`.
"""

from __future__ import annotations

import abc

from repro.errors import ScheduleError
from repro.graph.taskgraph import TaskGraph
from repro.machine.machine import TargetMachine
from repro.sched.schedule import Message, Schedule


class Scheduler(abc.ABC):
    """A mapping heuristic: task graph × target machine → schedule."""

    #: registry / report name; subclasses override.
    name = "abstract"

    @abc.abstractmethod
    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        """Produce a complete, feasible schedule.  Must not mutate inputs."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def data_ready_time(schedule: Schedule, task: str, proc: int) -> float:
    """Earliest time all of ``task``'s inputs can be on ``proc``.

    For each in-edge the cheapest already-scheduled copy of the predecessor
    is used (this is what makes duplication pay off).  Raises if a
    predecessor is unscheduled — list order must be topological.
    """
    graph, machine = schedule.graph, schedule.machine
    ready = 0.0
    for edge in graph.in_edges(task):
        if edge.src not in schedule:
            raise ScheduleError(
                f"cannot compute EST of {task!r}: predecessor {edge.src!r} unscheduled"
            )
        arrival = min(
            src.finish + machine.comm_cost(src.proc, proc, edge.size)
            for src in schedule.placements(edge.src)
        )
        ready = max(ready, arrival)
    return ready


def earliest_start(
    schedule: Schedule,
    task: str,
    proc: int,
    insertion: bool = False,
) -> float:
    """Earliest feasible start of ``task`` on ``proc``.

    Without insertion the task goes after the processor's last placement;
    with insertion (ISH and later heuristics) the first idle gap large
    enough after the data-ready time is used.
    """
    ready = data_ready_time(schedule, task, proc)
    timeline = schedule.timeline(proc)
    if not timeline:
        return ready
    if not insertion:
        return max(ready, timeline[-1].finish)
    duration = schedule.machine.exec_time(schedule.graph.work(task))
    return schedule.insertion_slot(proc, ready, duration)


def place(schedule: Schedule, task: str, proc: int, start: float) -> None:
    """Place ``task`` on ``proc`` at ``start`` and record its messages."""
    graph, machine = schedule.graph, schedule.machine
    finish = start + machine.exec_time(graph.work(task))
    schedule.add(task, proc, start, finish)
    for edge in graph.in_edges(task):
        src = min(
            schedule.placements(edge.src),
            key=lambda s: s.finish + machine.comm_cost(s.proc, proc, edge.size),
        )
        if src.proc == proc:
            continue
        cost = machine.comm_cost(src.proc, proc, edge.size)
        schedule.add_message(
            Message(
                src_task=edge.src,
                dst_task=task,
                var=edge.var,
                size=edge.size,
                src_proc=src.proc,
                dst_proc=proc,
                start=src.finish,
                finish=src.finish + cost,
                route=tuple(machine.route(src.proc, proc)),
            )
        )


def best_processor(
    schedule: Schedule,
    task: str,
    insertion: bool = False,
) -> tuple[int, float]:
    """The processor giving the earliest finish time for ``task``.

    Ties are broken by lower processor number, so results are deterministic.
    Returns ``(proc, start)``.
    """
    best: tuple[float, int, float] | None = None
    duration = schedule.machine.exec_time(schedule.graph.work(task))
    for proc in schedule.machine.procs():
        start = earliest_start(schedule, task, proc, insertion=insertion)
        key = (start + duration, proc, start)
        if best is None or key < best:
            best = key
    assert best is not None
    return best[1], best[2]


def ready_tasks(graph: TaskGraph, done: set[str]) -> list[str]:
    """Tasks whose predecessors are all in ``done`` and that are not."""
    return [
        t
        for t in graph.task_names
        if t not in done and all(p in done for p in graph.predecessors(t))
    ]
