"""Classic list-scheduling heuristics: HLFET, ISH, ETF, and DLS.

These are the workhorse heuristics of the PPSE line of work the paper
builds on:

* **HLFET** (Highest Level First with Estimated Times, Adam/Chandy/Dickson):
  priority = static level (b-level without communication); each task goes
  to the processor giving the earliest finish.
* **ISH** (Insertion Scheduling Heuristic, Kruatrachue & Lewis): HLFET plus
  filling idle gaps created by communication delays.
* **ETF** (Earliest Task First, Hwang et al.): among all (ready task,
  processor) pairs pick the earliest possible start, breaking ties by
  higher static level.
* **DLS** (Dynamic Level Scheduling, Sih & Lee): maximise the *dynamic
  level* ``SL(t) - EST(t, p)`` over (task, processor) pairs.

All four run on the shared :mod:`repro.sched.core` kernel (incremental
ready tracking, precomputed execution times, memoized communication costs);
their output is byte-identical to the pre-kernel implementations.
"""

from __future__ import annotations

from repro.graph.taskgraph import TaskGraph
from repro.machine.machine import TargetMachine
from repro.sched.base import Scheduler
from repro.sched.core import KernelState, ReadySet, SchedKernel, run_priority_list
from repro.sched.schedule import Schedule


class HLFETScheduler(Scheduler):
    """Highest (static) Level First with Estimated Times.

    Parameters
    ----------
    use_comm_levels:
        When True, priorities are b-levels including mean machine
        communication costs instead of pure static levels — a machine-aware
        refinement used by PPSE when communication dominates.
    """

    name = "hlfet"

    def __init__(self, use_comm_levels: bool = False):
        self.use_comm_levels = use_comm_levels
        self.insertion = False

    def _priorities(self, kernel: SchedKernel) -> dict[str, float]:
        if self.use_comm_levels:
            return kernel.b_levels_comm()
        return kernel.static_levels()

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        kernel = SchedKernel(graph, machine)
        state = KernelState(kernel, scheduler_name=self.name)
        prio = kernel.priority_array(self._priorities(kernel))
        return run_priority_list(
            kernel,
            state,
            key=lambda i: (-prio[i], i),
            pick_processor=lambda ti: state.best_processor(ti, insertion=self.insertion),
        )


class ISHScheduler(HLFETScheduler):
    """Kruatrachue's Insertion Scheduling Heuristic: HLFET + gap filling."""

    name = "ish"

    def __init__(self, use_comm_levels: bool = False):
        super().__init__(use_comm_levels=use_comm_levels)
        self.insertion = True


class ETFScheduler(Scheduler):
    """Earliest Task First: globally earliest (task, processor) start wins."""

    name = "etf"

    def __init__(self, insertion: bool = False):
        self.insertion = insertion

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        kernel = SchedKernel(graph, machine)
        state = KernelState(kernel, scheduler_name=self.name)
        sl = kernel.priority_array(kernel.static_levels())
        ready = ReadySet(kernel)
        n_procs = machine.n_procs
        for _ in range(kernel.n):
            best: tuple[float, float, int, str, int] | None = None
            best_ti = -1
            for ti in ready:
                task = kernel.tasks[ti]
                neg_sl = -sl[ti]
                for proc in range(n_procs):
                    start = state.earliest_start(ti, proc, insertion=self.insertion)
                    key = (start, neg_sl, proc, task, proc)
                    if best is None or key < best:
                        best = key
                        best_ti = ti
            assert best is not None
            start, _, _, _, proc = best
            state.place(best_ti, proc, start)
            ready.complete(best_ti)
        return state.sched


class DLSScheduler(Scheduler):
    """Dynamic Level Scheduling: maximise ``SL(task) - EST(task, proc)``."""

    name = "dls"

    def __init__(self, insertion: bool = True):
        self.insertion = insertion

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        kernel = SchedKernel(graph, machine)
        state = KernelState(kernel, scheduler_name=self.name)
        sl = kernel.priority_array(kernel.static_levels())
        ready = ReadySet(kernel)
        n_procs = machine.n_procs
        for _ in range(kernel.n):
            best: tuple[float, float, int, str] | None = None
            chosen: tuple[int, int, float] | None = None
            for ti in ready:
                task = kernel.tasks[ti]
                level_base = sl[ti]
                for proc in range(n_procs):
                    start = state.earliest_start(ti, proc, insertion=self.insertion)
                    key = (-(level_base - start), start, proc, task)
                    if best is None or key < best:
                        best = key
                        chosen = (ti, proc, start)
            assert chosen is not None
            ti, proc, start = chosen
            state.place(ti, proc, start)
            ready.complete(ti)
        return state.sched


class MCPScheduler(Scheduler):
    """Modified Critical Path (Wu & Gajski): priority = ALAP time, ascending.

    The ALAP (as-late-as-possible) time of a task is the critical-path
    length minus its b-level (communication included); tasks that can least
    afford to wait go first, each to its earliest-finish processor with
    insertion.
    """

    name = "mcp"

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        kernel = SchedKernel(graph, machine)
        state = KernelState(kernel, scheduler_name=self.name)
        bl = kernel.b_levels_comm()
        cp = max(bl.values(), default=0.0)
        alap = [cp - bl[t] for t in kernel.tasks]
        return run_priority_list(
            kernel,
            state,
            key=lambda i: (alap[i], i),
            pick_processor=lambda ti: state.best_processor(ti, insertion=True),
        )
