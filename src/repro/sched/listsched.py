"""Classic list-scheduling heuristics: HLFET, ISH, ETF, and DLS.

These are the workhorse heuristics of the PPSE line of work the paper
builds on:

* **HLFET** (Highest Level First with Estimated Times, Adam/Chandy/Dickson):
  priority = static level (b-level without communication); each task goes
  to the processor giving the earliest finish.
* **ISH** (Insertion Scheduling Heuristic, Kruatrachue & Lewis): HLFET plus
  filling idle gaps created by communication delays.
* **ETF** (Earliest Task First, Hwang et al.): among all (ready task,
  processor) pairs pick the earliest possible start, breaking ties by
  higher static level.
* **DLS** (Dynamic Level Scheduling, Sih & Lee): maximise the *dynamic
  level* ``SL(t) - EST(t, p)`` over (task, processor) pairs.
"""

from __future__ import annotations

from repro.graph.analysis import b_levels, static_levels
from repro.graph.taskgraph import TaskGraph
from repro.machine.machine import TargetMachine
from repro.sched.base import (
    Scheduler,
    best_processor,
    earliest_start,
    place,
    ready_tasks,
)
from repro.sched.schedule import Schedule


class HLFETScheduler(Scheduler):
    """Highest (static) Level First with Estimated Times.

    Parameters
    ----------
    use_comm_levels:
        When True, priorities are b-levels including mean machine
        communication costs instead of pure static levels — a machine-aware
        refinement used by PPSE when communication dominates.
    """

    name = "hlfet"

    def __init__(self, use_comm_levels: bool = False):
        self.use_comm_levels = use_comm_levels
        self.insertion = False

    def _priorities(self, graph: TaskGraph, machine: TargetMachine) -> dict[str, float]:
        exec_time = lambda t: machine.exec_time(graph.work(t))
        if self.use_comm_levels:
            return b_levels(
                graph,
                exec_time=exec_time,
                comm_cost=lambda e: machine.mean_comm_cost(e.size),
            )
        return static_levels(graph, exec_time=exec_time)

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        sched = Schedule(graph, machine, scheduler=self.name)
        prio = self._priorities(graph, machine)
        order = {t: i for i, t in enumerate(graph.task_names)}
        done: set[str] = set()
        while len(done) < len(graph):
            ready = ready_tasks(graph, done)
            task = max(ready, key=lambda t: (prio[t], -order[t]))
            proc, start = best_processor(sched, task, insertion=self.insertion)
            place(sched, task, proc, start)
            done.add(task)
        return sched


class ISHScheduler(HLFETScheduler):
    """Kruatrachue's Insertion Scheduling Heuristic: HLFET + gap filling."""

    name = "ish"

    def __init__(self, use_comm_levels: bool = False):
        super().__init__(use_comm_levels=use_comm_levels)
        self.insertion = True


class ETFScheduler(Scheduler):
    """Earliest Task First: globally earliest (task, processor) start wins."""

    name = "etf"

    def __init__(self, insertion: bool = False):
        self.insertion = insertion

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        sched = Schedule(graph, machine, scheduler=self.name)
        sl = static_levels(graph, exec_time=lambda t: machine.exec_time(graph.work(t)))
        done: set[str] = set()
        while len(done) < len(graph):
            best: tuple[float, float, int, str, int] | None = None
            for task in ready_tasks(graph, done):
                for proc in machine.procs():
                    start = earliest_start(sched, task, proc, insertion=self.insertion)
                    key = (start, -sl[task], proc, task, proc)
                    if best is None or key < best:
                        best = key
            assert best is not None
            start, _, _, task, proc = best
            place(sched, task, proc, start)
            done.add(task)
        return sched


class DLSScheduler(Scheduler):
    """Dynamic Level Scheduling: maximise ``SL(task) - EST(task, proc)``."""

    name = "dls"

    def __init__(self, insertion: bool = True):
        self.insertion = insertion

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        sched = Schedule(graph, machine, scheduler=self.name)
        sl = static_levels(graph, exec_time=lambda t: machine.exec_time(graph.work(t)))
        done: set[str] = set()
        while len(done) < len(graph):
            best: tuple[float, float, int, str] | None = None
            chosen: tuple[str, int, float] | None = None
            for task in ready_tasks(graph, done):
                for proc in machine.procs():
                    start = earliest_start(sched, task, proc, insertion=self.insertion)
                    level = sl[task] - start
                    key = (-level, start, proc, task)
                    if best is None or key < best:
                        best = key
                        chosen = (task, proc, start)
            assert chosen is not None
            task, proc, start = chosen
            place(sched, task, proc, start)
            done.add(task)
        return sched


class MCPScheduler(Scheduler):
    """Modified Critical Path (Wu & Gajski): priority = ALAP time, ascending.

    The ALAP (as-late-as-possible) time of a task is the critical-path
    length minus its b-level (communication included); tasks that can least
    afford to wait go first, each to its earliest-finish processor with
    insertion.
    """

    name = "mcp"

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        sched = Schedule(graph, machine, scheduler=self.name)
        exec_time = lambda t: machine.exec_time(graph.work(t))
        comm = lambda e: machine.mean_comm_cost(e.size)
        bl = b_levels(graph, exec_time=exec_time, comm_cost=comm)
        cp = max(bl.values(), default=0.0)
        alap = {t: cp - bl[t] for t in graph.task_names}
        done: set[str] = set()
        order = {t: i for i, t in enumerate(graph.task_names)}
        while len(done) < len(graph):
            ready = ready_tasks(graph, done)
            task = min(ready, key=lambda t: (alap[t], order[t]))
            proc, start = best_processor(sched, task, insertion=True)
            place(sched, task, proc, start)
            done.add(task)
        return sched
