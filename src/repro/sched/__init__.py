"""PPSE-style scheduling: heuristics, schedules, metrics, speedup sweeps.

The registry maps heuristic names to zero-argument factories::

    from repro.sched import get_scheduler
    sched = get_scheduler("mh").schedule(graph, machine)
"""

from repro.errors import ScheduleError
from repro.sched.base import (
    Scheduler,
    best_processor,
    data_ready_time,
    earliest_start,
    place,
    ready_tasks,
)
from repro.sched.baselines import RandomScheduler, RoundRobinScheduler, SerialScheduler
from repro.sched.core import (
    KernelState,
    ReadyHeap,
    ReadySet,
    SchedKernel,
    kernel_counters,
    reset_kernel_counters,
)
from repro.sched.cpop import CPOPScheduler
from repro.sched.clustering import (
    LinearClusteringScheduler,
    assignment_to_schedule,
    linear_clusters,
    map_clusters_lpt,
)
from repro.sched.dsc import (
    DSCScheduler,
    SarkarScheduler,
    cluster_makespan,
    dsc_clusters,
    sarkar_clusters,
)
from repro.sched.dsh import DSHScheduler
from repro.sched.explain import (
    Explanation,
    explain_placement,
    explain_schedule,
    render_explanations,
)
from repro.sched.edit import (
    EditResult,
    best_single_move,
    hill_climb,
    move_cluster,
    move_task,
    primary_assignment,
    swap_tasks,
)
from repro.sched.anneal import AnnealingScheduler
from repro.sched.optimal import ExhaustiveScheduler
from repro.sched.serialize import (
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)
from repro.sched.incremental import (
    IncrementalResult,
    dirty_closure,
    dirty_tasks,
    full_reschedule,
    incremental_reschedule,
)
from repro.sched.reactive import (
    ReactiveResult,
    ReactiveRound,
    Trigger,
    detect_triggers,
    reactive_counters,
    reactive_execute,
    reset_reactive_counters,
)
from repro.sched.grain import (
    GrainPackedScheduler,
    Packing,
    expand_packed_schedule,
    pack_by_ratio,
    pack_linear_chains,
)
from repro.sched.listsched import (
    DLSScheduler,
    ETFScheduler,
    HLFETScheduler,
    ISHScheduler,
    MCPScheduler,
)
from repro.sched.metrics import (
    ScheduleReport,
    average_utilization,
    comm_time_total,
    efficiency,
    load_imbalance,
    message_stats,
    report,
    schedule_length_ratio,
    serial_time,
    speedup,
    utilization,
)
from repro.sched.mh import MHScheduler
from repro.sched.registry import (
    SCHEDULERS,
    get_scheduler,
    resolve_scheduler,
    scheduler_cache_key,
)
from repro.sched.schedule import Message, Placement, Schedule
from repro.sched.sweeps import (
    SpeedupPoint,
    SpeedupReport,
    predict_speedup,
    schedules_for_sizes,
)
from repro.sched.service import (
    ScheduleRequest,
    ScheduleService,
    ServiceStats,
    as_request,
    default_family,
    default_service,
)
from repro.sched.validate import check_schedule, schedule_problems


__all__ = [
    "AnnealingScheduler",
    "CPOPScheduler",
    "DLSScheduler",
    "ReactiveResult",
    "ReactiveRound",
    "Trigger",
    "detect_triggers",
    "reactive_counters",
    "reactive_execute",
    "reset_reactive_counters",
    "schedule_from_dict",
    "schedule_from_json",
    "schedule_to_dict",
    "schedule_to_json",
    "DSCScheduler",
    "DSHScheduler",
    "EditResult",
    "ExhaustiveScheduler",
    "Explanation",
    "explain_placement",
    "explain_schedule",
    "render_explanations",
    "best_single_move",
    "hill_climb",
    "move_cluster",
    "move_task",
    "primary_assignment",
    "swap_tasks",
    "SarkarScheduler",
    "cluster_makespan",
    "dsc_clusters",
    "sarkar_clusters",
    "ETFScheduler",
    "GrainPackedScheduler",
    "HLFETScheduler",
    "IncrementalResult",
    "dirty_closure",
    "dirty_tasks",
    "full_reschedule",
    "incremental_reschedule",
    "ISHScheduler",
    "KernelState",
    "ReadyHeap",
    "ReadySet",
    "SchedKernel",
    "kernel_counters",
    "reset_kernel_counters",
    "LinearClusteringScheduler",
    "MCPScheduler",
    "MHScheduler",
    "Message",
    "Packing",
    "Placement",
    "RandomScheduler",
    "RoundRobinScheduler",
    "SCHEDULERS",
    "Schedule",
    "ScheduleReport",
    "ScheduleRequest",
    "ScheduleService",
    "Scheduler",
    "ServiceStats",
    "as_request",
    "default_family",
    "default_service",
    "resolve_scheduler",
    "scheduler_cache_key",
    "SerialScheduler",
    "SpeedupPoint",
    "SpeedupReport",
    "assignment_to_schedule",
    "average_utilization",
    "best_processor",
    "check_schedule",
    "comm_time_total",
    "data_ready_time",
    "earliest_start",
    "efficiency",
    "expand_packed_schedule",
    "get_scheduler",
    "linear_clusters",
    "load_imbalance",
    "map_clusters_lpt",
    "message_stats",
    "pack_by_ratio",
    "pack_linear_chains",
    "place",
    "predict_speedup",
    "ready_tasks",
    "report",
    "schedule_length_ratio",
    "schedule_problems",
    "schedules_for_sizes",
    "serial_time",
    "speedup",
    "utilization",
]
