"""Explain a schedule in words: why does each task start when it does?

For a non-programmer, a Gantt chart answers *what* happened; this module
answers *why*.  For every placement it identifies the binding constraint —
the arrival of a particular message, the processor being busy with a named
predecessor, or simply being an entry task — by recomputing the start-time
components from the shared cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class Explanation:
    """Why one task starts when it does."""

    task: str
    proc: int
    start: float
    #: "entry", "data", "processor", or "slack"
    binding: str
    detail: str

    def __str__(self) -> str:
        return f"{self.task} @ P{self.proc} t={self.start:g}: {self.detail}"


def explain_placement(schedule: Schedule, task: str, tol: float = 1e-6) -> Explanation:
    """The binding constraint behind ``task``'s start time."""
    graph, machine = schedule.graph, schedule.machine
    entry = schedule.primary(task)

    # data-ready components: per in-edge, when its datum lands on this proc
    arrivals: list[tuple[float, str, str]] = []
    for edge in graph.in_edges(task):
        best = min(
            (
                (
                    src.finish + machine.comm_cost(src.proc, entry.proc, edge.size),
                    src.proc,
                )
                for src in schedule.placements(edge.src)
            ),
        )
        arrival, src_proc = best
        how = "locally" if src_proc == entry.proc else f"from P{src_proc}"
        arrivals.append((arrival, edge.src, f"{edge.var or 'control'} {how}"))

    data_ready = max((a for a, *_ in arrivals), default=0.0)

    # processor availability: the placement just before this one
    timeline = schedule.on_proc(entry.proc)
    idx = timeline.index(entry)
    prev = timeline[idx - 1] if idx > 0 else None
    proc_free = prev.finish if prev else 0.0

    if not arrivals and prev is None:
        return Explanation(
            task, entry.proc, entry.start, "entry",
            "entry task on a free processor — starts immediately"
            if entry.start <= tol
            else f"entry task, but starts at {entry.start:g} (scheduler slack)",
        )

    if abs(entry.start - data_ready) <= tol and data_ready >= proc_free - tol:
        arrival, src, how = max(arrivals, key=lambda a: a[0])
        return Explanation(
            task, entry.proc, entry.start, "data",
            f"waits for {how.split()[0]!r} from task {src!r} ({how.split(' ', 1)[1]}), "
            f"arriving at {arrival:g}",
        )
    if prev is not None and abs(entry.start - proc_free) <= tol:
        return Explanation(
            task, entry.proc, entry.start, "processor",
            f"P{entry.proc} is busy with {prev.task!r} until {proc_free:g}",
        )
    return Explanation(
        task, entry.proc, entry.start, "slack",
        f"starts at {entry.start:g} though data is ready at {data_ready:g} and "
        f"P{entry.proc} is free at {proc_free:g} (scheduler-introduced slack)",
    )


def explain_schedule(schedule: Schedule) -> list[Explanation]:
    """Explanations for every task, in start-time order."""
    tasks = sorted(
        schedule.graph.task_names, key=lambda t: schedule.primary(t).start
    )
    return [explain_placement(schedule, t) for t in tasks]


def render_explanations(schedule: Schedule, only_waiting: bool = False) -> str:
    """A narrative of the schedule (optionally just the stalled tasks)."""
    lines = [
        f"why the schedule looks like it does "
        f"({schedule.graph.name} on {schedule.machine.name}, "
        f"{schedule.scheduler or 'manual'}):"
    ]
    for ex in explain_schedule(schedule):
        if only_waiting and ex.binding in ("entry",):
            continue
        lines.append(f"  {ex}")
    return "\n".join(lines)
