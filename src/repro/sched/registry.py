"""The scheduler registry and the single ``str | Scheduler`` resolver.

Every surface that accepts "a scheduler" — :class:`BangerProject`, the CLI,
the sweep service — funnels through :func:`resolve_scheduler`, so the
dispatch rule (and its error message) exists exactly once.

:func:`scheduler_cache_key` renders a scheduler *instance* into a stable
string covering its class and its public configuration, which is what lets
:class:`repro.sched.service.ScheduleService` memoize by content rather than
by object identity: two separately constructed ``MHScheduler()`` instances
share cache entries, while ``MHScheduler(contention=False)`` does not.
"""

from __future__ import annotations

from repro.errors import ScheduleError
from repro.sched.anneal import AnnealingScheduler
from repro.sched.base import Scheduler
from repro.sched.baselines import RandomScheduler, RoundRobinScheduler, SerialScheduler
from repro.sched.clustering import LinearClusteringScheduler
from repro.sched.cpop import CPOPScheduler
from repro.sched.dsc import DSCScheduler, SarkarScheduler
from repro.sched.dsh import DSHScheduler
from repro.sched.grain import GrainPackedScheduler
from repro.sched.listsched import (
    DLSScheduler,
    ETFScheduler,
    HLFETScheduler,
    ISHScheduler,
    MCPScheduler,
)
from repro.sched.mh import MHScheduler
from repro.sched.optimal import ExhaustiveScheduler

#: Scheduler registry: name -> zero-argument factory.
SCHEDULERS = {
    "hlfet": HLFETScheduler,
    "ish": ISHScheduler,
    "etf": ETFScheduler,
    "dls": DLSScheduler,
    "mcp": MCPScheduler,
    "cpop": CPOPScheduler,
    "mh": MHScheduler,
    "mh-nocontention": lambda: MHScheduler(contention=False),
    "dsh": DSHScheduler,
    "lc": LinearClusteringScheduler,
    "dsc": DSCScheduler,
    "sarkar": SarkarScheduler,
    "exhaustive": ExhaustiveScheduler,
    "anneal": AnnealingScheduler,
    "grain": lambda: GrainPackedScheduler(MHScheduler()),
    "serial": SerialScheduler,
    "roundrobin": RoundRobinScheduler,
    "random": RandomScheduler,
}


def get_scheduler(name: str) -> Scheduler:
    """Instantiate a registered heuristic by name."""
    try:
        factory = SCHEDULERS[name]
    except KeyError:
        raise ScheduleError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        ) from None
    return factory()


def resolve_scheduler(
    spec: "str | Scheduler | None", default: str = "mh"
) -> Scheduler:
    """Turn whatever the user handed us into a :class:`Scheduler`.

    Accepts a registry name, an already-built scheduler instance, or ``None``
    (meaning ``default``).  This is the one and only ``str | Scheduler``
    dispatch in the codebase.
    """
    if spec is None:
        spec = default
    if isinstance(spec, str):
        return get_scheduler(spec)
    if isinstance(spec, Scheduler):
        return spec
    raise ScheduleError(
        f"expected a scheduler name or Scheduler instance, got {type(spec).__name__}"
    )


def scheduler_cache_key(scheduler: Scheduler) -> str:
    """Stable content key for a scheduler instance (class + public config)."""
    parts = []
    for attr, value in sorted(vars(scheduler).items()):
        if attr.startswith("_"):
            continue
        if isinstance(value, Scheduler):
            parts.append(f"{attr}=<{scheduler_cache_key(value)}>")
        else:
            parts.append(f"{attr}={value!r}")
    return f"{type(scheduler).__name__}({','.join(parts)})"
