"""Independent schedule checker.

Every scheduler's output is validated in tests by :func:`check_schedule`,
which re-derives feasibility from first principles (completeness, processor
occupancy, execution durations, and data readiness under the machine's
communication cost model) without reusing any scheduler machinery.

The checks themselves live in :mod:`repro.lint.schedrules` (rules
``SCH201``–``SCH205``); this module keeps the historical string-list and
raise-on-failure APIs.
"""

from __future__ import annotations

from repro.errors import ScheduleError
from repro.lint.schedrules import TOL, schedule_diagnostics
from repro.sched.schedule import Schedule

__all__ = ["TOL", "schedule_problems", "check_schedule"]


def schedule_problems(schedule: Schedule, check_durations: bool = True) -> list[str]:
    """Collect every feasibility violation (empty list == valid schedule).

    See :func:`repro.lint.schedrules.schedule_diagnostics` for the rules
    checked (completeness, occupancy, durations, data readiness).
    """
    return [
        d.message
        for d in schedule_diagnostics(schedule, check_durations=check_durations)
    ]


def check_schedule(schedule: Schedule, check_durations: bool = True) -> None:
    """Raise :class:`ScheduleError` listing all violations, if any."""
    problems = schedule_problems(schedule, check_durations=check_durations)
    if problems:
        raise ScheduleError(
            f"schedule by {schedule.scheduler or 'unknown'!r} is infeasible "
            f"({len(problems)} problem(s)): " + "; ".join(problems[:10])
        )
