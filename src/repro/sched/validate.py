"""Independent schedule checker.

Every scheduler's output is validated in tests by :func:`check_schedule`,
which re-derives feasibility from first principles (completeness, processor
occupancy, execution durations, and data readiness under the machine's
communication cost model) without reusing any scheduler machinery.
"""

from __future__ import annotations

from repro.errors import ScheduleError
from repro.sched.schedule import Schedule

#: Absolute tolerance for floating-point time comparisons.
TOL = 1e-6


def schedule_problems(schedule: Schedule, check_durations: bool = True) -> list[str]:
    """Collect every feasibility violation (empty list == valid schedule).

    Rules checked
    -------------
    1. completeness — every graph task has at least one placement;
    2. occupancy — no two placements overlap on one processor;
    3. durations — each placement lasts exactly
       ``machine.exec_time(task.work)`` (skippable for imported schedules);
    4. data readiness — every placement of a task ``t`` starts no earlier
       than, for each in-edge ``u -> t``, the finish of *some* copy of ``u``
       plus the communication cost between their processors.
    """
    problems: list[str] = []
    graph, machine = schedule.graph, schedule.machine

    for t in graph.task_names:
        if t not in schedule:
            problems.append(f"task {t!r} was never scheduled")

    for proc in machine.procs():
        timeline = schedule.on_proc(proc)
        for a, b in zip(timeline, timeline[1:]):
            if a.finish > b.start + TOL:
                problems.append(
                    f"processor {proc}: {a.task!r} [{a.start:g},{a.finish:g}) overlaps "
                    f"{b.task!r} [{b.start:g},{b.finish:g})"
                )

    if check_durations:
        for entry in schedule:
            expected = machine.exec_time(graph.work(entry.task))
            if abs(entry.duration - expected) > TOL:
                problems.append(
                    f"task {entry.task!r} on processor {entry.proc}: duration "
                    f"{entry.duration:g} != exec_time {expected:g}"
                )

    for t in graph.task_names:
        if t not in schedule:
            continue
        for entry in schedule.placements(t):
            for edge in graph.in_edges(t):
                if edge.src not in schedule:
                    problems.append(
                        f"task {t!r} depends on unscheduled {edge.src!r}"
                    )
                    continue
                ready = min(
                    src.finish + machine.comm_cost(src.proc, entry.proc, edge.size)
                    for src in schedule.placements(edge.src)
                )
                if entry.start + TOL < ready:
                    problems.append(
                        f"task {t!r} on processor {entry.proc} starts at "
                        f"{entry.start:g} but edge {edge.src}->{t} ({edge.var!r}) "
                        f"is only ready at {ready:g}"
                    )
    return problems


def check_schedule(schedule: Schedule, check_durations: bool = True) -> None:
    """Raise :class:`ScheduleError` listing all violations, if any."""
    problems = schedule_problems(schedule, check_durations=check_durations)
    if problems:
        raise ScheduleError(
            f"schedule by {schedule.scheduler or 'unknown'!r} is infeasible "
            f"({len(problems)} problem(s)): " + "; ".join(problems[:10])
        )
