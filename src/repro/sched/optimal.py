"""Exhaustive assignment search — a quality yardstick for the heuristics.

Static multiprocessor scheduling is NP-hard, but for the small designs
Banger targets ("quick-and-dirty" programs of a handful of tasks) we can
afford to enumerate every task→processor assignment and time each one with
the shared fixed-assignment pass.  The result is the optimal *assignment*
under b-level list ordering — not a proof of global optimality (ordering is
fixed), but a strong, deterministic lower reference the test suite uses to
measure how far the heuristics stray.

Symmetry pruning: processors of the common regular topologies are
interchangeable up to relabelling, so the first task is pinned to
processor 0, cutting the search by a factor of ``n_procs``.
"""

from __future__ import annotations

import itertools

from repro.errors import ScheduleError
from repro.graph.taskgraph import TaskGraph
from repro.machine.machine import TargetMachine
from repro.sched.base import Scheduler
from repro.sched.clustering import assignment_to_schedule
from repro.sched.schedule import Schedule

#: Hard cap on assignments examined (|procs| ** |tasks| after pruning).
DEFAULT_BUDGET = 20_000


class ExhaustiveScheduler(Scheduler):
    """Try every assignment; keep the best makespan.

    Parameters
    ----------
    budget:
        Maximum number of assignments examined; exceeding it raises, so the
        caller knows the graph is out of exhaustive range rather than
        silently getting a partial search.
    """

    name = "exhaustive"

    def __init__(self, budget: int = DEFAULT_BUDGET):
        self.budget = budget

    def schedule(self, graph: TaskGraph, machine: TargetMachine) -> Schedule:
        tasks = graph.task_names
        n, p = len(tasks), machine.n_procs
        count = p ** max(n - 1, 0)
        if count > self.budget:
            raise ScheduleError(
                f"exhaustive search needs {count} assignments for {n} tasks on "
                f"{p} processors; budget is {self.budget} (use a heuristic)"
            )
        best: Schedule | None = None
        first, rest = tasks[0], tasks[1:]
        for combo in itertools.product(range(p), repeat=len(rest)):
            assignment = {first: 0}
            assignment.update(zip(rest, combo))
            candidate = assignment_to_schedule(
                graph, machine, assignment, scheduler_name=self.name, insertion=True
            )
            if best is None or candidate.makespan() < best.makespan() - 1e-12:
                best = candidate
        assert best is not None
        return best
