"""The oracle registry: cross-layer invariants the repo must always satisfy.

Each oracle checks one *relationship between two independent layers* — a
prediction against a replay, a document against its round trip, two
execution engines against each other.  An oracle takes a
:class:`CaseContext` (which materializes and caches the expensive shared
artifacts: the schedule, the contention-free trace) and returns a list of
problem strings; an empty list means the case conforms.

Registered oracles
------------------
===============  ======  ====================================================
name             kind    invariant
===============  ======  ====================================================
``feasible``     graph   scheduler output passes the independent checker
                         (rules SCH201-SCH205)
``makespan``     graph   event-driven replay never finishes a task *later*
                         than the static schedule promised, and the simulated
                         makespan never exceeds the predicted makespan
``contention``   graph   one-message-at-a-time links can only slow the
                         replay down, never speed it up
``roundtrip``    graph   graph / machine / schedule serialize -> deserialize
                         preserves content hashes, placements, and makespan
``flatten``      graph   lifting a task graph to a PITL drawing and
                         flattening it back is semantically identity: same
                         tasks, works, edges — and the same predicted
                         makespan when scheduled
``determinism``  graph   scheduling twice and simulating twice produce
                         byte-identical documents
``lint_sim``     graph   a design that lints clean (DF109 "no program yet"
                         suppressed — fuzz graphs are weight-only) must
                         flatten, schedule, and simulate without error
``codegen_deadlock``
                 graph   the CG5xx concurrency analyzer finds no errors on
                         real plans, and plans it passes actually run to
                         completion on live threads and queues
``incremental``  graph   after a deterministic single-node work edit,
                         incremental rescheduling stays feasible and is
                         byte-identical to the full-reference reschedule;
                         an unchanged graph returns the prior schedule
                         object verbatim
``dynamic_null`` graph   the dynamic simulator under an *empty* fault
                         scenario is byte-identical to the static replay
                         (uniform machines), degradation-only and
                         deterministic under the derived scenario; static
                         schedulers stay heterogeneity-blind
``reactive_safe``
                 graph   every reactive replanning round stays feasible
                         (SCH201-SCH205), never re-maps a started task,
                         respects precedence in the observed trace, strands
                         exactly the provably-doomed task set, and replays
                         deterministically
``exec_trace``   graph   the ``inproc`` backend's event trace obeys the
                         lowered program's step lists, channel plan, and
                         precedence constraints, and its outputs are
                         bit-identical to the sequential PITS reference
                         executor and the generated ``threads`` program
``pits_codegen`` pits    a PITS routine computes bit-identical outputs (and
                         display lines) through the tree-walking interpreter
                         and the generated-Python path; domain errors must
                         be raised by both sides or neither
===============  ======  ====================================================

All time comparisons go through :mod:`repro.approx` — the one shared
tolerance — so the oracle suite cannot drift apart from the checkers it
guards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.approx import approx_eq, approx_ge, approx_le, values_close
from repro.conformance.cases import GRAPH, PITS, Case
from repro.errors import CalcError, ReproError
from repro.graph.generators import as_dataflow
from repro.graph.hierarchy import flatten
from repro.graph.serialize import taskgraph_from_dict, taskgraph_to_dict
from repro.machine.machine import TargetMachine
from repro.machine.scenario import PROFILES, FaultScenario, seeded_scenario
from repro.sched import get_scheduler
from repro.sched.serialize import schedule_from_dict, schedule_to_dict
from repro.sched.validate import schedule_problems
from repro.sim.dynamic import expected_stranded, simulate_dynamic
from repro.sim.executor import compare_with_static, simulate


class CaseContext:
    """Lazily materializes (and caches) the artifacts oracles share.

    Scheduling and the contention-free replay are each computed at most
    once per case no matter how many oracles inspect them.
    """

    def __init__(self, case: Case):
        self.case = case
        self._cache: dict[str, object] = {}

    def _get(self, key: str, build: Callable[[], object]) -> object:
        if key not in self._cache:
            self._cache[key] = build()
        return self._cache[key]

    @property
    def graph(self):
        return self._get("graph", self.case.taskgraph)

    @property
    def machine(self) -> TargetMachine:
        return self._get("machine", self.case.machine)

    @property
    def schedule(self):
        return self._get(
            "schedule",
            lambda: get_scheduler(self.case.scheduler).schedule(
                self.graph, self.machine
            ),
        )

    @property
    def trace(self):
        """The contention-free replay of :attr:`schedule`."""
        return self._get("trace", lambda: simulate(self.schedule, contention=False))

    @property
    def plan(self):
        """The communication plan lowered from :attr:`schedule`."""
        from repro.sim.plan import build_comm_plan

        return self._get("plan", lambda: build_comm_plan(self.schedule))

    @property
    def scenario(self) -> FaultScenario:
        """The fault scenario the dynamic oracles exercise.

        A case that pins one in its payload gets that exact scenario
        (corpus witnesses replay bit-for-bit); otherwise one is derived
        deterministically from the case id, so every historical case gains
        dynamic coverage without its content address changing.
        """

        def build() -> FaultScenario:
            pinned = self.case.scenario()
            if pinned is not None:
                return pinned
            seed = int(self.case.case_id, 16) % 2**32
            horizon = self.trace.makespan() or 1.0
            profile = PROFILES[seed % len(PROFILES)]
            return seeded_scenario(seed, self.machine, horizon, profile=profile)

        return self._get("scenario", build)

    @property
    def dynamic_trace(self):
        """The dynamic replay of :attr:`schedule` under :attr:`scenario`."""
        return self._get(
            "dynamic_trace",
            lambda: simulate_dynamic(self.schedule, self.scenario),
        )


@dataclass(frozen=True)
class Oracle:
    """One registered invariant."""

    name: str
    kind: str
    description: str
    fn: Callable[[CaseContext], list[str]]

    def check(self, ctx: CaseContext) -> list[str]:
        """Problems found on this case (crashes become problems, not raises)."""
        if ctx.case.kind != self.kind:
            return []
        try:
            return self.fn(ctx)
        except Exception as exc:  # noqa: BLE001 - a crash *is* a finding
            return [f"{type(exc).__name__}: {exc}"]


#: name -> Oracle, in registration order (which the runner preserves).
ORACLES: dict[str, Oracle] = {}


def register(name: str, kind: str, description: str):
    def deco(fn: Callable[[CaseContext], list[str]]) -> Callable:
        if name in ORACLES:
            raise ReproError(f"oracle {name!r} registered twice")
        ORACLES[name] = Oracle(name, kind, description, fn)
        return fn

    return deco


def resolve_oracles(names: list[str] | None = None) -> list[Oracle]:
    """Oracles to run: all of them, or the named subset (order preserved)."""
    if not names:
        return list(ORACLES.values())
    missing = [n for n in names if n not in ORACLES]
    if missing:
        raise ReproError(
            f"unknown oracle(s) {missing}; registered: {sorted(ORACLES)}"
        )
    return [ORACLES[n] for n in ORACLES if n in names]


# --------------------------------------------------------------------- #
# graph oracles
# --------------------------------------------------------------------- #
@register("feasible", GRAPH, "scheduler output passes the independent checker")
def _feasible(ctx: CaseContext) -> list[str]:
    return schedule_problems(ctx.schedule)


@register("makespan", GRAPH,
          "simulated trace never finishes later than the static schedule")
def _makespan(ctx: CaseContext) -> list[str]:
    problems = compare_with_static(ctx.schedule, ctx.trace)
    static, replayed = ctx.schedule.makespan(), ctx.trace.makespan()
    if not approx_le(replayed, static):
        problems.append(
            f"simulated makespan {replayed:g} exceeds predicted {static:g}"
        )
    return problems


@register("contention", GRAPH,
          "link contention can only increase the simulated makespan")
def _contention(ctx: CaseContext) -> list[str]:
    contended = simulate(ctx.schedule, contention=True)
    if not approx_ge(contended.makespan(), ctx.trace.makespan()):
        return [
            f"contended makespan {contended.makespan():g} below "
            f"contention-free {ctx.trace.makespan():g}"
        ]
    return []


@register("roundtrip", GRAPH,
          "graph/machine/schedule serialization round-trips preserve content")
def _roundtrip(ctx: CaseContext) -> list[str]:
    problems: list[str] = []
    tg = ctx.graph
    tg2 = taskgraph_from_dict(taskgraph_to_dict(tg))
    if tg2.content_hash() != tg.content_hash():
        problems.append("taskgraph content hash changed across round trip")
    machine2 = TargetMachine.from_dict(ctx.machine.to_dict())
    if machine2.content_hash() != ctx.machine.content_hash():
        problems.append("machine content hash changed across round trip")
    doc = schedule_to_dict(ctx.schedule)
    reloaded = schedule_from_dict(doc)
    if schedule_to_dict(reloaded) != doc:
        problems.append("schedule document changed across round trip")
    if reloaded.makespan() != ctx.schedule.makespan():
        problems.append(
            f"reloaded makespan {reloaded.makespan():g} != "
            f"original {ctx.schedule.makespan():g}"
        )
    return problems


@register("flatten", GRAPH,
          "lift to a PITL drawing + flatten is identity, incl. the makespan")
def _flatten(ctx: CaseContext) -> list[str]:
    tg = ctx.graph
    flat = flatten(as_dataflow(tg))
    problems: list[str] = []
    if set(flat.task_names) != set(tg.task_names):
        problems.append("flatten(as_dataflow(tg)) changed the task set")
        return problems
    for name in tg.task_names:
        if flat.work(name) != tg.work(name):
            problems.append(f"task {name!r} work changed across flatten")
    edges = lambda g: sorted((e.src, e.dst, e.var, e.size) for e in g.edges)  # noqa: E731
    if edges(flat) != edges(tg):
        problems.append("edge set changed across flatten")
    if problems:
        return problems
    resched = get_scheduler(ctx.case.scheduler).schedule(flat, ctx.machine)
    if not approx_eq(resched.makespan(), ctx.schedule.makespan()):
        problems.append(
            f"flattened graph schedules to makespan {resched.makespan():g}, "
            f"original to {ctx.schedule.makespan():g}"
        )
    return problems


@register("determinism", GRAPH,
          "scheduling and simulating twice produce byte-identical documents")
def _determinism(ctx: CaseContext) -> list[str]:
    problems: list[str] = []
    again = get_scheduler(ctx.case.scheduler).schedule(ctx.graph, ctx.machine)
    if schedule_to_dict(again) != schedule_to_dict(ctx.schedule):
        problems.append("scheduling the same case twice differed")
    trace2 = simulate(ctx.schedule, contention=False)
    if trace2.runs != ctx.trace.runs or trace2.hops != ctx.trace.hops:
        problems.append("simulating the same schedule twice differed")
    return problems


@register("lint_sim", GRAPH,
          "a lint-clean design must flatten, schedule, and simulate")
def _lint_sim(ctx: CaseContext) -> list[str]:
    from repro.lint import lint_design

    design = as_dataflow(ctx.graph)
    report = lint_design(design, ctx.machine, suppress=("DF109",))
    if report.error_count:
        return []  # not lint-clean: the implication holds vacuously
    try:
        flat = flatten(design)
        schedule = get_scheduler(ctx.case.scheduler).schedule(flat, ctx.machine)
        simulate(schedule, contention=False)
    except Exception as exc:  # noqa: BLE001
        return [f"lint-clean design failed downstream: {type(exc).__name__}: {exc}"]
    return []


@register("incremental", GRAPH,
          "a single-node edit reschedules incrementally to the same bytes "
          "as the full reference, and stays feasible")
def _incremental(ctx: CaseContext) -> list[str]:
    from repro.sched.incremental import full_reschedule, incremental_reschedule

    problems: list[str] = []
    prev = ctx.schedule
    if not prev.is_complete():
        return []  # nothing to reuse: the feasible oracle owns this case

    # No-op edit: same content, so the prior schedule comes back verbatim.
    same = incremental_reschedule(prev, ctx.graph.copy())
    if same.schedule is not prev or not same.unchanged:
        problems.append("unchanged graph did not return the prior schedule")

    # Deterministic single-node edit: bump the first task's work.
    edited = ctx.graph.copy()
    victim = edited.task_names[0]
    edited.set_work(victim, edited.work(victim) * 2.0 + 1.0)

    inc = incremental_reschedule(prev, edited)
    problems += [f"incremental: {p}" for p in schedule_problems(inc.schedule)]
    reference = full_reschedule(prev, edited)
    if schedule_to_dict(inc.schedule) != schedule_to_dict(reference):
        problems.append(
            f"incremental reschedule (dirty {inc.n_dirty}/{inc.n_tasks}) "
            "diverges from the full-reference reschedule"
        )
    return problems


@register("dynamic_null", GRAPH,
          "empty-scenario dynamic replay is byte-identical to the static "
          "replay; faults only ever slow execution down, deterministically")
def _dynamic_null(ctx: CaseContext) -> list[str]:
    problems: list[str] = []
    empty = FaultScenario.empty()

    if ctx.machine.is_uniform:
        # The null contract proper: with no faults and a uniform machine the
        # dynamic engine must reproduce the static replay bit for bit.
        null = simulate_dynamic(ctx.schedule, empty)
        if null.runs != ctx.trace.runs:
            problems.append("empty-scenario dynamic runs differ from static")
        if null.hops != ctx.trace.hops:
            problems.append("empty-scenario dynamic hops differ from static")
        if null.stranded or null.killed_runs or null.lost:
            problems.append(
                "empty scenario stranded/killed/lost something: "
                f"{null.stranded} {null.killed} {null.lost}"
            )
    else:
        # Heterogeneous machine: static schedulers must be factor-blind
        # (identical placements on the factor-stripped machine) and the
        # dynamic replay degradation-only (no task beats its nominal time).
        blind = get_scheduler(ctx.case.scheduler).schedule(
            ctx.graph, ctx.machine.uniform()
        )
        mine = sorted((p.task, p.proc, p.start, p.finish) for p in ctx.schedule)
        theirs = sorted((p.task, p.proc, p.start, p.finish) for p in blind)
        if mine != theirs:
            problems.append(
                f"scheduler {ctx.case.scheduler!r} is not heterogeneity-blind: "
                "placements differ on the factor-stripped machine"
            )
        null = simulate_dynamic(ctx.schedule, empty)
        for run in null.runs:
            nominal = ctx.schedule.primary(run.task).duration
            if not approx_ge(run.finish - run.start, nominal):
                problems.append(
                    f"task {run.task!r} ran in {run.finish - run.start:g} "
                    f"under factors, beating its nominal {nominal:g}"
                )
        if not approx_ge(null.makespan(), ctx.trace.makespan()):
            problems.append(
                f"heterogeneous makespan {null.makespan():g} beats the "
                f"uniform replay {ctx.trace.makespan():g}"
            )

    # Degradation-only + determinism under the (derived or pinned) scenario.
    dyn = ctx.dynamic_trace
    for run in dyn.runs:
        nominal = ctx.schedule.primary(run.task).duration
        if not approx_ge(run.finish - run.start, nominal):
            problems.append(
                f"task {run.task!r} observed duration {run.finish - run.start:g} "
                f"beats its nominal {nominal:g} under faults"
            )
    again = simulate_dynamic(ctx.schedule, ctx.scenario)
    if (
        again.runs != dyn.runs
        or again.hops != dyn.hops
        or again.stranded != dyn.stranded
        or again.lost != dyn.lost
    ):
        problems.append("dynamic simulation of the same scenario twice differed")
    if not ctx.scenario.has_failures and dyn.stranded:
        problems.append(
            f"failure-free scenario stranded tasks: {dyn.stranded}"
        )
    return problems


@register("reactive_safe", GRAPH,
          "reactive rescheduling stays feasible, never moves started tasks, "
          "and strands exactly the doomed set")
def _reactive_safe(ctx: CaseContext) -> list[str]:
    from repro.sched.reactive import reactive_execute

    if ctx.schedule.has_duplication():
        return []  # reactive targets primary-copy schedules only
    problems: list[str] = []
    res = reactive_execute(ctx.schedule, ctx.scenario)

    # Every replanned schedule must pass the full independent checker.
    for i, plan in enumerate(res.plans):
        problems += [f"round {i}: {p}" for p in schedule_problems(plan)]

    # Started tasks are immutable: each round's pinned set keeps its
    # processor from the plan the trigger was observed under.
    for k, rnd in enumerate(res.rounds):
        before, after = res.plans[k], res.plans[k + 1]
        for task in sorted(rnd.pinned):
            if after.primary(task).proc != before.primary(task).proc:
                problems.append(
                    f"round {k} re-mapped started task {task!r} from proc "
                    f"{before.primary(task).proc} to {after.primary(task).proc}"
                )

    # The observed trace must respect precedence and nominal-duration floors.
    final = res.trace
    finish = {r.task: r.finish for r in final.runs}
    start = {r.task: r.start for r in final.runs}
    for run in final.runs:
        nominal = res.schedule.primary(run.task).duration
        if not approx_ge(run.finish - run.start, nominal):
            problems.append(
                f"task {run.task!r} observed duration {run.finish - run.start:g} "
                f"beats its nominal {nominal:g}"
            )
        for edge in ctx.graph.in_edges(run.task):
            if edge.src not in finish:
                problems.append(
                    f"task {run.task!r} ran but predecessor {edge.src!r} "
                    "never completed"
                )
            elif not approx_le(finish[edge.src], start[run.task]):
                problems.append(
                    f"task {run.task!r} started at {start[run.task]:g} before "
                    f"predecessor {edge.src!r} finished at {finish[edge.src]:g}"
                )

    # Stranding must match the independent doomed-set fixpoint exactly.
    expected = expected_stranded(res.schedule, final, ctx.scenario)
    if expected is not None and expected != set(final.stranded):
        problems.append(
            f"stranded set {sorted(final.stranded)} != provably-doomed "
            f"set {sorted(expected)}"
        )
    killed = {r.task for r in final.killed_runs}
    if not killed <= set(final.stranded):
        problems.append(
            f"killed tasks {sorted(killed - set(final.stranded))} not stranded"
        )
    if not ctx.scenario.has_failures and final.stranded:
        problems.append(
            f"failure-free scenario stranded tasks: {final.stranded}"
        )

    # Determinism: the whole reactive loop replays bit for bit.
    res2 = reactive_execute(ctx.schedule, ctx.scenario)
    if (
        res2.n_rounds != res.n_rounds
        or res2.trace.runs != final.runs
        or res2.trace.hops != final.hops
        or res2.trace.stranded != final.stranded
    ):
        problems.append("reactive execution of the same scenario twice differed")
    return problems


@register("codegen_deadlock", GRAPH,
          "the concurrency analyzer is sound: clean plans really complete")
def _codegen_deadlock(ctx: CaseContext) -> list[str]:
    from repro.analysis.concurrency import analyze_plan, execute_plan_protocol
    from repro.severity import Severity

    diags = analyze_plan(ctx.plan)
    errors = [d for d in diags if d.severity is Severity.ERROR]
    if errors:
        # Real plans from real schedulers must never trip the analyzer.
        return [f"{d.rule_id}: {d.message}" for d in errors]
    if not execute_plan_protocol(ctx.plan, timeout=5.0):
        return [
            "analyzer passed the plan but its channel protocol did not run "
            "to completion on live threads"
        ]
    return []


def _with_programs(tg):
    """A copy of ``tg`` with deterministic straight-line PITS programs.

    Fuzz graphs are weight-only; to push one through the codegen pipeline
    each task gets a synthesized routine whose inputs are its in-edge (and
    graph-input) variables and whose outputs are its out-edge variables plus
    any graph outputs it owns.  Sinks that would otherwise produce nothing
    gain a synthetic ``out_<task>`` graph output so every run has observable
    results.  The bodies are pure float arithmetic — a position-weighted sum
    of the inputs — so any two conforming engines must agree bit for bit.

    Returns ``None`` when a variable or task name cannot serve as a PITS
    identifier (a corpus graph with exotic names): the oracle then holds
    vacuously.
    """
    from repro.calc.tokens import KEYWORDS

    usable = lambda n: bool(n) and n.isidentifier() and n.lower() not in KEYWORDS  # noqa: E731
    ptg = tg.copy()
    for i, var in enumerate(sorted(ptg.graph_inputs)):
        ptg.input_values.setdefault(var, float(i + 1))
    for task in ptg.task_names:
        ins = sorted({e.var for e in ptg.in_edges(task) if e.var})
        ins += sorted(
            v for v, consumers in ptg.graph_inputs.items()
            if task in consumers and v not in ins
        )
        outs = sorted(
            {e.var for e in ptg.out_edges(task) if e.var}
            | {v for v, producer in ptg.graph_outputs.items() if producer == task}
        )
        if not outs:
            synth = f"out_{task}"
            if synth in ins or synth in ptg.graph_outputs:
                return None
            ptg.graph_outputs[synth] = task
            outs = [synth]
        if set(ins) & set(outs):
            return None
        if not all(usable(n) for n in (task, *ins, *outs)):
            return None
        lines = [f"task {task}"]
        if ins:
            lines.append("input " + ", ".join(ins))
        lines.append("output " + ", ".join(outs))
        for j, out in enumerate(outs):
            terms = [f"({v} / {i + 2})" for i, v in enumerate(ins)]
            lines.append(f"{out} := " + " + ".join([*terms, f"{float(j + 1)}"]))
        ptg.task(task).program = "\n".join(lines) + "\n"
    return ptg


@register("exec_trace", GRAPH,
          "inproc execution obeys the lowered plan and matches the "
          "reference executors bit for bit")
def _exec_trace(ctx: CaseContext) -> list[str]:
    from repro.codegen.backends import get_backend, run_generated, trace_problems
    from repro.codegen.ir import lower
    from repro.sim.dataflow_exec import run_dataflow

    ptg = _with_programs(ctx.graph)
    if ptg is None:
        return []  # names unusable as PITS identifiers: vacuously conforms
    schedule = get_scheduler(ctx.case.scheduler).schedule(ptg, ctx.machine)
    program = lower(schedule)

    result = get_backend("inproc").execute(program)
    problems = [f"trace: {p}" for p in trace_problems(program, result.events)]

    reference = run_dataflow(ptg)
    if set(result.outputs) != set(reference.outputs):
        problems.append(
            f"inproc produced outputs {sorted(result.outputs)}, "
            f"reference executor {sorted(reference.outputs)}"
        )
    else:
        for var in sorted(reference.outputs):
            if not values_close(result.outputs[var], reference.outputs[var]):
                problems.append(
                    f"output {var!r} diverges: reference "
                    f"{reference.outputs[var]!r}, inproc {result.outputs[var]!r}"
                )

    threaded = run_generated(get_backend("threads").emit(program))
    if set(threaded) != set(result.outputs):
        problems.append(
            f"threads program produced outputs {sorted(threaded)}, "
            f"inproc {sorted(result.outputs)}"
        )
    else:
        for var in sorted(threaded):
            if not values_close(threaded[var], result.outputs[var]):
                problems.append(
                    f"output {var!r} diverges: inproc "
                    f"{result.outputs[var]!r}, threads {threaded[var]!r}"
                )
    return problems


# --------------------------------------------------------------------- #
# pits oracles
# --------------------------------------------------------------------- #
@register("pits_codegen", PITS,
          "interpreter and generated Python compute bit-identical results")
def _pits_codegen(ctx: CaseContext) -> list[str]:
    from repro.calc.interp import _coerce_input, run_program
    from repro.calc.parser import parse
    from repro.codegen import runtime as _rt
    from repro.codegen.pits2py import function_name, gen_task_function

    source = ctx.case.source
    # Both engines must see the same values: real pipelines always hand the
    # generated function an env of already-coerced values (numpy arrays,
    # floats), exactly what the interpreter's input coercion produces.
    inputs = {k: _coerce_input(v) for k, v in ctx.case.inputs().items()}
    program = parse(source)

    interp_exc: BaseException | None = None
    expected = None
    displayed: list[str] = []
    try:
        expected = run_program(source, **inputs)
        displayed = expected.displayed
    except CalcError as exc:
        interp_exc = exc

    code = gen_task_function("case", source)
    namespace = {"_rt": _rt, "_np": np}
    exec(compile(code, "<conformance>", "exec"), namespace)  # noqa: S102
    shown: list[str] = []
    gen_exc: BaseException | None = None
    got = None
    try:
        got = namespace[function_name("case")](dict(inputs), shown.append)
    except CalcError as exc:
        gen_exc = exc

    if (interp_exc is None) != (gen_exc is None):
        return [
            "interpreter and generated code disagree on raising: "
            f"interp={interp_exc!r}, generated={gen_exc!r}"
        ]
    if interp_exc is not None:
        if type(interp_exc) is not type(gen_exc):
            return [
                f"error types diverge: interpreter {type(interp_exc).__name__}, "
                f"generated {type(gen_exc).__name__}"
            ]
        return []

    problems: list[str] = []
    assert expected is not None and got is not None
    for name in program.outputs:
        if not values_close(got.get(name), expected.outputs[name]):
            problems.append(
                f"output {name!r} diverges: interpreter "
                f"{expected.outputs[name]!r}, generated {got.get(name)!r}"
            )
    if shown != displayed:
        problems.append(
            f"display lines diverge: interpreter {displayed!r}, generated {shown!r}"
        )
    return problems
