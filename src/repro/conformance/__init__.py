"""Conformance engine: differential oracles + seeded fuzzing across layers.

The paper's promise is *instant, trustworthy feedback*: Banger's predicted
schedules, simulated replays, interpreted trial runs, and generated
programs must all tell the scientist the same story.  This package makes
that cross-layer consistency a continuously-fuzzed subsystem:

* :mod:`~repro.conformance.oracles` — the registry of cross-layer
  invariants (predicted vs. simulated makespans, interpreter vs. generated
  code, serialization round trips, flatten identity, lint-clean ⇒
  simulatable, determinism);
* :mod:`~repro.conformance.generators` — seeded deterministic case
  generators over graph families × machine topologies × schedulers and
  PITS programs;
* :mod:`~repro.conformance.shrink` — greedy minimization of failing cases;
* :mod:`~repro.conformance.corpus` — the replayable failure corpus under
  ``tests/conformance/corpus/``;
* :mod:`~repro.conformance.runner` — the fuzz loop behind
  ``banger conform``, with ``ServiceStats``-style counters and a
  deterministic run digest.

See ``docs/conformance.md`` for the oracle catalogue and the triage
workflow for a shrunk failure.
"""

from repro.conformance.cases import Case, graph_case, pits_case
from repro.conformance.corpus import (
    DEFAULT_CORPUS,
    CorpusEntry,
    corpus_paths,
    load_entry,
    replay_entry,
    write_entry,
)
from repro.conformance.generators import (
    FUZZ_SCHEDULERS,
    MACHINE_FAMILIES,
    CaseGenerator,
)
from repro.conformance.oracles import (
    ORACLES,
    CaseContext,
    Oracle,
    register,
    resolve_oracles,
)
from repro.conformance.runner import (
    ConformanceReport,
    ConformanceStats,
    Failure,
    check_case,
    run,
)
from repro.conformance.shrink import shrink

__all__ = [
    "Case",
    "CaseContext",
    "CaseGenerator",
    "ConformanceReport",
    "ConformanceStats",
    "CorpusEntry",
    "DEFAULT_CORPUS",
    "FUZZ_SCHEDULERS",
    "Failure",
    "MACHINE_FAMILIES",
    "ORACLES",
    "Oracle",
    "check_case",
    "corpus_paths",
    "graph_case",
    "load_entry",
    "pits_case",
    "register",
    "replay_entry",
    "resolve_oracles",
    "run",
    "shrink",
    "write_entry",
]
