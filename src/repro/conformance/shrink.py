"""Greedy case minimization: turn a fuzz failure into its smallest witness.

``shrink(case, fails)`` repeatedly proposes *smaller* candidate cases and
keeps any candidate on which the failing oracle still fails, restarting
from the reduced case (first-improvement greedy descent).  Candidates are
proposed most-aggressive first — drop half the tasks before dropping one —
so typical failures collapse in a few dozen oracle evaluations.

Graph-case reductions: drop task chunks / single tasks (with incident
edges), drop single edges, shrink the machine within its topology family,
normalize task works and edge sizes to 1, and simplify any pinned fault
scenario (drop single events, silence duration noise, drop an emptied
scenario entirely).  PITS-case reductions: delete
body statements (only candidates that still pass static analysis are
proposed, so the shrinker cannot wander into "fails because it no longer
parses" territory) and simplify inputs toward 0 and 1.

Every proposed candidate is checked at most once per descent step and the
total number of oracle evaluations is capped (``max_checks``), so shrinking
is always bounded — a corpus write never hangs a CI run.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterator

from repro.calc.analyze import errors as static_errors
from repro.conformance.cases import GRAPH, PITS, Case
from repro.machine import MachineParams, build_topology
from repro.machine.machine import TargetMachine

#: Default cap on oracle evaluations during one shrink.
DEFAULT_MAX_CHECKS = 400

#: Per-family ladders of smaller-but-still-legal processor counts.
_FAMILY_LADDER: dict[str, tuple[int, ...]] = {
    "full": (8, 6, 4, 3, 2),
    "ring": (8, 5, 4, 3),
    "star": (8, 4, 3),
    "linear": (8, 4, 3, 2),
    "bus": (8, 4, 2),
    "hypercube": (8, 4, 2),
    "mesh": (9, 4),
    "torus": (9, 4),
    "tree": (7, 3),
    "chordal": (8, 5),
}


def _clone(doc: Any) -> Any:
    return json.loads(json.dumps(doc))


def shrink(
    case: Case,
    fails: Callable[[Case], bool],
    max_checks: int = DEFAULT_MAX_CHECKS,
) -> tuple[Case, int]:
    """Minimize ``case`` while ``fails`` stays true.

    Returns ``(smallest failing case found, oracle evaluations spent)``.
    ``case`` itself must fail; the result always fails.
    """
    current = case
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        for candidate in _candidates(current):
            checks += 1
            if fails(candidate):
                current = candidate
                improved = True
                break
            if checks >= max_checks:
                break
    return current, checks


# --------------------------------------------------------------------- #
# candidate proposal
# --------------------------------------------------------------------- #
def _candidates(case: Case) -> Iterator[Case]:
    if case.kind == GRAPH:
        yield from _graph_candidates(case)
    else:
        yield from _pits_candidates(case)


def _graph_candidates(case: Case) -> Iterator[Case]:
    payload = case.payload
    graph = payload["graph"]
    names = [t["name"] for t in graph["tasks"]]

    # 1. drop chunks of tasks, halving first (delta-debugging style)
    for frac in (2, 4):
        size = len(names) // frac
        if size >= 2:
            for lo in range(0, len(names), size):
                drop = set(names[lo:lo + size])
                if len(drop) < len(names):
                    yield _with_tasks_dropped(case, drop)
    # 2. drop single tasks
    if len(names) > 1:
        for name in names:
            yield _with_tasks_dropped(case, {name})
    # 3. drop single edges
    for i in range(len(graph["edges"])):
        p = _clone(payload)
        del p["graph"]["edges"][i]
        yield Case(GRAPH, p)
    # 4. shrink the machine within its family (factor-free: heterogeneity
    #    factors index the old processor count, so they are dropped along
    #    with any scenario events that target now-missing procs or links)
    machine = payload["machine"]
    family = machine["topology"].get("family", "")
    n = machine["topology"]["n_procs"]
    for smaller in _FAMILY_LADDER.get(family, ()):
        if smaller < n:
            p = _clone(payload)
            topology = build_topology(family, smaller)
            p["machine"] = TargetMachine(
                topology,
                MachineParams(**machine["params"]),
            ).to_dict()
            if "scenario" in p:
                p["scenario"]["events"] = [
                    e for e in p["scenario"]["events"]
                    if (e.get("proc") is None or e["proc"] < smaller)
                    and (
                        e.get("link") is None
                        or topology.has_link(e["link"][0], e["link"][1])
                    )
                ]
            yield Case(GRAPH, p)
    # 5. normalize weights: all works to 1, then all edge sizes to 1
    if any(t["work"] != 1.0 for t in graph["tasks"]):
        p = _clone(payload)
        for t in p["graph"]["tasks"]:
            t["work"] = 1.0
        yield Case(GRAPH, p)
    if any(e["size"] != 1.0 for e in graph["edges"]):
        p = _clone(payload)
        for e in p["graph"]["edges"]:
            e["size"] = 1.0
        yield Case(GRAPH, p)
    # 6. simplify the fault scenario: drop single events, silence the noise
    scenario = payload.get("scenario")
    if scenario is not None:
        for i in range(len(scenario["events"])):
            p = _clone(payload)
            del p["scenario"]["events"][i]
            yield Case(GRAPH, p)
        if scenario.get("duration_noise"):
            p = _clone(payload)
            p["scenario"]["duration_noise"] = 0.0
            yield Case(GRAPH, p)
        if not scenario["events"] and not scenario.get("duration_noise"):
            p = _clone(payload)
            del p["scenario"]
            yield Case(GRAPH, p)


def _with_tasks_dropped(case: Case, drop: set[str]) -> Case:
    p = _clone(case.payload)
    g = p["graph"]
    g["tasks"] = [t for t in g["tasks"] if t["name"] not in drop]
    g["edges"] = [
        e for e in g["edges"] if e["src"] not in drop and e["dst"] not in drop
    ]
    kept = {t["name"] for t in g["tasks"]}
    g["graph_inputs"] = {
        var: [c for c in consumers if c in kept]
        for var, consumers in (g.get("graph_inputs") or {}).items()
        if any(c in kept for c in consumers)
    }
    g["graph_outputs"] = {
        var: producer
        for var, producer in (g.get("graph_outputs") or {}).items()
        if producer in kept
    }
    return Case(GRAPH, p)


def _pits_candidates(case: Case) -> Iterator[Case]:
    payload = case.payload
    lines = payload["source"].splitlines()
    decl = {"task", "input", "output", "local"}

    # 1. delete one body statement at a time (never a declaration line);
    #    only statically clean programs are proposed
    for i, line in enumerate(lines):
        first = line.strip().split(" ", 1)[0].rstrip(":")
        if not line.strip() or first in decl:
            continue
        source = "\n".join(lines[:i] + lines[i + 1:]) + "\n"
        if static_errors(source):
            continue
        p = _clone(payload)
        p["source"] = source
        yield Case(PITS, p)
    # 2. simplify scalar inputs toward 0 / 1 / nearest integer
    for name, value in payload["inputs"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        for simpler in (0.0, 1.0, float(int(value))):
            if simpler != value:
                p = _clone(payload)
                p["inputs"][name] = simpler
                yield Case(PITS, p)
