"""The fuzz loop: generate cases, run oracles, shrink and store failures.

:func:`run` is what ``banger conform`` and the CI job call.  It is fully
deterministic for a given ``(seed, runs, oracles)`` triple: the report
carries a ``digest`` — a fingerprint over every (case id, oracle, verdict,
problem text) tuple — and two runs with the same inputs must produce the
same digest (checked in CI by literally running it twice).  Wall-clock
numbers live only in :class:`ConformanceStats`, which stays *out* of the
digest.

A ``time_budget`` (seconds) caps the loop for CI; hitting it sets
``stats.truncated`` and is reported, never silent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.conformance.cases import GRAPH, PITS, Case
from repro.conformance.corpus import CorpusEntry, write_entry
from repro.conformance.generators import CaseGenerator
from repro.conformance.oracles import CaseContext, Oracle, resolve_oracles
from repro.conformance.shrink import DEFAULT_MAX_CHECKS, shrink
from repro.graph.serialize import fingerprint


@dataclass
class ConformanceStats:
    """``ServiceStats``-style observability counters for one run."""

    cases: int = 0
    graph_cases: int = 0
    pits_cases: int = 0
    oracle_checks: int = 0
    failures: int = 0
    shrink_checks: int = 0
    corpus_writes: int = 0
    elapsed_seconds: float = 0.0
    truncated: bool = False

    def as_dict(self) -> dict[str, Any]:
        return dict(vars(self))

    def render(self) -> str:
        return (
            f"cases: {self.cases} ({self.graph_cases} graph, "
            f"{self.pits_cases} pits), {self.oracle_checks} oracle check(s), "
            f"{self.failures} failure(s)\n"
            f"shrink: {self.shrink_checks} evaluation(s), "
            f"{self.corpus_writes} corpus write(s)\n"
            f"time: {self.elapsed_seconds:.2f} s"
            + (" [budget hit — run truncated]" if self.truncated else "")
        )


@dataclass(frozen=True)
class Failure:
    """One oracle violation, with its shrunk witness."""

    case_id: str
    oracle: str
    detail: str
    shrunk: Case
    corpus_path: str = ""


@dataclass
class ConformanceReport:
    """Everything one fuzz run produced."""

    seed: int
    runs_requested: int
    oracle_names: list[str]
    outcomes: list[tuple[str, str, bool, str]] = field(default_factory=list)
    failures: list[Failure] = field(default_factory=list)
    stats: ConformanceStats = field(default_factory=ConformanceStats)

    @property
    def ok(self) -> bool:
        return not self.failures

    def per_oracle(self) -> dict[str, tuple[int, int]]:
        """oracle name -> (passes, failures), in registration order."""
        tally: dict[str, list[int]] = {n: [0, 0] for n in self.oracle_names}
        for _case_id, oracle, ok, _detail in self.outcomes:
            tally[oracle][0 if ok else 1] += 1
        return {n: (p, f) for n, (p, f) in tally.items()}

    def digest(self) -> str:
        """Deterministic fingerprint of the run (excludes wall-clock)."""
        return fingerprint(
            {
                "seed": self.seed,
                "runs": self.runs_requested,
                "oracles": self.oracle_names,
                "outcomes": [list(o) for o in self.outcomes],
            }
        )[:16]

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "banger-conform",
            "seed": self.seed,
            "runs": self.runs_requested,
            "ok": self.ok,
            "digest": self.digest(),
            "oracles": {
                name: {"pass": p, "fail": f}
                for name, (p, f) in self.per_oracle().items()
            },
            "failures": [
                {
                    "case_id": f.case_id,
                    "oracle": f.oracle,
                    "detail": f.detail,
                    "shrunk_case": f.shrunk.to_dict(),
                    "corpus_path": f.corpus_path,
                }
                for f in self.failures
            ],
            "stats": self.stats.as_dict(),
        }

    def render(self) -> str:
        lines = [
            f"conformance: seed {self.seed}, {self.stats.cases}/"
            f"{self.runs_requested} case(s), {len(self.oracle_names)} oracle(s)"
        ]
        for name, (passes, fails) in self.per_oracle().items():
            lines.append(f"  {name:<14} {passes:5d} pass {fails:5d} fail")
        for f in self.failures:
            lines.append(
                f"FAIL [{f.oracle}] case {f.case_id}: {f.detail}"
                + (f" (corpus: {f.corpus_path})" if f.corpus_path else "")
            )
        lines.append(f"digest {self.digest()}")
        lines.append(self.stats.render())
        lines.append("ok" if self.ok else f"FAILED ({len(self.failures)} case(s))")
        return "\n".join(lines)


def check_case(case: Case, oracles: list[Oracle]) -> list[tuple[Oracle, str]]:
    """Run the applicable oracles on one case; returns (oracle, detail) fails."""
    ctx = CaseContext(case)
    found: list[tuple[Oracle, str]] = []
    for oracle in oracles:
        problems = oracle.check(ctx)
        if problems:
            found.append((oracle, "; ".join(problems[:3])))
    return found


def run(
    seed: int = 0,
    runs: int = 100,
    oracles: list[str] | None = None,
    corpus_dir: str | None = None,
    time_budget: float | None = None,
    shrink_max_checks: int = DEFAULT_MAX_CHECKS,
) -> ConformanceReport:
    """Fuzz ``runs`` seeded cases through the selected oracles.

    Failures are greedily shrunk and, when ``corpus_dir`` is given, written
    there as replayable canonical-JSON corpus entries.
    """
    started = time.monotonic()
    selected = resolve_oracles(oracles)
    report = ConformanceReport(
        seed=seed,
        runs_requested=runs,
        oracle_names=[o.name for o in selected],
    )
    stats = report.stats
    gen = CaseGenerator(seed)

    for index in range(runs):
        if time_budget is not None and time.monotonic() - started > time_budget:
            stats.truncated = True
            break
        case = gen.next_case()
        stats.cases += 1
        if case.kind == GRAPH:
            stats.graph_cases += 1
        elif case.kind == PITS:
            stats.pits_cases += 1

        ctx = CaseContext(case)
        failed_here: list[tuple[Oracle, str]] = []
        for oracle in selected:
            if oracle.kind != case.kind:
                continue
            problems = oracle.check(ctx)
            stats.oracle_checks += 1
            ok = not problems
            report.outcomes.append(
                (case.case_id, oracle.name, ok, "; ".join(problems[:3]))
            )
            if not ok:
                failed_here.append((oracle, "; ".join(problems[:3])))

        for oracle, detail in failed_here:
            stats.failures += 1
            small, spent = shrink(
                case,
                lambda c, o=oracle: bool(o.check(CaseContext(c))),
                max_checks=shrink_max_checks,
            )
            stats.shrink_checks += spent
            small_detail = "; ".join(oracle.check(CaseContext(small))[:3])
            corpus_path = ""
            if corpus_dir:
                entry = CorpusEntry(
                    case=small,
                    oracle=oracle.name,
                    detail=small_detail,
                    origin=f"fuzz seed={seed} run={index}",
                )
                corpus_path = str(write_entry(corpus_dir, entry))
                stats.corpus_writes += 1
            report.failures.append(
                Failure(
                    case_id=case.case_id,
                    oracle=oracle.name,
                    detail=detail,
                    shrunk=small,
                    corpus_path=corpus_path,
                )
            )

    stats.elapsed_seconds = time.monotonic() - started
    return report
