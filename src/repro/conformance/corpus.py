"""The replayable failure corpus: ``tests/conformance/corpus/*.json``.

Every failure the fuzzer finds is shrunk and written here as one canonical
JSON document per case, named ``<kind>-<oracle>-<case_id>.json`` — the file
stem doubles as the pytest id in ``tests/conformance/test_corpus.py``, so a
red CI run names the exact case to replay:

    PYTHONPATH=src python -m repro.cli conform --replay tests/conformance/corpus

Entries are *regression* cases (they failed once, were fixed, and must pass
every applicable oracle forever after) or *pinned sentinels* — hand-picked
shapes guarding historically delicate contracts (duplication replay, bus
contention, domain-error agreement); the ``origin`` field says which.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any

from repro.conformance.cases import Case
from repro.errors import ReproError
from repro.graph.serialize import canonical_json

FORMAT_VERSION = 1

#: Default corpus location, relative to the repository root.
DEFAULT_CORPUS = pathlib.Path("tests") / "conformance" / "corpus"


@dataclass(frozen=True)
class CorpusEntry:
    """One stored failure: the shrunk case plus its provenance."""

    case: Case
    oracle: str
    detail: str
    origin: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": FORMAT_VERSION,
            "type": "conformance-corpus-entry",
            "case": self.case.to_dict(),
            "oracle": self.oracle,
            "detail": self.detail,
            "origin": self.origin,
        }

    @property
    def stem(self) -> str:
        return f"{self.case.kind}-{self.oracle}-{self.case.case_id}"

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CorpusEntry":
        if data.get("type") != "conformance-corpus-entry":
            raise ReproError(
                f"not a corpus entry document (type={data.get('type')!r})"
            )
        return cls(
            case=Case.from_dict(data["case"]),
            oracle=data.get("oracle", ""),
            detail=data.get("detail", ""),
            origin=data.get("origin", ""),
        )


def write_entry(corpus_dir: str | pathlib.Path, entry: CorpusEntry) -> pathlib.Path:
    """Write ``entry`` in canonical JSON; returns the path (content-named,
    so rewriting the same shrunk case is idempotent)."""
    directory = pathlib.Path(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{entry.stem}.json"
    path.write_text(canonical_json(entry.to_dict()) + "\n", encoding="utf-8")
    return path


def load_entry(path: str | pathlib.Path) -> CorpusEntry:
    return CorpusEntry.from_dict(json.loads(pathlib.Path(path).read_text(encoding="utf-8")))


def corpus_paths(corpus_dir: str | pathlib.Path) -> list[pathlib.Path]:
    """Every corpus file, sorted by name for deterministic replay order."""
    directory = pathlib.Path(corpus_dir)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))


def replay_entry(entry: CorpusEntry) -> list[tuple[str, str]]:
    """Run every applicable oracle on a stored case.

    Returns ``(oracle name, problem)`` pairs — empty means the regression
    stays fixed.
    """
    from repro.conformance.oracles import CaseContext, ORACLES

    ctx = CaseContext(entry.case)
    failures: list[tuple[str, str]] = []
    for oracle in ORACLES.values():
        for problem in oracle.check(ctx):
            failures.append((oracle.name, problem))
    return failures
