"""The conformance *case*: one self-contained, replayable test input.

A case is a plain JSON document (canonical form via
:func:`repro.graph.serialize.canonical_json`) so that a failure found by
the fuzzer on one machine replays bit-for-bit on any other.  Two kinds
exist:

* ``graph`` — a task graph + target machine + scheduler name, exercised by
  the scheduling/simulation/serialization oracles;
* ``pits`` — a PITS routine source + input bindings, exercised by the
  interpreter-vs-generated-code oracle.

``case_id`` is the first 12 hex digits of the canonical-JSON fingerprint,
which is also the corpus file stem — the id *is* the content address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError
from repro.graph.serialize import (
    _decode_value,
    _encode_value,
    canonical_json,
    fingerprint,
    taskgraph_from_dict,
    taskgraph_to_dict,
)
from repro.graph.taskgraph import TaskGraph
from repro.machine.machine import TargetMachine
from repro.machine.scenario import FaultScenario

FORMAT_VERSION = 1

GRAPH = "graph"
PITS = "pits"
KINDS = (GRAPH, PITS)


@dataclass(frozen=True)
class Case:
    """One conformance input (immutable; all content lives in ``payload``)."""

    kind: str
    payload: dict[str, Any]

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ReproError(f"unknown case kind {self.kind!r}; expected {KINDS}")

    # ------------------------------------------------------------------ #
    # content addressing + (de)serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {
            "format": FORMAT_VERSION,
            "type": "conformance-case",
            "kind": self.kind,
            "payload": self.payload,
        }

    def canonical(self) -> str:
        return canonical_json(self.to_dict())

    @property
    def case_id(self) -> str:
        return fingerprint(self.to_dict())[:12]

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Case":
        if data.get("type") != "conformance-case":
            raise ReproError(
                f"not a conformance case document (type={data.get('type')!r})"
            )
        return cls(kind=data["kind"], payload=data["payload"])

    # ------------------------------------------------------------------ #
    # materialization (graph cases)
    # ------------------------------------------------------------------ #
    def taskgraph(self) -> TaskGraph:
        if self.kind != GRAPH:
            raise ReproError(f"case {self.case_id} is not a graph case")
        return taskgraph_from_dict(self.payload["graph"])

    def machine(self) -> TargetMachine:
        if self.kind != GRAPH:
            raise ReproError(f"case {self.case_id} is not a graph case")
        return TargetMachine.from_dict(self.payload["machine"])

    @property
    def scheduler(self) -> str:
        if self.kind != GRAPH:
            raise ReproError(f"case {self.case_id} is not a graph case")
        return self.payload["scheduler"]

    def scenario(self) -> FaultScenario | None:
        """The pinned fault scenario, if the case carries one.

        Absent for every pre-dynamic corpus case (the key is only emitted
        when a scenario is attached, so old case ids are unchanged); the
        dynamic oracles derive a seeded scenario for bare cases.
        """
        if self.kind != GRAPH:
            raise ReproError(f"case {self.case_id} is not a graph case")
        doc = self.payload.get("scenario")
        return None if doc is None else FaultScenario.from_dict(doc)

    # ------------------------------------------------------------------ #
    # materialization (pits cases)
    # ------------------------------------------------------------------ #
    @property
    def source(self) -> str:
        if self.kind != PITS:
            raise ReproError(f"case {self.case_id} is not a pits case")
        return self.payload["source"]

    def inputs(self) -> dict[str, Any]:
        if self.kind != PITS:
            raise ReproError(f"case {self.case_id} is not a pits case")
        return {k: _decode_value(v) for k, v in self.payload["inputs"].items()}


def graph_case(
    tg: TaskGraph,
    machine: TargetMachine,
    scheduler: str,
    scenario: FaultScenario | None = None,
) -> Case:
    """Package a task graph + machine + scheduler name as a graph case.

    ``scenario`` optionally pins a fault scenario for the dynamic oracles;
    the payload key is omitted entirely when absent so that scenario-free
    cases keep their historical case ids.
    """
    payload: dict[str, Any] = {
        "graph": taskgraph_to_dict(tg),
        "machine": machine.to_dict(),
        "scheduler": scheduler,
    }
    if scenario is not None:
        payload["scenario"] = scenario.to_dict()
    return Case(kind=GRAPH, payload=payload)


def pits_case(source: str, inputs: dict[str, Any]) -> Case:
    """Package a PITS routine + input bindings as a pits case."""
    return Case(
        kind=PITS,
        payload={
            "source": source,
            "inputs": {k: _encode_value(v) for k, v in sorted(inputs.items())},
        },
    )
