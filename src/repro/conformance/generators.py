"""Seeded deterministic case generators for the conformance fuzzer.

Everything is driven by one ``random.Random(seed)`` stream: the same seed
always yields the same case sequence, in any process, on any platform —
that is what makes ``banger conform --seed 0`` a reproducible CI gate and
lets two runs be compared digest-for-digest.

Graph cases are layered on :mod:`repro.graph.generators` (the stock
scheduling-literature families plus seeded random layered DAGs) and on the
stored scenario corpus (:mod:`repro.store.corpus`) — a slice of every run
replays designs drawn from the project store, shipped examples included;
machines
cover every topology family at its legal small sizes; PITS cases mix the
stock :mod:`repro.calc.library` routines (randomized inputs, including the
domain edges: negative square roots, zero denominators, degenerate fits)
with random guarded straight-line arithmetic.
"""

from __future__ import annotations

import random
from typing import Any

from repro.calc.library import LIBRARY
from repro.conformance.cases import Case, graph_case, pits_case
from repro.graph import generators as gg
from repro.graph.taskgraph import TaskGraph
from repro.machine import MachineParams, TargetMachine, build_topology
from repro.machine.scenario import PROFILES, seeded_scenario

#: (family, legal small processor counts) — every topology family the
#: machine layer ships, at sizes that keep a fuzz run fast.
MACHINE_FAMILIES: tuple[tuple[str, tuple[int, ...]], ...] = (
    ("full", (2, 3, 4, 6, 8)),
    ("ring", (3, 4, 5, 8)),
    ("star", (3, 4, 8)),
    ("linear", (2, 3, 4, 8)),
    ("bus", (2, 4, 8)),
    ("hypercube", (2, 4, 8)),
    ("mesh", (4, 9)),
    ("torus", (4, 9)),
    ("tree", (3, 7)),
    ("chordal", (5, 8)),
)

#: Deterministic, fast schedulers only: ``exhaustive`` (exponential) and
#: ``anneal``/``random`` (stochastic) stay out of the fuzz rotation.
FUZZ_SCHEDULERS: tuple[str, ...] = (
    "mh",
    "mh-nocontention",
    "hlfet",
    "ish",
    "etf",
    "dls",
    "mcp",
    "cpop",
    "dsh",
    "lc",
    "dsc",
    "sarkar",
    "grain",
    "serial",
    "roundrobin",
)

#: Binary operators for random straight-line PITS expressions.  Division is
#: emitted in a guarded form so generated programs are total.
_OPS = ("+", "-", "*", "/", "min", "max")


class CaseGenerator:
    """Deterministic case stream: ``CaseGenerator(seed).next_case()``."""

    def __init__(self, seed: int):
        self.seed = seed
        self.rng = random.Random(seed)
        self._count = 0

    # ------------------------------------------------------------------ #
    # top level
    # ------------------------------------------------------------------ #
    def next_case(self) -> Case:
        """Roughly three graph cases for every pits case."""
        self._count += 1
        if self.rng.random() < 0.25:
            return self.next_pits_case()
        return self.next_graph_case()

    # ------------------------------------------------------------------ #
    # graph cases
    # ------------------------------------------------------------------ #
    def next_graph_case(self) -> Case:
        tg = self._random_graph()
        machine = self._random_machine()
        scheduler = self.rng.choice(FUZZ_SCHEDULERS)
        scenario = None
        if self.rng.random() < 0.5:
            # Pin a fault scenario so the dynamic oracles replay this exact
            # straggler/failure mix; the horizon approximates the critical
            # path so events land mid-execution, not after everything ends.
            horizon = (
                sum(machine.exec_time(tg.work(t)) for t in tg.task_names)
                / machine.topology.n_procs
                + 1.0
            )
            scenario = seeded_scenario(
                self.rng.randrange(2**32),
                machine,
                horizon,
                profile=self.rng.choice(PROFILES),
            )
        return graph_case(tg, machine, scheduler, scenario=scenario)

    def _random_graph(self) -> TaskGraph:
        rng = self.rng
        # ~20% of graph cases replay a *stored* corpus project — the fuzzer
        # exercises exactly the designs the project store ships, shipped
        # examples included, not just freshly generated shapes.
        if rng.random() < 0.2:
            return self._corpus_graph()
        work = round(rng.uniform(0.5, 8.0), 3)
        comm = round(rng.uniform(0.1, 12.0), 3)
        builders = (
            lambda: gg.chain(rng.randint(2, 10), work=work, comm=comm),
            lambda: gg.fork_join(rng.randint(2, 8), work=work, comm=comm),
            lambda: gg.diamond(rng.randint(2, 4), work=work, comm=comm),
            lambda: gg.out_tree(rng.randint(2, 3), rng.randint(2, 3),
                                work=work, comm=comm),
            lambda: gg.in_tree(rng.randint(2, 3), rng.randint(2, 3),
                               work=work, comm=comm),
            lambda: gg.butterfly(rng.choice((2, 4)), work=work, comm=comm),
            lambda: gg.gaussian_elimination(rng.randint(2, 4), work=work, comm=comm),
            lambda: gg.lu_taskgraph(rng.randint(2, 4), work=work, comm=comm),
            lambda: gg.map_reduce(rng.randint(2, 6), work=work, comm=comm),
            lambda: gg.stencil(rng.randint(2, 4), rng.randint(2, 4),
                               work=work, comm=comm),
            lambda: gg.pipeline_stages(rng.randint(2, 4), rng.randint(2, 4),
                                       work=work, comm=comm),
            lambda: gg.wavefront(rng.randint(2, 5), work=work, comm=comm),
            lambda: gg.ml_train_apply(rng.randint(2, 5), work=work, comm=comm),
            lambda: gg.bitonic_sort(rng.choice((2, 4)), work=work, comm=comm),
            lambda: gg.cholesky(rng.randint(2, 3), work=work, comm=comm),
            lambda: self._random_layered(),
        )
        return rng.choice(builders)()

    def _corpus_graph(self) -> TaskGraph:
        """One stored corpus design, flattened to its scheduling view."""
        from repro.store.corpus import corpus_names, corpus_taskgraph

        return corpus_taskgraph(self.rng.choice(corpus_names()))

    def _random_layered(self) -> TaskGraph:
        rng = self.rng
        n_tasks = rng.randint(4, 24)
        return gg.random_layered(
            n_tasks,
            rng.randint(2, min(5, n_tasks)),
            edge_prob=rng.uniform(0.2, 0.7),
            seed=rng.randrange(1_000_000),
        )

    def _random_machine(self) -> TargetMachine:
        rng = self.rng
        family, sizes = rng.choice(MACHINE_FAMILIES)
        n = rng.choice(sizes)
        params = MachineParams(
            processor_speed=round(rng.uniform(0.5, 4.0), 3),
            process_startup=round(rng.choice((0.0, rng.uniform(0.0, 0.5))), 3),
            msg_startup=round(rng.uniform(0.0, 1.0), 3),
            transmission_rate=round(rng.uniform(1.0, 50.0), 3),
            hop_latency=round(rng.uniform(0.0, 0.5), 3),
        )
        topology = build_topology(family, n)
        # ~30% of machines are heterogeneous: degraded processors and/or
        # degraded links.  Static schedulers must stay blind to the factors
        # (the dynamic_null oracle enforces it), so these draws widen the
        # dynamic-simulation coverage without forking the schedule space.
        speeds = None
        if rng.random() < 0.3:
            speeds = [round(rng.uniform(0.3, 1.0), 3) for _ in range(n)]
        bandwidths = None
        if rng.random() < 0.3:
            links = topology.links
            if links:
                picks = rng.sample(links, min(len(links), rng.randint(1, 2)))
                bandwidths = {
                    link: round(rng.uniform(0.3, 1.0), 3) for link in sorted(picks)
                }
        return TargetMachine(
            topology,
            params,
            proc_speed_factors=speeds,
            link_bandwidth_factors=bandwidths,
        )

    # ------------------------------------------------------------------ #
    # pits cases
    # ------------------------------------------------------------------ #
    def next_pits_case(self) -> Case:
        if self.rng.random() < 0.5:
            name = self.rng.choice(sorted(LIBRARY))
            return pits_case(LIBRARY[name], self._library_inputs(name))
        return self._random_straightline_case()

    def _library_inputs(self, name: str) -> dict[str, Any]:
        """Randomized-but-valid inputs per stock routine, edge cases included."""
        rng = self.rng
        f = lambda lo, hi: round(rng.uniform(lo, hi), 4)  # noqa: E731
        vec = lambda n: [f(-10, 10) for _ in range(n)]  # noqa: E731
        n = rng.randint(2, 5)
        if name == "square_root":
            # negative input exercises the Figure 4 display branch
            return {"a": rng.choice((f(-9, -0.1), 0.0, f(0.0, 100.0)))}
        if name == "polynomial":
            return {"c": vec(n), "x": f(-3, 3)}
        if name == "trapezoid_sin":
            return {"a": f(-3, 0), "b": f(0.1, 3), "n": float(rng.randint(1, 12))}
        if name == "stats":
            return {"v": vec(n)}
        if name == "quadratic":
            # a == 0 exercises the division-by-zero path on both sides
            return {"a": rng.choice((0.0, f(0.1, 4))), "b": f(-5, 5), "c": f(-5, 5)}
        if name == "matvec":
            m = rng.randint(2, 4)
            return {"A": [vec(m) for _ in range(n)], "x": vec(m)}
        if name == "axpy":
            return {"a": f(-4, 4), "x": vec(n), "yin": vec(n)}
        if name == "gcd":
            return {"a": float(rng.randint(-60, 60)), "b": float(rng.randint(-60, 60))}
        if name == "bisect_cos":
            return {"lo": 0.0, "hi": f(1.0, 2.0), "tol": 1e-6}
        if name == "simpson_exp":
            return {"a": f(-2, 0), "b": f(0.1, 2), "n": float(2 * rng.randint(1, 6))}
        if name == "linreg":
            # a constant x vector makes the slope denominator exactly zero
            if rng.random() < 0.2:
                return {"x": [1.0] * n, "y": vec(n)}
            return {"x": [float(i) for i in range(1, n + 1)], "y": vec(n)}
        if name == "compound":
            return {"principal": f(1, 1000), "rate": f(-0.5, 0.5),
                    "n": float(rng.randint(1, 8))}
        raise AssertionError(f"no input recipe for stock routine {name!r}")

    def _random_straightline_case(self) -> Case:
        rng = self.rng
        names = ("a", "b", "t1", "t2")

        def expr(depth: int) -> str:
            if depth == 0 or rng.random() < 0.3:
                if rng.random() < 0.5:
                    return f"{rng.uniform(-5, 5):.4g}"
                return rng.choice(names)
            op = rng.choice(_OPS)
            l, r = expr(depth - 1), expr(depth - 1)
            if op == "/":
                return f"({l} / (abs({r}) + 1))"
            if op in ("min", "max"):
                return f"{op}({l}, {r})"
            return f"({l} {op} {r})"

        source = (
            "task Fuzz\n"
            "input a, b\n"
            "output x, y\n"
            "local t1, t2\n"
            "t1 := a\n"
            "t2 := b\n"
            f"t1 := {expr(3)}\n"
            f"t2 := {expr(3)}\n"
            f"x := {expr(3)}\n"
            f"y := {expr(3)}\n"
        )
        inputs = {"a": round(rng.uniform(-100, 100), 4),
                  "b": round(rng.uniform(-100, 100), 4)}
        return pits_case(source, inputs)
