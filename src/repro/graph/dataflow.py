"""Single-level PITL dataflow graphs.

A :class:`DataflowGraph` holds task, composite, and storage nodes connected
by variable-labelled arcs — exactly one level of the hierarchical drawing of
the paper's Figure 1.  Composite nodes carry a nested ``DataflowGraph`` (see
:mod:`repro.graph.hierarchy` for expansion and flattening).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import CycleError, GraphError, ValidationError
from repro.graph.node import (
    DEFAULT_ARC_SIZE,
    DEFAULT_WORK,
    Arc,
    NodeKind,
    StorageNode,
    TaskNode,
)


class DataflowGraph:
    """A directed graph of tasks, composites, and storage nodes.

    Nodes are addressed by name.  Arcs may connect any pair of distinct
    nodes; the canonical dataflow idiom is ``task -> storage -> task``, but
    direct ``task -> task`` control arcs are also legal (the paper allows
    precedence "created by either control flow or dataflow dependencies").

    Parameters
    ----------
    name:
        Name of the design (or of the composite node this graph refines).
    inputs / outputs:
        Port maps for hierarchical use: ``inputs`` maps each incoming
        variable to the internal node — or list of nodes — that receives it
        (Figure 1's ``A`` fans out to several update tasks); ``outputs``
        maps each outgoing variable to the single internal node producing
        it.  Ignored for a top-level design.
    """

    def __init__(
        self,
        name: str = "design",
        inputs: dict[str, str] | None = None,
        outputs: dict[str, str] | None = None,
    ):
        self.name = name
        self._nodes: dict[str, TaskNode | StorageNode] = {}
        self._arcs: list[Arc] = []
        self._succ: dict[str, list[Arc]] = {}
        self._pred: dict[str, list[Arc]] = {}
        self._subgraphs: dict[str, "DataflowGraph"] = {}
        self.inputs: dict[str, str] = dict(inputs or {})
        self.outputs: dict[str, str] = dict(outputs or {})

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: TaskNode | StorageNode) -> TaskNode | StorageNode:
        """Insert a prebuilt node object; names must be unique."""
        if node.name in self._nodes:
            raise GraphError(f"duplicate node name {node.name!r} in graph {self.name!r}")
        self._nodes[node.name] = node
        self._succ[node.name] = []
        self._pred[node.name] = []
        return node

    def add_task(
        self,
        name: str,
        label: str = "",
        work: float = DEFAULT_WORK,
        program: str | None = None,
        **meta: Any,
    ) -> TaskNode:
        """Add a primitive task (an oval node)."""
        return self.add_node(  # type: ignore[return-value]
            TaskNode(name, label=label, work=work, program=program, meta=meta)
        )

    def add_composite(
        self,
        name: str,
        subgraph: "DataflowGraph",
        label: str = "",
        **meta: Any,
    ) -> TaskNode:
        """Add a bold (decomposable) node refined by ``subgraph``."""
        node = TaskNode(name, label=label, kind=NodeKind.COMPOSITE, meta=meta)
        self.add_node(node)
        self._subgraphs[name] = subgraph
        return node

    def add_storage(
        self,
        name: str,
        data: str = "",
        size: float = DEFAULT_ARC_SIZE,
        initial: Any = None,
        **meta: Any,
    ) -> StorageNode:
        """Add a storage rectangle holding variable ``data``."""
        return self.add_node(  # type: ignore[return-value]
            StorageNode(name, data=data, size=size, initial=initial, meta=meta)
        )

    def connect(
        self, src: str, dst: str, var: str = "", size: float | None = None
    ) -> Arc:
        """Draw an arc ``src -> dst`` labelled with variable ``var``.

        When ``var`` is omitted and either endpoint is a storage node, the
        label defaults to that storage node's datum; when ``size`` is
        omitted it defaults to the storage node's size (or 1.0).
        """
        for endpoint in (src, dst):
            if endpoint not in self._nodes:
                raise GraphError(f"unknown node {endpoint!r} in graph {self.name!r}")
        storage = None
        for endpoint in (src, dst):
            node = self._nodes[endpoint]
            if isinstance(node, StorageNode):
                storage = node
                break
        if not var and storage is not None:
            var = storage.data
        if size is None:
            size = storage.size if storage is not None else DEFAULT_ARC_SIZE
        arc = Arc(src, dst, var=var, size=size)
        if any(a.src == src and a.dst == dst and a.var == var for a in self._arcs):
            raise GraphError(
                f"duplicate arc {src}->{dst} for variable {var!r} in graph {self.name!r}"
            )
        self._arcs.append(arc)
        self._succ[src].append(arc)
        self._pred[dst].append(arc)
        return arc

    def remove_node(self, name: str) -> None:
        """Delete a node and every arc touching it."""
        if name not in self._nodes:
            raise GraphError(f"unknown node {name!r}")
        del self._nodes[name]
        self._subgraphs.pop(name, None)
        self._arcs = [a for a in self._arcs if name not in (a.src, a.dst)]
        self._succ.pop(name)
        self._pred.pop(name)
        for adj in (self._succ, self._pred):
            for key in adj:
                adj[key] = [a for a in adj[key] if name not in (a.src, a.dst)]

    def remove_arc(self, src: str, dst: str, var: str | None = None) -> None:
        """Delete the arc(s) ``src -> dst`` (all labels, or just ``var``)."""

        def doomed(a: Arc) -> bool:
            return a.src == src and a.dst == dst and (var is None or a.var == var)

        if not any(doomed(a) for a in self._arcs):
            raise GraphError(f"no arc {src}->{dst}" + (f" for {var!r}" if var else ""))
        self._arcs = [a for a in self._arcs if not doomed(a)]
        self._succ[src] = [a for a in self._succ[src] if not doomed(a)]
        self._pred[dst] = [a for a in self._pred[dst] if not doomed(a)]

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[TaskNode | StorageNode]:
        return iter(self._nodes.values())

    def node(self, name: str) -> TaskNode | StorageNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"unknown node {name!r} in graph {self.name!r}") from None

    def subgraph(self, name: str) -> "DataflowGraph":
        node = self.node(name)
        if not isinstance(node, TaskNode) or not node.is_composite:
            raise GraphError(f"node {name!r} is not composite")
        return self._subgraphs[name]

    @property
    def nodes(self) -> list[TaskNode | StorageNode]:
        return list(self._nodes.values())

    @property
    def node_names(self) -> list[str]:
        return list(self._nodes)

    @property
    def arcs(self) -> list[Arc]:
        return list(self._arcs)

    @property
    def tasks(self) -> list[TaskNode]:
        return [n for n in self._nodes.values() if isinstance(n, TaskNode)]

    @property
    def storages(self) -> list[StorageNode]:
        return [n for n in self._nodes.values() if isinstance(n, StorageNode)]

    @property
    def composites(self) -> list[TaskNode]:
        return [n for n in self.tasks if n.is_composite]

    def successors(self, name: str) -> list[str]:
        self.node(name)
        return [a.dst for a in self._succ[name]]

    def predecessors(self, name: str) -> list[str]:
        self.node(name)
        return [a.src for a in self._pred[name]]

    def out_arcs(self, name: str) -> list[Arc]:
        self.node(name)
        return list(self._succ[name])

    def in_arcs(self, name: str) -> list[Arc]:
        self.node(name)
        return list(self._pred[name])

    def sources(self) -> list[str]:
        """Nodes with no predecessors (program inputs / entry tasks)."""
        return [n for n in self._nodes if not self._pred[n]]

    def sinks(self) -> list[str]:
        """Nodes with no successors (program outputs / exit tasks)."""
        return [n for n in self._nodes if not self._succ[n]]

    # ------------------------------------------------------------------ #
    # algorithms
    # ------------------------------------------------------------------ #
    def topological_order(self) -> list[str]:
        """Kahn topological sort; raises :class:`CycleError` on cycles.

        Ties are broken by insertion order so the result is deterministic.
        """
        indeg = {n: len(self._pred[n]) for n in self._nodes}
        ready = [n for n in self._nodes if indeg[n] == 0]
        order: list[str] = []
        while ready:
            n = ready.pop(0)
            order.append(n)
            for arc in self._succ[n]:
                indeg[arc.dst] -= 1
                if indeg[arc.dst] == 0:
                    ready.append(arc.dst)
        if len(order) != len(self._nodes):
            cyc = self.find_cycle()
            raise CycleError(
                f"graph {self.name!r} contains a cycle: {' -> '.join(cyc)}", cyc
            )
        return order

    def find_cycle(self) -> list[str]:
        """Return one cycle as a node-name list (empty if acyclic)."""
        WHITE, GREY, BLACK = 0, 1, 2
        color = dict.fromkeys(self._nodes, WHITE)
        parent: dict[str, str] = {}

        for root in self._nodes:
            if color[root] != WHITE:
                continue
            stack: list[tuple[str, Iterator[str]]] = [(root, iter(self.successors(root)))]
            color[root] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if color[nxt] == WHITE:
                        color[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, iter(self.successors(nxt))))
                        advanced = True
                        break
                    if color[nxt] == GREY:  # back edge: reconstruct cycle
                        cycle = [nxt]
                        cur = node
                        while cur != nxt:
                            cycle.append(cur)
                            cur = parent[cur]
                        cycle.append(nxt)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return []

    def is_acyclic(self) -> bool:
        return not self.find_cycle()

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def problems(self, recurse: bool = True) -> list[str]:
        """Collect every structural problem (empty list == valid).

        This powers the environment's instant feedback: it never raises, it
        reports *all* issues at once, and each message names the culprit.
        The checks themselves live in :mod:`repro.lint.design` (rules
        ``DF101``–``DF110``); this method is the legacy string view.
        """
        from repro.lint.design import design_diagnostics

        return [d.message for d in design_diagnostics(self, recurse=recurse)]

    def validate(self, recurse: bool = True) -> None:
        """Raise :class:`ValidationError` listing all problems, if any."""
        issues = self.problems(recurse=recurse)
        if issues:
            raise ValidationError(
                f"graph {self.name!r} is invalid ({len(issues)} problem(s)): "
                + "; ".join(issues),
                issues,
            )

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def copy(self) -> "DataflowGraph":
        """Deep copy (subgraphs included)."""
        import copy as _copy

        g = DataflowGraph(self.name, inputs=self.inputs, outputs=self.outputs)
        for node in self._nodes.values():
            g.add_node(_copy.deepcopy(node))
        for name, sub in self._subgraphs.items():
            g._subgraphs[name] = sub.copy()
        for arc in self._arcs:
            g._arcs.append(arc)
            g._succ[arc.src].append(arc)
            g._pred[arc.dst].append(arc)
        return g

    def __repr__(self) -> str:
        return (
            f"DataflowGraph({self.name!r}, nodes={len(self._nodes)}, "
            f"arcs={len(self._arcs)}, composites={len(self._subgraphs)})"
        )
