"""Node splitting: turn one data-parallel task into W shards plus a merge.

This implements the paper's closing conjecture — "Banger can be extended to
encompass fine-grained parallelism through the use of machine-independent
data-parallel constructs" — on top of the ``forall`` construct:

* a task whose routine is *prelude + one top-level forall* (prelude creates
  every array the forall writes with ``zeros(...)``) can be split;
* each shard runs the same prelude, then the forall restricted to its slice
  of the iteration space (bounds computed at run time, so they may depend
  on inputs);
* because iterations write disjoint elements of zero-initialised arrays,
  the merge task reconstructs each parallel output as the elementwise sum
  of the shard versions; prelude-only ("replicated") outputs are taken from
  shard 0.

The transform operates on the flattened :class:`TaskGraph` and returns a
new graph; the original is untouched.  Splitting never changes results —
tested by comparing executions before and after.
"""

from __future__ import annotations

import dataclasses

from repro.calc import ast
from repro.calc.analyze import errors as static_errors
from repro.calc.parser import parse
from repro.calc.unparse import unparse
from repro.errors import GraphError
from repro.graph.taskgraph import TaskGraph

#: Suffix pattern for shard output variables: ``x`` of shard 3 -> ``x__p3``.
def shard_var(var: str, k: int) -> str:
    return f"{var}__p{k}"


@dataclasses.dataclass(frozen=True)
class SplitPlan:
    """What splitting one task would produce (from :func:`analyze_split`)."""

    task: str
    program: ast.Program
    prelude: tuple[ast.Stmt, ...]
    loop: ast.For
    parallel_outputs: tuple[str, ...]
    replicated_outputs: tuple[str, ...]


def split_problems(program_source: str) -> list[str]:
    """Why this routine cannot be split (empty list == splittable)."""
    diags = static_errors(program_source)
    if diags:
        return [f"routine has static errors: {diags[0]}"]
    program = parse(program_source)
    problems: list[str] = []

    foralls = [s for s in program.body if isinstance(s, ast.For) and s.parallel]
    nested = [
        s for s in ast.walk_stmts(program.body)
        if isinstance(s, ast.For) and s.parallel
    ]
    if not foralls:
        problems.append("routine has no top-level forall")
        return problems
    if len(foralls) > 1:
        problems.append("routine has more than one top-level forall")
    if len(nested) > len(foralls):
        problems.append("forall nested inside another statement is not splittable")
    loop = foralls[0]
    if program.body[-1] is not loop:
        problems.append("statements after the forall are not allowed")
    for s in program.body[:-1]:
        if s is not loop and not isinstance(s, ast.Assign):
            problems.append("prelude before the forall may only contain assignments")
            break

    # every array written by the forall must be zeros(...)-initialised in
    # the prelude, so shard merging by elementwise sum is exact
    written = {
        s.target.base
        for s in ast.walk_stmts(loop.body)
        if isinstance(s, ast.Assign) and isinstance(s.target, ast.Index)
    }
    zeroed = {
        s.target.ident
        for s in program.body[:-1]
        if isinstance(s, ast.Assign)
        and isinstance(s.target, ast.Name)
        and isinstance(s.value, ast.Call)
        and s.value.func == "zeros"
    }
    for name in sorted(written - zeroed):
        problems.append(
            f"array {name!r} is written by the forall but not created with "
            "zeros(...) in the prelude"
        )
    for name in sorted(written):
        if name in program.inputs:
            problems.append(f"forall writes input {name!r}")
    # element writes in the prelude to a forall-written array would be
    # replicated by every shard and then summed W times by the merge
    for s in program.body[:-1]:
        if (
            isinstance(s, ast.Assign)
            and isinstance(s.target, ast.Index)
            and s.target.base in written
        ):
            problems.append(
                f"prelude writes element(s) of {s.target.base!r}, which the "
                "forall also writes; move the boundary cases into the forall"
            )
    return problems


def analyze_split(task: str, program_source: str) -> SplitPlan:
    """Validate and describe the split of one routine."""
    problems = split_problems(program_source)
    if problems:
        raise GraphError(
            f"task {task!r} is not splittable: " + "; ".join(problems)
        )
    program = parse(program_source)
    loop = program.body[-1]
    assert isinstance(loop, ast.For) and loop.parallel
    written = {
        s.target.base
        for s in ast.walk_stmts(loop.body)
        if isinstance(s, ast.Assign) and isinstance(s.target, ast.Index)
    }
    parallel_outputs = tuple(o for o in program.outputs if o in written)
    replicated_outputs = tuple(o for o in program.outputs if o not in written)
    return SplitPlan(
        task=task,
        program=program,
        prelude=tuple(program.body[:-1]),
        loop=loop,
        parallel_outputs=parallel_outputs,
        replicated_outputs=replicated_outputs,
    )


# --------------------------------------------------------------------- #
# AST surgery
# --------------------------------------------------------------------- #
def _rename_expr(e: ast.Expr, renames: dict[str, str]) -> ast.Expr:
    if isinstance(e, ast.Name):
        return dataclasses.replace(e, ident=renames.get(e.ident, e.ident))
    if isinstance(e, ast.Index):
        return dataclasses.replace(
            e,
            base=renames.get(e.base, e.base),
            subscripts=tuple(_rename_expr(s, renames) for s in e.subscripts),
        )
    if isinstance(e, ast.Unary):
        return dataclasses.replace(e, operand=_rename_expr(e.operand, renames))
    if isinstance(e, ast.Binary):
        return dataclasses.replace(
            e,
            left=_rename_expr(e.left, renames),
            right=_rename_expr(e.right, renames),
        )
    if isinstance(e, ast.Call):
        return dataclasses.replace(
            e, args=tuple(_rename_expr(a, renames) for a in e.args)
        )
    if isinstance(e, ast.ArrayLit):
        return dataclasses.replace(
            e, elements=tuple(_rename_expr(x, renames) for x in e.elements)
        )
    return e


def _rename_stmt(s: ast.Stmt, renames: dict[str, str]) -> ast.Stmt:
    if isinstance(s, ast.Assign):
        return dataclasses.replace(
            s,
            target=_rename_expr(s.target, renames),
            value=_rename_expr(s.value, renames),
        )
    if isinstance(s, ast.If):
        return dataclasses.replace(
            s,
            cond=_rename_expr(s.cond, renames),
            then=tuple(_rename_stmt(x, renames) for x in s.then),
            elifs=tuple(
                (_rename_expr(c, renames), tuple(_rename_stmt(x, renames) for x in b))
                for c, b in s.elifs
            ),
            orelse=tuple(_rename_stmt(x, renames) for x in s.orelse),
        )
    if isinstance(s, ast.While):
        return dataclasses.replace(
            s,
            cond=_rename_expr(s.cond, renames),
            body=tuple(_rename_stmt(x, renames) for x in s.body),
        )
    if isinstance(s, ast.Repeat):
        return dataclasses.replace(
            s,
            cond=_rename_expr(s.cond, renames),
            body=tuple(_rename_stmt(x, renames) for x in s.body),
        )
    if isinstance(s, ast.For):
        return dataclasses.replace(
            s,
            start=_rename_expr(s.start, renames),
            stop=_rename_expr(s.stop, renames),
            step=None if s.step is None else _rename_expr(s.step, renames),
            body=tuple(_rename_stmt(x, renames) for x in s.body),
        )
    if isinstance(s, ast.CallStmt):
        return dataclasses.replace(s, call=_rename_expr(s.call, renames))
    return s


def _shard_program(plan: SplitPlan, k: int, ways: int) -> str:
    """Shard k's routine: prelude + bound computation + sliced loop."""
    program, loop = plan.program, plan.loop
    renames = {o: shard_var(o, k) for o in program.outputs}

    count = ast.Binary(
        op="+",
        left=ast.Binary(op="-", left=loop.stop, right=loop.start),
        right=ast.Num(value=1.0),
    )

    def bound(numerator_factor: float) -> ast.Expr:
        # start + floor(count * j / ways)
        return ast.Binary(
            op="+",
            left=loop.start,
            right=ast.Call(
                func="floor",
                args=(
                    ast.Binary(
                        op="/",
                        left=ast.Binary(
                            op="*", left=count, right=ast.Num(value=numerator_factor)
                        ),
                        right=ast.Num(value=float(ways)),
                    ),
                ),
            ),
        )

    lo_assign = ast.Assign(target=ast.Name(ident="lo__"), value=bound(float(k)))
    hi_assign = ast.Assign(
        target=ast.Name(ident="hi__"),
        value=ast.Binary(op="-", left=bound(float(k + 1)), right=ast.Num(value=1.0)),
    )
    sliced = ast.For(
        var=loop.var,
        start=ast.Name(ident="lo__"),
        stop=ast.Name(ident="hi__"),
        step=None,
        body=tuple(_rename_stmt(s, renames) for s in loop.body),
        parallel=False,
    )
    shard = ast.Program(
        name=f"{program.name or plan.task}_part{k}",
        inputs=program.inputs,
        outputs=tuple(shard_var(o, k) for o in program.outputs),
        locals=tuple(program.locals) + ("lo__", "hi__"),
        body=tuple(_rename_stmt(s, renames) for s in plan.prelude)
        + (lo_assign, hi_assign, sliced),
    )
    return unparse(shard)


def _merge_program(plan: SplitPlan, ways: int) -> str:
    """The merge routine: sum parallel outputs, copy replicated ones."""
    inputs: list[str] = []
    body: list[ast.Stmt] = []
    for out in plan.parallel_outputs:
        parts = [shard_var(out, k) for k in range(ways)]
        inputs.extend(parts)
        expr: ast.Expr = ast.Name(ident=parts[0])
        for part in parts[1:]:
            expr = ast.Binary(op="+", left=expr, right=ast.Name(ident=part))
        body.append(ast.Assign(target=ast.Name(ident=out), value=expr))
    for out in plan.replicated_outputs:
        inputs.append(shard_var(out, 0))
        body.append(
            ast.Assign(target=ast.Name(ident=out), value=ast.Name(ident=shard_var(out, 0)))
        )
    merge = ast.Program(
        name=f"{plan.program.name or plan.task}_merge",
        inputs=tuple(inputs),
        outputs=plan.program.outputs,
        locals=(),
        body=tuple(body),
    )
    return unparse(merge)


# --------------------------------------------------------------------- #
# the graph rewrite
# --------------------------------------------------------------------- #
def split_forall(tg: TaskGraph, task: str, ways: int) -> TaskGraph:
    """Return a copy of ``tg`` with ``task`` split ``ways`` ways.

    Raises :class:`GraphError` when the task's routine is not splittable
    (see :func:`split_problems` for the reasons).
    """
    if ways < 2:
        raise GraphError(f"ways must be >= 2, got {ways}")
    spec = tg.task(task)
    if spec.program is None:
        raise GraphError(f"task {task!r} has no PITS program to split")
    plan = analyze_split(task, spec.program)

    out = TaskGraph(tg.name)
    shard_names = [f"{task}#p{k}" for k in range(ways)]
    merge_name = f"{task}#merge"
    for name in shard_names + [merge_name]:
        if name in tg:
            raise GraphError(f"split would collide with existing task {name!r}")

    # copy untouched tasks
    for other in tg.tasks:
        if other.name != task:
            out.add_task(other.name, other.work, other.label, other.program,
                         **dict(other.meta))
    shard_work = max(spec.work / ways, 1e-9)
    for k, name in enumerate(shard_names):
        out.add_task(name, work=shard_work, label=f"{spec.label or task} [{k+1}/{ways}]",
                     program=_shard_program(plan, k, ways))
    merge_work = max(float(len(plan.parallel_outputs)) * ways, 1.0)
    out.add_task(merge_name, work=merge_work, label=f"merge {task}",
                 program=_merge_program(plan, ways))

    out_sizes = {e.var: e.size for e in tg.out_edges(task)}
    for var in tg.graph_outputs:
        if tg.graph_outputs[var] == task:
            out_sizes.setdefault(var, tg.output_sizes.get(var, 1.0))

    for e in tg.edges:
        if e.src != task and e.dst != task:
            out.add_edge(e.src, e.dst, e.var, e.size)
        elif e.dst == task:  # fan the input to every shard
            for name in shard_names:
                out.add_edge(e.src, name, e.var, e.size)
        else:  # e.src == task: the merge now feeds the consumers
            out.add_edge(merge_name, e.dst, e.var, e.size)

    # shard -> merge edges carry the (full-size, mostly-zero) shard outputs
    for outvar in plan.parallel_outputs:
        size = out_sizes.get(outvar, 1.0)
        for k, name in enumerate(shard_names):
            out.add_edge(name, merge_name, shard_var(outvar, k), size)
    for outvar in plan.replicated_outputs:
        size = out_sizes.get(outvar, 1.0)
        out.add_edge(shard_names[0], merge_name, shard_var(outvar, 0), size)

    # graph-level wiring
    out.graph_inputs = {
        var: [
            (c if c != task else c)  # placeholder replaced below
            for c in consumers
        ]
        for var, consumers in tg.graph_inputs.items()
    }
    for var, consumers in out.graph_inputs.items():
        if task in consumers:
            consumers.remove(task)
            consumers.extend(shard_names)
    out.graph_outputs = {
        var: (merge_name if producer == task else producer)
        for var, producer in tg.graph_outputs.items()
    }
    out.input_values = dict(tg.input_values)
    out.input_sizes = dict(tg.input_sizes)
    out.output_sizes = dict(tg.output_sizes)
    return out


def splittable_tasks(tg: TaskGraph) -> list[str]:
    """Tasks whose routines qualify for :func:`split_forall`."""
    found = []
    for spec in tg.tasks:
        if spec.program and not split_problems(spec.program):
            found.append(spec.name)
    return found


def split_all(tg: TaskGraph, ways: int) -> TaskGraph:
    """Split every splittable task ``ways`` ways."""
    out = tg
    for task in splittable_tasks(tg):
        out = split_forall(out, task, ways)
    return out
