"""JSON (de)serialization of dataflow designs and task graphs.

Designs survive a full round trip — hierarchy, port maps, PITS programs,
and initial storage values (numpy arrays included) — so projects can be
saved and reloaded like Banger documents.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

import numpy as np

from repro.errors import GraphError
from repro.graph.dataflow import DataflowGraph
from repro.graph.node import StorageNode
from repro.graph.taskgraph import TaskGraph

FORMAT_VERSION = 1


def _encode_value(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "__ndarray__" in value:
        return np.array(value["__ndarray__"], dtype=value.get("dtype", "float64"))
    return value


# --------------------------------------------------------------------- #
# canonical form + fingerprints (content addressing)
# --------------------------------------------------------------------- #
def _canonical_default(value: Any) -> Any:
    """JSON fallback for fingerprinting: encode numpy, repr the rest."""
    encoded = _encode_value(value)
    if encoded is value:
        return repr(value)
    return encoded


def canonical_json(doc: Any) -> str:
    """A deterministic JSON rendering of ``doc``: sorted mapping keys, no
    whitespace, stable float repr.  Two structurally equal documents always
    produce the same string, in any process, on any platform."""
    return json.dumps(
        doc, sort_keys=True, separators=(",", ":"), default=_canonical_default
    )


def fingerprint(doc: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_json` — the cache key material
    used by :class:`repro.sched.service.ScheduleService`."""
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


def taskgraph_fingerprint(tg: TaskGraph) -> str:
    """Stable content hash of a task graph.

    Any semantic mutation — task set, insertion order (which schedulers'
    tie-breaks observe), weights, programs, edges, sizes, graph-level
    bindings — changes the hash; serialization round trips preserve it.
    """
    return fingerprint(taskgraph_to_dict(tg))


def dataflow_fingerprint(graph: DataflowGraph) -> str:
    """Stable content hash of a hierarchical design document."""
    return fingerprint(dataflow_to_dict(graph))


# --------------------------------------------------------------------- #
# DataflowGraph
# --------------------------------------------------------------------- #
def dataflow_to_dict(graph: DataflowGraph) -> dict[str, Any]:
    """Pure-dict form of a (possibly hierarchical) design."""
    nodes = []
    for node in graph.nodes:
        if isinstance(node, StorageNode):
            nodes.append(
                {
                    "kind": "storage",
                    "name": node.name,
                    "data": node.data,
                    "size": node.size,
                    "initial": _encode_value(node.initial),
                    "meta": node.meta,
                }
            )
        else:
            entry: dict[str, Any] = {
                "kind": "composite" if node.is_composite else "task",
                "name": node.name,
                "label": node.label,
                "work": node.work,
                "program": node.program,
                "meta": node.meta,
            }
            if node.is_composite:
                entry["subgraph"] = dataflow_to_dict(graph.subgraph(node.name))
            nodes.append(entry)
    return {
        "format": FORMAT_VERSION,
        "type": "dataflow",
        "name": graph.name,
        "inputs": graph.inputs,
        "outputs": graph.outputs,
        "nodes": nodes,
        "arcs": [
            {"src": a.src, "dst": a.dst, "var": a.var, "size": a.size}
            for a in graph.arcs
        ],
    }


def dataflow_from_dict(data: dict[str, Any]) -> DataflowGraph:
    if data.get("type") != "dataflow":
        raise GraphError(f"not a dataflow document (type={data.get('type')!r})")
    g = DataflowGraph(
        data.get("name", "design"),
        inputs=data.get("inputs") or {},
        outputs=data.get("outputs") or {},
    )
    for entry in data.get("nodes", []):
        kind = entry.get("kind")
        if kind == "storage":
            g.add_storage(
                entry["name"],
                data=entry.get("data", ""),
                size=entry.get("size", 1.0),
                initial=_decode_value(entry.get("initial")),
                **(entry.get("meta") or {}),
            )
        elif kind == "task":
            g.add_task(
                entry["name"],
                label=entry.get("label", ""),
                work=entry.get("work", 1.0),
                program=entry.get("program"),
                **(entry.get("meta") or {}),
            )
        elif kind == "composite":
            sub = dataflow_from_dict(entry["subgraph"])
            g.add_composite(entry["name"], sub, label=entry.get("label", ""),
                            **(entry.get("meta") or {}))
        else:
            raise GraphError(f"unknown node kind {kind!r} in document")
    for arc in data.get("arcs", []):
        g.connect(arc["src"], arc["dst"], arc.get("var", ""), arc.get("size"))
    return g


def dataflow_to_json(graph: DataflowGraph, indent: int | None = 2) -> str:
    return json.dumps(dataflow_to_dict(graph), indent=indent)


def dataflow_from_json(text: str) -> DataflowGraph:
    return dataflow_from_dict(json.loads(text))


# --------------------------------------------------------------------- #
# TaskGraph
# --------------------------------------------------------------------- #
def taskgraph_to_dict(tg: TaskGraph) -> dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "type": "taskgraph",
        "name": tg.name,
        "tasks": [
            {
                "name": t.name,
                "work": t.work,
                "label": t.label,
                "program": t.program,
                "meta": t.meta,
            }
            for t in tg.tasks
        ],
        "edges": [
            {"src": e.src, "dst": e.dst, "var": e.var, "size": e.size}
            for e in tg.edges
        ],
        "graph_inputs": tg.graph_inputs,
        "graph_outputs": tg.graph_outputs,
        "input_values": {k: _encode_value(v) for k, v in tg.input_values.items()},
        "input_sizes": tg.input_sizes,
        "output_sizes": tg.output_sizes,
    }


def taskgraph_from_dict(data: dict[str, Any]) -> TaskGraph:
    if data.get("type") != "taskgraph":
        raise GraphError(f"not a taskgraph document (type={data.get('type')!r})")
    tg = TaskGraph(data.get("name", "taskgraph"))
    for entry in data.get("tasks", []):
        tg.add_task(
            entry["name"],
            work=entry.get("work", 1.0),
            label=entry.get("label", ""),
            program=entry.get("program"),
            **(entry.get("meta") or {}),
        )
    for e in data.get("edges", []):
        tg.add_edge(e["src"], e["dst"], e.get("var", ""), e.get("size", 1.0))
    tg.graph_inputs = {k: list(v) for k, v in (data.get("graph_inputs") or {}).items()}
    tg.graph_outputs = dict(data.get("graph_outputs") or {})
    tg.input_values = {k: _decode_value(v) for k, v in (data.get("input_values") or {}).items()}
    tg.input_sizes = dict(data.get("input_sizes") or {})
    tg.output_sizes = dict(data.get("output_sizes") or {})
    return tg


def taskgraph_to_json(tg: TaskGraph, indent: int | None = 2) -> str:
    return json.dumps(taskgraph_to_dict(tg), indent=indent)


def taskgraph_from_json(text: str) -> TaskGraph:
    return taskgraph_from_dict(json.loads(text))
