"""Classic DAG analyses used by the PPSE scheduling heuristics.

All functions operate on a :class:`~repro.graph.taskgraph.TaskGraph` and take
two optional cost callables so the same code serves both machine-independent
analysis (defaults: a task costs its ``work``, an edge costs its ``size``)
and machine-aware analysis (plug in the target machine's execution and mean
communication costs):

* ``exec_time(task_name) -> float``
* ``comm_cost(edge) -> float``

Terminology follows the scheduling literature the paper builds on:

* **t-level** (top level): longest path from any entry task to the task,
  excluding the task itself — its earliest possible start time on an
  unbounded machine.
* **b-level** (bottom level): longest path from the task to any exit task,
  including the task itself — the HLFET priority when ``comm_cost`` is zero
  (then it is called the *static level*).
* **critical path**: the heaviest entry→exit path; its length bounds any
  schedule's makespan from below.
"""

from __future__ import annotations

from typing import Callable

from repro.graph.taskgraph import TaskEdge, TaskGraph

ExecTime = Callable[[str], float]
CommCost = Callable[[TaskEdge], float]


def _default_exec(tg: TaskGraph) -> ExecTime:
    return tg.work


def _default_comm(edge: TaskEdge) -> float:
    return edge.size


def _zero_comm(edge: TaskEdge) -> float:
    return 0.0


def t_levels(
    tg: TaskGraph,
    exec_time: ExecTime | None = None,
    comm_cost: CommCost | None = None,
) -> dict[str, float]:
    """Earliest-start level of every task (longest incoming path)."""
    exec_time = exec_time or _default_exec(tg)
    comm_cost = comm_cost if comm_cost is not None else _default_comm
    tl: dict[str, float] = {}
    for t in tg.topological_order():
        tl[t] = max(
            (tl[e.src] + exec_time(e.src) + comm_cost(e) for e in tg.in_edges(t)),
            default=0.0,
        )
    return tl


def b_levels(
    tg: TaskGraph,
    exec_time: ExecTime | None = None,
    comm_cost: CommCost | None = None,
) -> dict[str, float]:
    """Bottom level of every task (longest outgoing path, task included)."""
    exec_time = exec_time or _default_exec(tg)
    comm_cost = comm_cost if comm_cost is not None else _default_comm
    bl: dict[str, float] = {}
    for t in reversed(tg.topological_order()):
        bl[t] = exec_time(t) + max(
            (comm_cost(e) + bl[e.dst] for e in tg.out_edges(t)),
            default=0.0,
        )
    return bl


def static_levels(tg: TaskGraph, exec_time: ExecTime | None = None) -> dict[str, float]:
    """b-levels with communication ignored — the classic HLFET priority."""
    return b_levels(tg, exec_time=exec_time, comm_cost=_zero_comm)


def critical_path(
    tg: TaskGraph,
    exec_time: ExecTime | None = None,
    comm_cost: CommCost | None = None,
) -> tuple[float, list[str]]:
    """Length and task sequence of the heaviest entry→exit path.

    Returns ``(0.0, [])`` for an empty graph.  Ties are broken
    deterministically by task insertion order.
    """
    if len(tg) == 0:
        return 0.0, []
    exec_time = exec_time or _default_exec(tg)
    comm_cost = comm_cost if comm_cost is not None else _default_comm
    bl = b_levels(tg, exec_time=exec_time, comm_cost=comm_cost)
    start = max(tg.entry_tasks(), key=lambda t: bl[t])
    path = [start]
    cur = start
    while tg.successors(cur):
        nxt = max(
            tg.out_edges(cur),
            key=lambda e: comm_cost(e) + bl[e.dst],
        )
        path.append(nxt.dst)
        cur = nxt.dst
    return bl[start], path


def critical_path_length(
    tg: TaskGraph,
    exec_time: ExecTime | None = None,
    comm_cost: CommCost | None = None,
) -> float:
    return critical_path(tg, exec_time, comm_cost)[0]


def precedence_levels(tg: TaskGraph) -> dict[str, int]:
    """Unweighted ASAP level (entry tasks are level 0)."""
    lvl: dict[str, int] = {}
    for t in tg.topological_order():
        lvl[t] = max((lvl[p] + 1 for p in tg.predecessors(t)), default=0)
    return lvl


def level_widths(tg: TaskGraph) -> dict[int, int]:
    """Number of tasks per precedence level (the graph's parallelism profile)."""
    widths: dict[int, int] = {}
    for level in precedence_levels(tg).values():
        widths[level] = widths.get(level, 0) + 1
    return widths


def max_width(tg: TaskGraph) -> int:
    """Maximum number of mutually independent same-level tasks."""
    widths = level_widths(tg)
    return max(widths.values(), default=0)


def average_parallelism(tg: TaskGraph, exec_time: ExecTime | None = None) -> float:
    """Total work divided by the zero-communication critical path.

    This is the classic upper bound on achievable speedup for the graph,
    independent of any machine.
    """
    exec_time = exec_time or _default_exec(tg)
    cp = critical_path_length(tg, exec_time=exec_time, comm_cost=_zero_comm)
    if cp == 0:
        return 0.0
    return sum(exec_time(t) for t in tg.task_names) / cp


def communication_to_computation_ratio(tg: TaskGraph) -> float:
    """Mean edge size over mean task work (CCR), 0 for edge-free graphs."""
    if not tg.edges or len(tg) == 0:
        return 0.0
    mean_comm = tg.total_comm() / len(tg.edges)
    mean_work = tg.total_work() / len(tg)
    if mean_work == 0:
        return float("inf")
    return mean_comm / mean_work


def asap_schedule_times(
    tg: TaskGraph,
    exec_time: ExecTime | None = None,
    comm_cost: CommCost | None = None,
) -> dict[str, tuple[float, float]]:
    """Unbounded-processor (start, finish) times — the PERT lower envelope."""
    exec_time = exec_time or _default_exec(tg)
    tl = t_levels(tg, exec_time=exec_time, comm_cost=comm_cost)
    return {t: (tl[t], tl[t] + exec_time(t)) for t in tg.task_names}
