"""Hierarchical expansion and flattening of PITL designs.

The paper's Figure 1 shows a two-level design: bold nodes of the top-level
graph expand into lower-level dataflow graphs.  Scheduling operates on the
fully expanded, storage-elided task DAG.  This module provides:

* :func:`expand` — replace every composite node by its subgraph, recursively,
  yielding a single-level :class:`~repro.graph.dataflow.DataflowGraph`;
* :func:`flatten` — expand and then elide storage nodes, yielding the
  :class:`~repro.graph.taskgraph.TaskGraph` scheduling IR;
* :func:`depth` — hierarchy depth of a design.

Expanded node names are namespaced ``composite.child`` so provenance stays
readable in Gantt charts.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graph.dataflow import DataflowGraph
from repro.graph.node import NodeKind, TaskNode
from repro.graph.taskgraph import TaskGraph

#: Separator between a composite node's name and its children's names.
SCOPE_SEP = "."


def depth(graph: DataflowGraph) -> int:
    """Hierarchy depth: 1 for a flat design, 2 for Figure 1, and so on."""
    best = 1
    for comp in graph.composites:
        best = max(best, 1 + depth(graph.subgraph(comp.name)))
    return best


def count_primitive_tasks(graph: DataflowGraph) -> int:
    """Number of primitive tasks after full expansion."""
    n = 0
    for node in graph.tasks:
        if node.is_composite:
            n += count_primitive_tasks(graph.subgraph(node.name))
        else:
            n += 1
    return n


def expand(graph: DataflowGraph) -> DataflowGraph:
    """Return a single-level copy of ``graph`` with composites inlined.

    For each composite node ``C`` with subgraph ``S``:

    * every node ``n`` of ``S`` is copied in as ``C.n``;
    * an incoming arc ``u -> C`` carrying variable ``v`` is rerouted to
      ``u -> C.S.inputs[v]``;
    * an outgoing arc ``C -> w`` carrying ``v`` is rerouted to
      ``C.S.outputs[v] -> w``.

    Raises :class:`GraphError` when an arc's variable has no matching port
    (run :meth:`DataflowGraph.validate` first for a full problem list).
    """
    # Expand one level at a time until no composites remain; this keeps the
    # arc-rerouting logic simple even for deeply nested designs.
    work = graph.copy()
    guard = 0
    while work.composites:
        guard += 1
        if guard > 64:
            raise GraphError(f"graph {graph.name!r}: hierarchy deeper than 64 levels")
        work = _expand_once(work)
    return work


def _expand_once(graph: DataflowGraph) -> DataflowGraph:
    """Inline the composites of the top level only (children may remain)."""
    import copy as _copy

    out = DataflowGraph(graph.name, inputs=graph.inputs, outputs=graph.outputs)

    # 1. copy every non-composite node unchanged
    for node in graph.nodes:
        if isinstance(node, TaskNode) and node.is_composite:
            continue
        out.add_node(_copy.deepcopy(node))

    # 2. splice in each composite's subgraph under a namespace
    for comp in graph.composites:
        sub = graph.subgraph(comp.name)
        prefix = comp.name + SCOPE_SEP
        for node in sub.nodes:
            clone = _copy.deepcopy(node)
            clone.name = prefix + node.name
            out.add_node(clone)
            if isinstance(node, TaskNode) and node.is_composite:
                # keep the nested subgraph attached, with internal names as-is
                out._subgraphs[clone.name] = sub.subgraph(node.name)
        for arc in sub.arcs:
            out.connect(prefix + arc.src, prefix + arc.dst, arc.var, arc.size)

    # 3. copy / reroute top-level arcs; an input port may fan out to
    # several internal nodes (Figure 1's A feeds every first-step task)
    comp_names = {c.name for c in graph.composites}
    for arc in graph.arcs:
        src, dst = arc.src, arc.dst
        if src in comp_names:
            sub = graph.subgraph(src)
            if arc.var not in sub.outputs:
                raise GraphError(
                    f"composite {src!r}: outgoing variable {arc.var!r} has no "
                    f"output port (ports: {sorted(sub.outputs)})"
                )
            src = src + SCOPE_SEP + sub.outputs[arc.var]
        dsts = [dst]
        if dst in comp_names:
            sub = graph.subgraph(dst)
            if arc.var not in sub.inputs:
                raise GraphError(
                    f"composite {dst!r}: incoming variable {arc.var!r} has no "
                    f"input port (ports: {sorted(sub.inputs)})"
                )
            target = sub.inputs[arc.var]
            targets = [target] if isinstance(target, str) else list(target)
            dsts = [dst + SCOPE_SEP + t for t in targets]
        for d in dsts:
            out.connect(src, d, arc.var, arc.size)
    return out


def flatten(graph: DataflowGraph, validate: bool = True) -> TaskGraph:
    """Expand ``graph`` and elide storage, producing the scheduling IR.

    Storage elision rules (``P`` = producer task, ``C`` = consumer task,
    ``S`` = storage node holding variable ``v``):

    * ``P -> S -> C``  becomes the edge ``P -> C`` carrying ``(v, S.size)``;
    * ``S -> C`` with no producer marks ``v`` as a **graph input** consumed
      by ``C`` (initial value taken from ``S.initial``);
    * ``P -> S`` with no consumer marks ``v`` as a **graph output** produced
      by ``P``;
    * direct ``P -> C`` arcs are kept as-is (control or data dependence).

    A storage with several writers is legal when every writer pair is
    ordered by a precedence path (otherwise rule DF110 flags the race and
    validation fails): the *last* writer in precedence order wins, and
    consumers read its value.  Earlier writes are superseded, matching
    sequential overwrite semantics.
    """
    if validate:
        graph.validate()
    flat = expand(graph)
    tg = TaskGraph(graph.name)

    topo_index: dict[str, int] = {}

    def last_writer(producers: list[str]) -> str:
        """The precedence-last of a storage's writers (last write wins)."""
        unique = sorted(set(producers))
        if len(unique) == 1:
            return unique[0]
        if not topo_index:
            try:
                order = flat.topological_order()
            except Exception:  # cyclic and unvalidated: any stable order
                order = flat.node_names
            topo_index.update((n, i) for i, n in enumerate(order))
        return max(unique, key=topo_index.__getitem__)

    for node in flat.tasks:
        tg.add_task(node.name, work=node.work, label=node.label, program=node.program, **node.meta)

    seen_edges: set[tuple[str, str, str]] = set()

    def add_edge(src: str, dst: str, var: str, size: float) -> None:
        key = (src, dst, var)
        if key in seen_edges:
            return
        seen_edges.add(key)
        tg.add_edge(src, dst, var=var, size=size)

    for node in flat.storages:
        producers = flat.predecessors(node.name)
        consumers = flat.successors(node.name)
        var = node.data
        if producers and consumers:
            producer = last_writer(producers)
            for consumer in consumers:
                add_edge(producer, consumer, var, node.size)
        elif consumers:  # graph input
            tg.graph_inputs.setdefault(var, [])
            for consumer in consumers:
                if consumer not in tg.graph_inputs[var]:
                    tg.graph_inputs[var].append(consumer)
            tg.input_sizes[var] = node.size
            if node.initial is not None:
                tg.input_values[var] = node.initial
        elif producers:  # graph output
            producer = last_writer(producers)
            tg.graph_outputs[var] = producer
            tg.output_sizes[var] = node.size
        # an isolated storage node is legal but contributes nothing

    for arc in flat.arcs:
        s, d = flat.node(arc.src), flat.node(arc.dst)
        if s.kind is not NodeKind.STORAGE and d.kind is not NodeKind.STORAGE:
            add_edge(arc.src, arc.dst, arc.var, arc.size)

    return tg
