"""Task-graph families and random-DAG generators for tests and benchmarks.

The families are the stock shapes of the static-scheduling literature the
paper's heuristics were evaluated on (chains, fork/join, trees, diamonds,
FFT butterflies, Gaussian elimination / LU update graphs) plus seeded random
layered DAGs.  Every generator is deterministic given its arguments.
"""

from __future__ import annotations

import math
import random

from repro.errors import GraphError
from repro.graph.dataflow import DataflowGraph
from repro.graph.taskgraph import TaskGraph


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise GraphError(msg)


def chain(n: int, work: float = 1.0, comm: float = 1.0) -> TaskGraph:
    """A linear pipeline ``t0 -> t1 -> ... -> t{n-1}`` (zero parallelism)."""
    _require(n >= 1, f"chain: n must be >= 1, got {n}")
    tg = TaskGraph(f"chain{n}")
    for i in range(n):
        tg.add_task(f"t{i}", work=work)
    for i in range(n - 1):
        tg.add_edge(f"t{i}", f"t{i+1}", var=f"v{i}", size=comm)
    return tg


def fork_join(width: int, work: float = 1.0, comm: float = 1.0) -> TaskGraph:
    """``fork`` fans out to ``width`` parallel workers joined by ``join``."""
    _require(width >= 1, f"fork_join: width must be >= 1, got {width}")
    tg = TaskGraph(f"forkjoin{width}")
    tg.add_task("fork", work=work)
    tg.add_task("join", work=work)
    for i in range(width):
        w = f"w{i}"
        tg.add_task(w, work=work)
        tg.add_edge("fork", w, var=f"in{i}", size=comm)
        tg.add_edge(w, "join", var=f"out{i}", size=comm)
    return tg


def diamond(levels: int, work: float = 1.0, comm: float = 1.0) -> TaskGraph:
    """A diamond lattice: widths 1, 2, ..., levels, ..., 2, 1.

    ``levels`` is the width at the waist; the graph has ``2*levels - 1``
    ranks and each node feeds its (up to two) neighbours in the next rank,
    like a wavefront computation over a triangular domain.
    """
    _require(levels >= 1, f"diamond: levels must be >= 1, got {levels}")
    tg = TaskGraph(f"diamond{levels}")
    ranks: list[list[str]] = []
    widths = list(range(1, levels + 1)) + list(range(levels - 1, 0, -1))
    for r, width in enumerate(widths):
        rank = [f"d{r}_{i}" for i in range(width)]
        for name in rank:
            tg.add_task(name, work=work)
        ranks.append(rank)
    for r in range(len(ranks) - 1):
        cur, nxt = ranks[r], ranks[r + 1]
        if len(nxt) > len(cur):  # expanding half
            for i, name in enumerate(cur):
                tg.add_edge(name, nxt[i], var=f"l{r}_{i}", size=comm)
                tg.add_edge(name, nxt[i + 1], var=f"r{r}_{i}", size=comm)
        else:  # contracting half
            for i, name in enumerate(nxt):
                tg.add_edge(cur[i], name, var=f"l{r}_{i}", size=comm)
                tg.add_edge(cur[i + 1], name, var=f"r{r}_{i}", size=comm)
    return tg


def out_tree(depth: int, fanout: int = 2, work: float = 1.0, comm: float = 1.0) -> TaskGraph:
    """A rooted divide tree: the root spawns ``fanout`` children per level."""
    _require(depth >= 1, f"out_tree: depth must be >= 1, got {depth}")
    _require(fanout >= 1, f"out_tree: fanout must be >= 1, got {fanout}")
    tg = TaskGraph(f"outtree{depth}x{fanout}")
    tg.add_task("n0", work=work)
    frontier = ["n0"]
    counter = 1
    for _ in range(depth - 1):
        nxt: list[str] = []
        for parent in frontier:
            for _ in range(fanout):
                child = f"n{counter}"
                counter += 1
                tg.add_task(child, work=work)
                tg.add_edge(parent, child, var=child, size=comm)
                nxt.append(child)
        frontier = nxt
    return tg


def in_tree(depth: int, fanin: int = 2, work: float = 1.0, comm: float = 1.0) -> TaskGraph:
    """A reduction tree (mirror of :func:`out_tree`): leaves combine to a root."""
    src = out_tree(depth, fanin, work=work, comm=comm)
    tg = TaskGraph(f"intree{depth}x{fanin}")
    for t in src.tasks:
        tg.add_task(t.name, work=t.work)
    for e in src.edges:
        tg.add_edge(e.dst, e.src, var=e.var, size=e.size)
    return tg


def butterfly(n_points: int, work: float = 1.0, comm: float = 1.0) -> TaskGraph:
    """The FFT butterfly DAG over ``n_points`` (a power of two) points.

    ``log2(n)`` ranks of ``n`` tasks; task ``(r+1, i)`` depends on ``(r, i)``
    and ``(r, i XOR 2^r)`` — the classic machine-stressing graph because
    every rank communicates across strides.
    """
    _require(n_points >= 2 and n_points & (n_points - 1) == 0,
             f"butterfly: n_points must be a power of two >= 2, got {n_points}")
    stages = int(math.log2(n_points))
    tg = TaskGraph(f"fft{n_points}")
    for r in range(stages + 1):
        for i in range(n_points):
            tg.add_task(f"f{r}_{i}", work=work)
    for r in range(stages):
        for i in range(n_points):
            partner = i ^ (1 << r)
            tg.add_edge(f"f{r}_{i}", f"f{r+1}_{i}", var=f"s{r}_{i}", size=comm)
            tg.add_edge(f"f{r}_{i}", f"f{r+1}_{partner}", var=f"x{r}_{i}", size=comm)
    return tg


def gaussian_elimination(n: int, work: float = 1.0, comm: float = 1.0) -> TaskGraph:
    """The column-oriented Gaussian-elimination task graph for an n×n system.

    Pivot task ``p{k}`` normalises column ``k`` and feeds the update tasks
    ``u{k}_{j}`` (j > k), each of which feeds the next pivot and the next
    update of its own column — the canonical "GE" graph of the scheduling
    literature (weights shrink with k, matching the real operation counts).
    """
    _require(n >= 2, f"gaussian_elimination: n must be >= 2, got {n}")
    tg = TaskGraph(f"gauss{n}")
    for k in range(n - 1):
        tg.add_task(f"p{k}", work=work * (n - k))
        for j in range(k + 1, n):
            tg.add_task(f"u{k}_{j}", work=work * (n - k))
    for k in range(n - 1):
        for j in range(k + 1, n):
            tg.add_edge(f"p{k}", f"u{k}_{j}", var=f"col{k}", size=comm * (n - k))
        if k + 1 < n - 1:
            tg.add_edge(f"u{k}_{k+1}", f"p{k+1}", var=f"piv{k+1}", size=comm * (n - k - 1))
            for j in range(k + 2, n):
                tg.add_edge(f"u{k}_{j}", f"u{k+1}_{j}", var=f"c{k+1}_{j}", size=comm * (n - k - 1))
    return tg


def lu_taskgraph(n: int, work: float = 1.0, comm: float = 1.0) -> TaskGraph:
    """Dense LU-decomposition (no pivoting) task graph for an n×n matrix.

    Per step ``k``: ``d{k}`` (compute multipliers of column k) feeds update
    tasks ``e{k}_{i}`` for each trailing row i, which feed step ``k+1``.
    This generalises the paper's Figure 1 design (n = 3) to any n.
    """
    _require(n >= 2, f"lu_taskgraph: n must be >= 2, got {n}")
    tg = TaskGraph(f"lu{n}")
    for k in range(n - 1):
        tg.add_task(f"d{k}", work=work * (n - k - 1))
        for i in range(k + 1, n):
            tg.add_task(f"e{k}_{i}", work=work * (n - k - 1))
    for k in range(n - 1):
        for i in range(k + 1, n):
            tg.add_edge(f"d{k}", f"e{k}_{i}", var=f"l{k}_{i}", size=comm)
        if k + 1 < n - 1:
            tg.add_edge(f"e{k}_{k+1}", f"d{k+1}", var=f"a{k+1}", size=comm * (n - k - 1))
            for i in range(k + 2, n):
                tg.add_edge(f"e{k}_{i}", f"e{k+1}_{i}", var=f"r{k+1}_{i}", size=comm * (n - k - 1))
    return tg


def map_reduce(width: int, work: float = 1.0, comm: float = 1.0) -> TaskGraph:
    """``width`` independent mappers reduced by a binary combining tree."""
    _require(width >= 1, f"map_reduce: width must be >= 1, got {width}")
    tg = TaskGraph(f"mapreduce{width}")
    frontier = []
    for i in range(width):
        name = f"map{i}"
        tg.add_task(name, work=work)
        frontier.append(name)
    level = 0
    while len(frontier) > 1:
        nxt = []
        for j in range(0, len(frontier) - 1, 2):
            red = f"red{level}_{j//2}"
            tg.add_task(red, work=work)
            tg.add_edge(frontier[j], red, var=f"a{level}_{j}", size=comm)
            tg.add_edge(frontier[j + 1], red, var=f"b{level}_{j}", size=comm)
            nxt.append(red)
        if len(frontier) % 2:
            nxt.append(frontier[-1])
        frontier = nxt
        level += 1
    return tg


def stencil(rows: int, cols: int, work: float = 1.0, comm: float = 1.0) -> TaskGraph:
    """A 2-D wavefront: task (i, j) depends on (i-1, j) and (i, j-1)."""
    _require(rows >= 1 and cols >= 1, "stencil: rows and cols must be >= 1")
    tg = TaskGraph(f"stencil{rows}x{cols}")
    for i in range(rows):
        for j in range(cols):
            tg.add_task(f"s{i}_{j}", work=work)
    for i in range(rows):
        for j in range(cols):
            if i + 1 < rows:
                tg.add_edge(f"s{i}_{j}", f"s{i+1}_{j}", var=f"v{i}_{j}", size=comm)
            if j + 1 < cols:
                tg.add_edge(f"s{i}_{j}", f"s{i}_{j+1}", var=f"h{i}_{j}", size=comm)
    return tg


def pipeline_stages(stages: int, width: int = 4, work: float = 1.0,
                    comm: float = 1.0) -> TaskGraph:
    """A software pipeline: ``stages`` ranks of ``width`` parallel workers.

    Worker ``(s, i)`` feeds its same-index successor ``(s+1, i)`` and its
    rotated neighbour ``(s+1, (i+1) mod width)`` — the shuffle keeps every
    stage's workers coupled, so a scheduler cannot trivially strip the
    pipeline into independent chains.
    """
    _require(stages >= 2, f"pipeline_stages: stages must be >= 2, got {stages}")
    _require(width >= 1, f"pipeline_stages: width must be >= 1, got {width}")
    tg = TaskGraph(f"pipeline{stages}x{width}")
    for s in range(stages):
        for i in range(width):
            tg.add_task(f"p{s}_{i}", work=work)
    for s in range(stages - 1):
        for i in range(width):
            tg.add_edge(f"p{s}_{i}", f"p{s+1}_{i}", var=f"f{s}_{i}", size=comm)
            if width > 1:
                tg.add_edge(f"p{s}_{i}", f"p{s+1}_{(i+1) % width}",
                            var=f"r{s}_{i}", size=comm)
    return tg


def wavefront(n: int, work: float = 1.0, comm: float = 1.0) -> TaskGraph:
    """A triangular wavefront: row ``i`` has ``i+1`` tasks and ``(i, j)``
    depends on ``(i-1, j-1)`` and ``(i-1, j)`` where they exist.

    This is the dependence structure of dynamic-programming kernels
    (Smith-Waterman anti-diagonals, triangular solves): parallelism grows
    linearly with depth instead of being fixed up front.
    """
    _require(n >= 1, f"wavefront: n must be >= 1, got {n}")
    tg = TaskGraph(f"wavefront{n}")
    for i in range(n):
        for j in range(i + 1):
            tg.add_task(f"w{i}_{j}", work=work)
    for i in range(1, n):
        for j in range(i + 1):
            if j < i:
                tg.add_edge(f"w{i-1}_{j}", f"w{i}_{j}", var=f"d{i}_{j}", size=comm)
            if j > 0:
                tg.add_edge(f"w{i-1}_{j-1}", f"w{i}_{j}", var=f"a{i}_{j}", size=comm)
    return tg


def ml_train_apply(features: int = 4, work: float = 1.0,
                   comm: float = 1.0) -> TaskGraph:
    """A ForML-style train/apply DAG: one ingest feeding twin branches.

    ``ingest`` splits into a train and an apply path; each path extracts
    ``features`` feature columns in parallel, the train path fits a model,
    the apply path scores against it, and ``evaluate`` joins both — the
    shape of a production ML topology expressed as one task graph.
    """
    _require(features >= 1, f"ml_train_apply: features must be >= 1, got {features}")
    tg = TaskGraph(f"mltrainapply{features}")
    tg.add_task("ingest", work=work * 2)
    tg.add_task("split_train", work=work)
    tg.add_task("split_apply", work=work)
    tg.add_edge("ingest", "split_train", var="raw_t", size=comm * 2)
    tg.add_edge("ingest", "split_apply", var="raw_a", size=comm * 2)
    tg.add_task("fit", work=work * 4)
    tg.add_task("predict", work=work * 2)
    for i in range(features):
        for branch, sink in (("train", "fit"), ("apply", "predict")):
            name = f"feat_{branch}{i}"
            tg.add_task(name, work=work)
            tg.add_edge(f"split_{branch}", name, var=f"c{branch[0]}{i}", size=comm)
            tg.add_edge(name, sink, var=f"x{branch[0]}{i}", size=comm)
    tg.add_edge("fit", "predict", var="model", size=comm * 4)
    tg.add_task("evaluate", work=work)
    tg.add_edge("predict", "evaluate", var="scores", size=comm)
    tg.add_edge("fit", "evaluate", var="metrics", size=comm)
    return tg


def bitonic_sort(n_keys: int, work: float = 1.0, comm: float = 1.0) -> TaskGraph:
    """The bitonic sorting network over ``n_keys`` (a power of two) keys.

    Each compare-exchange box becomes a task reading the latest producers
    of its two lanes; with ``log2(n) * (log2(n)+1) / 2`` rounds this is a
    denser, less regular communication pattern than the FFT butterfly.
    """
    _require(n_keys >= 2 and n_keys & (n_keys - 1) == 0,
             f"bitonic_sort: n_keys must be a power of two >= 2, got {n_keys}")
    tg = TaskGraph(f"bitonic{n_keys}")
    # last task to have written each lane; lanes start at virtual sources
    last: list[str | None] = [None] * n_keys
    for i in range(n_keys):
        src = f"in{i}"
        tg.add_task(src, work=work)
        last[i] = src
    round_no = 0
    size = 2
    while size <= n_keys:
        stride = size // 2
        while stride >= 1:
            for low in range(n_keys):
                high = low | stride
                if high == low or (low & stride):
                    continue
                box = f"c{round_no}_{low}"
                tg.add_task(box, work=work)
                for lane in (low, high):
                    tg.add_edge(last[lane], box, var=f"k{round_no}_{lane}",
                                size=comm)
                last[low] = last[high] = box
            round_no += 1
            stride //= 2
        size *= 2
    return tg


def cholesky(n_tiles: int, work: float = 1.0, comm: float = 1.0) -> TaskGraph:
    """The tiled Cholesky-factorization task graph over an ``n x n`` tile grid.

    Per step ``k``: ``potrf{k}`` factors the diagonal tile, feeding the
    panel solves ``trsm{k}_{i}`` (i > k), which feed the trailing updates
    ``syrk{k}_{i}_{j}`` (j <= i); updates chain into the next step's tasks
    on the same tile.  The standard irregular-density DAG of tiled dense
    linear algebra.
    """
    _require(n_tiles >= 2, f"cholesky: n_tiles must be >= 2, got {n_tiles}")
    tg = TaskGraph(f"cholesky{n_tiles}")
    # producer of the current value of tile (i, j), i >= j
    owner: dict[tuple[int, int], str] = {}
    for k in range(n_tiles):
        potrf = f"potrf{k}"
        tg.add_task(potrf, work=work * (n_tiles - k))
        if (k, k) in owner:
            tg.add_edge(owner[(k, k)], potrf, var=f"t{k}_{k}", size=comm)
        owner[(k, k)] = potrf
        for i in range(k + 1, n_tiles):
            trsm = f"trsm{k}_{i}"
            tg.add_task(trsm, work=work * (n_tiles - k))
            tg.add_edge(potrf, trsm, var=f"l{k}", size=comm)
            if (i, k) in owner:
                tg.add_edge(owner[(i, k)], trsm, var=f"t{i}_{k}", size=comm)
            owner[(i, k)] = trsm
        for i in range(k + 1, n_tiles):
            for j in range(k + 1, i + 1):
                syrk = f"syrk{k}_{i}_{j}"
                tg.add_task(syrk, work=work * (n_tiles - k))
                tg.add_edge(owner[(i, k)], syrk, var=f"p{k}_{i}", size=comm)
                if j != i:
                    tg.add_edge(owner[(j, k)], syrk, var=f"q{k}_{j}", size=comm)
                if (i, j) in owner:
                    tg.add_edge(owner[(i, j)], syrk, var=f"u{i}_{j}", size=comm)
                owner[(i, j)] = syrk
    return tg


def random_layered(
    n_tasks: int,
    n_layers: int,
    edge_prob: float = 0.4,
    seed: int = 0,
    work_range: tuple[float, float] = (1.0, 10.0),
    comm_range: tuple[float, float] = (1.0, 10.0),
) -> TaskGraph:
    """A seeded random layered DAG (edges only between consecutive layers...
    plus occasional skip edges), connected so no task is isolated.

    Parameters mirror the standard benchmark generators: task weights and
    edge sizes are drawn uniformly from the given ranges.
    """
    _require(n_tasks >= 1, f"random_layered: n_tasks must be >= 1, got {n_tasks}")
    _require(1 <= n_layers <= n_tasks, "random_layered: need 1 <= n_layers <= n_tasks")
    _require(0.0 <= edge_prob <= 1.0, "random_layered: edge_prob must be in [0, 1]")
    rng = random.Random(seed)
    tg = TaskGraph(f"rand{n_tasks}x{n_layers}s{seed}")

    # deal tasks into layers: every layer gets at least one task
    layers: list[list[str]] = [[] for _ in range(n_layers)]
    for i in range(n_tasks):
        layer = i if i < n_layers else rng.randrange(n_layers)
        name = f"r{i}"
        layers[layer].append(name)
        tg.add_task(name, work=rng.uniform(*work_range))

    for li in range(n_layers - 1):
        for src in layers[li]:
            for lj in range(li + 1, n_layers):
                prob = edge_prob if lj == li + 1 else edge_prob / 4
                for dst in layers[lj]:
                    if rng.random() < prob:
                        tg.add_edge(src, dst, var=f"{src}_{dst}",
                                    size=rng.uniform(*comm_range))
    # connect any isolated non-first-layer task to a random earlier task
    for li in range(1, n_layers):
        for dst in layers[li]:
            if not tg.predecessors(dst):
                src = rng.choice(layers[rng.randrange(li)])
                tg.add_edge(src, dst, var=f"fix_{dst}", size=rng.uniform(*comm_range))
    return tg


def random_hierarchical(
    depth: int = 2,
    seed: int = 0,
    fan: int = 3,
) -> DataflowGraph:
    """A seeded random *hierarchical* design for stressing expand/flatten.

    Each level is a small chain of nodes; a node may become a composite
    refined by a recursively generated subgraph (until ``depth`` runs out).
    All boundary arcs carry the single variable ``d``, and every subgraph
    exposes ``d`` as both its input port (first node) and output port (last
    node), so the design always validates and flattens at any nesting.
    """
    _require(depth >= 1, f"random_hierarchical: depth must be >= 1, got {depth}")
    rng = random.Random(seed)
    counter = [0]

    def build(level: int) -> DataflowGraph:
        counter[0] += 1
        g = DataflowGraph(f"lvl{level}_{counter[0]}")
        n = rng.randint(2, max(2, fan))
        names: list[str] = []
        for i in range(n):
            name = f"n{counter[0]}_{i}"
            if level > 1 and rng.random() < 0.5:
                g.add_composite(name, build(level - 1))
            else:
                g.add_task(name, work=rng.uniform(1, 5))
            names.append(name)
        for a, b in zip(names, names[1:]):
            g.connect(a, b, var="d", size=rng.uniform(1, 5))
        g.inputs = {"d": [names[0]]}
        g.outputs = {"d": names[-1]}
        return g

    top = build(depth)
    top.inputs = {}
    top.outputs = {}
    return top


def as_dataflow(tg: TaskGraph) -> DataflowGraph:
    """Lift a flat task graph back into a PITL drawing.

    Each task becomes an oval; each edge becomes a ``task -> storage ->
    task`` chain so the result renders like a Banger design.  Useful for
    visualising generated benchmark graphs.
    """
    g = DataflowGraph(tg.name)
    for spec in tg.tasks:
        g.add_task(spec.name, label=spec.label, work=spec.work, program=spec.program)
    for idx, e in enumerate(tg.edges):
        store = f"st{idx}_{e.var}" if e.var else f"st{idx}"
        g.add_storage(store, data=e.var or store, size=max(e.size, 1e-9))
        g.connect(e.src, store)
        g.connect(store, e.dst)
    return g


#: Name -> zero-config builder, for parameter-sweep benchmarks.
FAMILIES = {
    "chain": lambda: chain(16),
    "fork_join": lambda: fork_join(8),
    "diamond": lambda: diamond(5),
    "out_tree": lambda: out_tree(4),
    "in_tree": lambda: in_tree(4),
    "butterfly": lambda: butterfly(8),
    "gauss": lambda: gaussian_elimination(6),
    "lu": lambda: lu_taskgraph(6),
    "map_reduce": lambda: map_reduce(8),
    "stencil": lambda: stencil(4, 4),
    "random": lambda: random_layered(32, 6, seed=7),
    "pipeline": lambda: pipeline_stages(5, 4),
    "wavefront": lambda: wavefront(6),
    "ml_train_apply": lambda: ml_train_apply(4),
    "bitonic": lambda: bitonic_sort(8),
    "cholesky": lambda: cholesky(4),
}

#: The families added alongside the project store (corpus growth); tests
#: assert these appear both in the stored corpus and in fuzz cases.
NEW_FAMILIES = ("pipeline", "wavefront", "ml_train_apply", "bitonic", "cholesky")
