"""Node and arc types of the PITL hierarchical dataflow graph.

The paper's Figure 1 uses three visual elements, which map onto three node
kinds plus one arc type here:

* oval nodes — sequential **tasks** (:class:`TaskNode` with ``kind=TASK``);
* bold oval nodes — **composite** nodes that expand into a lower-level
  dataflow graph (``kind=COMPOSITE``);
* open rectangles — **storage** (:class:`StorageNode`), labelled with the
  data they contain;
* labelled arrows — **arcs** (:class:`Arc`), labelled with the variable that
  flows along them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.errors import GraphError

#: Default size (abstract data units) attributed to a variable flowing along
#: an arc when the designer does not give one.  One unit corresponds to one
#: scalar; the machine model's transmission speed converts units to time.
DEFAULT_ARC_SIZE = 1.0

#: Default computational weight (abstract operation count) of a task whose
#: PITS program has not been written or costed yet.
DEFAULT_WORK = 1.0


class NodeKind(enum.Enum):
    """Discriminates the three node shapes of a Banger PITL diagram."""

    TASK = "task"
    COMPOSITE = "composite"
    STORAGE = "storage"


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not name:
        raise GraphError(f"node name must be a non-empty string, got {name!r}")
    if any(ch.isspace() for ch in name):
        raise GraphError(f"node name may not contain whitespace: {name!r}")
    return name


@dataclass
class TaskNode:
    """A sequential task (oval) or a hierarchical decomposition (bold oval).

    Parameters
    ----------
    name:
        Unique identifier within its graph.  No whitespace.
    label:
        Free-text comment shown next to the oval (e.g. ``"fanl"``).
    work:
        Estimated operation count of the node's sequential routine; converted
        to execution time by the target machine's processor speed.  For nodes
        with a PITS program the calculator cost model can overwrite this.
    program:
        PITS source text of the node's sequential routine (``None`` until the
        designer writes it on the calculator panel).
    kind:
        ``TASK`` for primitive nodes, ``COMPOSITE`` for bold nodes that carry
        a subgraph.
    """

    name: str
    label: str = ""
    work: float = DEFAULT_WORK
    program: str | None = None
    kind: NodeKind = NodeKind.TASK
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check_name(self.name)
        if self.kind is NodeKind.STORAGE:
            raise GraphError(f"TaskNode {self.name!r} cannot have kind STORAGE")
        if self.work < 0:
            raise GraphError(f"task {self.name!r}: work must be >= 0, got {self.work}")

    @property
    def is_composite(self) -> bool:
        return self.kind is NodeKind.COMPOSITE

    def __hash__(self) -> int:  # nodes are identified by name within a graph
        return hash(self.name)


@dataclass
class StorageNode:
    """An open rectangle holding a named datum (e.g. the matrix ``A``).

    Storage nodes decouple producers from consumers in the drawing; when a
    hierarchical design is flattened to a task graph they are elided and the
    producer→storage→consumer chains become direct task→task edges.

    Parameters
    ----------
    name:
        Unique identifier within its graph.
    data:
        The variable name held (defaults to ``name``).
    size:
        Size of the datum in abstract units, used for communication costing.
    initial:
        Optional initial value (makes this an *input* of the program).
    """

    name: str
    data: str = ""
    size: float = DEFAULT_ARC_SIZE
    initial: Any = None
    meta: dict[str, Any] = field(default_factory=dict)

    kind: NodeKind = field(default=NodeKind.STORAGE, init=False)

    def __post_init__(self) -> None:
        _check_name(self.name)
        if not self.data:
            self.data = self.name
        if self.size <= 0:
            raise GraphError(f"storage {self.name!r}: size must be > 0, got {self.size}")

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass(frozen=True)
class Arc:
    """A directed, variable-labelled arc between two nodes.

    Arcs establish precedence (control or data dependence).  ``var`` names
    the datum flowing along the arc; ``size`` is its size in abstract units
    (defaults to the source storage node's size when flattening).
    """

    src: str
    dst: str
    var: str = ""
    size: float = DEFAULT_ARC_SIZE

    def __post_init__(self) -> None:
        _check_name(self.src)
        _check_name(self.dst)
        if self.src == self.dst:
            raise GraphError(f"self-loop arc on {self.src!r} is not allowed")
        if self.size < 0:
            raise GraphError(f"arc {self.src}->{self.dst}: size must be >= 0")

    def renamed(self, src: str | None = None, dst: str | None = None) -> "Arc":
        """Return a copy with endpoints replaced (used during flattening)."""
        return Arc(src or self.src, dst or self.dst, self.var, self.size)
