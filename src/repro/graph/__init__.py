"""PITL hierarchical dataflow graphs — the "programming-in-the-large" half.

Public surface:

* :class:`DataflowGraph` with :class:`TaskNode`, :class:`StorageNode`,
  :class:`Arc` — one level of a Banger drawing;
* :func:`expand` / :func:`flatten` / :func:`depth` — hierarchy handling;
* :class:`TaskGraph` — the flat, weighted scheduling IR;
* DAG analyses (:func:`b_levels`, :func:`critical_path`, ...);
* graph families and random generators (:mod:`repro.graph.generators`);
* JSON serialization (:mod:`repro.graph.serialize`).
"""

from repro.graph.analysis import (
    asap_schedule_times,
    average_parallelism,
    b_levels,
    communication_to_computation_ratio,
    critical_path,
    critical_path_length,
    level_widths,
    max_width,
    precedence_levels,
    static_levels,
    t_levels,
)
from repro.graph.dataflow import DataflowGraph
from repro.graph.hierarchy import SCOPE_SEP, count_primitive_tasks, depth, expand, flatten
from repro.graph.node import Arc, NodeKind, StorageNode, TaskNode
from repro.graph.taskgraph import TaskEdge, TaskGraph, TaskSpec
from repro.graph import generators, transform
from repro.graph.serialize import (
    dataflow_from_dict,
    dataflow_from_json,
    dataflow_to_dict,
    dataflow_to_json,
    taskgraph_from_dict,
    taskgraph_from_json,
    taskgraph_to_dict,
    taskgraph_to_json,
)

__all__ = [
    "Arc",
    "DataflowGraph",
    "NodeKind",
    "SCOPE_SEP",
    "StorageNode",
    "TaskEdge",
    "TaskGraph",
    "TaskNode",
    "TaskSpec",
    "asap_schedule_times",
    "average_parallelism",
    "b_levels",
    "communication_to_computation_ratio",
    "count_primitive_tasks",
    "critical_path",
    "critical_path_length",
    "dataflow_from_dict",
    "dataflow_from_json",
    "dataflow_to_dict",
    "dataflow_to_json",
    "depth",
    "expand",
    "flatten",
    "generators",
    "level_widths",
    "max_width",
    "precedence_levels",
    "static_levels",
    "t_levels",
    "taskgraph_from_dict",
    "taskgraph_from_json",
    "taskgraph_to_dict",
    "taskgraph_to_json",
    "transform",
]
