"""The scheduling intermediate representation: a flat, weighted task DAG.

Flattening a hierarchical PITL design (see :mod:`repro.graph.hierarchy`)
produces a :class:`TaskGraph`: only primitive tasks remain, storage nodes are
elided, and each edge carries the variable name and size of the datum that
must be communicated if its endpoints land on different processors.

This is the structure every scheduler in :mod:`repro.sched` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import CycleError, GraphError
from repro.graph.node import DEFAULT_WORK


@dataclass(frozen=True)
class TaskEdge:
    """A precedence+communication edge of the flat task DAG."""

    src: str
    dst: str
    var: str = ""
    size: float = 1.0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise GraphError(f"self-loop edge on {self.src!r}")
        if self.size < 0:
            raise GraphError(f"edge {self.src}->{self.dst}: negative size")


@dataclass
class TaskSpec:
    """A schedulable task: its weight, optional PITS program, and bindings.

    ``inputs`` / ``outputs`` record, per variable, where the datum comes from
    or goes to: another task, a graph input, or a graph output.  They are
    filled in by flattening and used by the executor and code generators.
    """

    name: str
    work: float = DEFAULT_WORK
    label: str = ""
    program: str | None = None
    meta: dict[str, Any] = field(default_factory=dict)


class TaskGraph:
    """A weighted DAG of primitive tasks (the input to scheduling).

    Parameters
    ----------
    name:
        Graph name, carried over from the design.
    """

    def __init__(self, name: str = "taskgraph"):
        self.name = name
        self._tasks: dict[str, TaskSpec] = {}
        self._edges: list[TaskEdge] = []
        self._succ: dict[str, list[TaskEdge]] = {}
        self._pred: dict[str, list[TaskEdge]] = {}
        #: graph-level inputs: variable -> (consumer task names)
        self.graph_inputs: dict[str, list[str]] = {}
        #: graph-level outputs: variable -> producer task name
        self.graph_outputs: dict[str, str] = {}
        #: initial values for graph inputs (from storage nodes), if any
        self.input_values: dict[str, Any] = {}
        #: sizes (abstract units) of graph-level inputs and outputs
        self.input_sizes: dict[str, float] = {}
        self.output_sizes: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_task(
        self,
        name: str,
        work: float = DEFAULT_WORK,
        label: str = "",
        program: str | None = None,
        **meta: Any,
    ) -> TaskSpec:
        if name in self._tasks:
            raise GraphError(f"duplicate task {name!r} in task graph {self.name!r}")
        if work < 0:
            raise GraphError(f"task {name!r}: work must be >= 0")
        spec = TaskSpec(name, work=work, label=label, program=program, meta=meta)
        self._tasks[name] = spec
        self._succ[name] = []
        self._pred[name] = []
        return spec

    def add_edge(self, src: str, dst: str, var: str = "", size: float = 1.0) -> TaskEdge:
        for endpoint in (src, dst):
            if endpoint not in self._tasks:
                raise GraphError(f"unknown task {endpoint!r} in task graph {self.name!r}")
        edge = TaskEdge(src, dst, var=var, size=size)
        if any(e.src == src and e.dst == dst and e.var == var for e in self._edges):
            raise GraphError(f"duplicate edge {src}->{dst} ({var!r})")
        self._edges.append(edge)
        self._succ[src].append(edge)
        self._pred[dst].append(edge)
        return edge

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[str]:
        return iter(self._tasks)

    def task(self, name: str) -> TaskSpec:
        try:
            return self._tasks[name]
        except KeyError:
            raise GraphError(f"unknown task {name!r} in task graph {self.name!r}") from None

    @property
    def task_names(self) -> list[str]:
        return list(self._tasks)

    @property
    def tasks(self) -> list[TaskSpec]:
        return list(self._tasks.values())

    @property
    def edges(self) -> list[TaskEdge]:
        return list(self._edges)

    def work(self, name: str) -> float:
        return self.task(name).work

    def set_work(self, name: str, work: float) -> None:
        if work < 0:
            raise GraphError(f"task {name!r}: work must be >= 0")
        self.task(name).work = work

    def successors(self, name: str) -> list[str]:
        self.task(name)
        return [e.dst for e in self._succ[name]]

    def predecessors(self, name: str) -> list[str]:
        self.task(name)
        return [e.src for e in self._pred[name]]

    def out_edges(self, name: str) -> list[TaskEdge]:
        self.task(name)
        return list(self._succ[name])

    def in_edges(self, name: str) -> list[TaskEdge]:
        self.task(name)
        return list(self._pred[name])

    def edge(self, src: str, dst: str) -> TaskEdge:
        """The (first) edge ``src -> dst``; raises if absent."""
        for e in self._succ.get(src, ()):
            if e.dst == dst:
                return e
        raise GraphError(f"no edge {src}->{dst} in task graph {self.name!r}")

    def edges_between(self, src: str, dst: str) -> list[TaskEdge]:
        return [e for e in self._succ.get(src, ()) if e.dst == dst]

    def comm_size(self, src: str, dst: str) -> float:
        """Total data units flowing ``src -> dst`` (sum over variables)."""
        return sum(e.size for e in self.edges_between(src, dst))

    def entry_tasks(self) -> list[str]:
        return [t for t in self._tasks if not self._pred[t]]

    def exit_tasks(self) -> list[str]:
        return [t for t in self._tasks if not self._succ[t]]

    def total_work(self) -> float:
        """Sum of all task weights = serial execution operation count."""
        return sum(t.work for t in self._tasks.values())

    def total_comm(self) -> float:
        """Sum of all edge sizes (upper bound on data moved)."""
        return sum(e.size for e in self._edges)

    # ------------------------------------------------------------------ #
    # algorithms
    # ------------------------------------------------------------------ #
    def topological_order(self) -> list[str]:
        """Deterministic Kahn sort; raises :class:`CycleError` on cycles."""
        indeg = {t: len(self._pred[t]) for t in self._tasks}
        ready = [t for t in self._tasks if indeg[t] == 0]
        order: list[str] = []
        while ready:
            t = ready.pop(0)
            order.append(t)
            for e in self._succ[t]:
                indeg[e.dst] -= 1
                if indeg[e.dst] == 0:
                    ready.append(e.dst)
        if len(order) != len(self._tasks):
            raise CycleError(f"task graph {self.name!r} contains a cycle")
        return order

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
            return True
        except CycleError:
            return False

    def transitive_closure(self) -> dict[str, set[str]]:
        """``reach[u]`` = set of tasks reachable from ``u`` (u excluded)."""
        order = self.topological_order()
        reach: dict[str, set[str]] = {t: set() for t in self._tasks}
        for t in reversed(order):
            for e in self._succ[t]:
                reach[t].add(e.dst)
                reach[t] |= reach[e.dst]
        return reach

    def independent(self, a: str, b: str) -> bool:
        """True when no precedence path connects ``a`` and ``b``."""
        reach = self.transitive_closure()
        return b not in reach[a] and a not in reach[b]

    def content_hash(self) -> str:
        """Stable content-addressed fingerprint of this graph.

        Equal graphs (same tasks in the same insertion order, same weights,
        programs, edges, and graph-level bindings) hash identically across
        process restarts; any semantic mutation yields a new hash.  This is
        the graph half of the scheduling cache key used by
        :class:`repro.sched.service.ScheduleService`.
        """
        from repro.graph.serialize import taskgraph_fingerprint

        return taskgraph_fingerprint(self)

    def copy(self) -> "TaskGraph":
        import copy as _copy

        g = TaskGraph(self.name)
        for spec in self._tasks.values():
            g.add_task(spec.name, spec.work, spec.label, spec.program, **_copy.deepcopy(spec.meta))
        for e in self._edges:
            g.add_edge(e.src, e.dst, e.var, e.size)
        g.graph_inputs = {k: list(v) for k, v in self.graph_inputs.items()}
        g.graph_outputs = dict(self.graph_outputs)
        g.input_values = dict(self.input_values)
        g.input_sizes = dict(self.input_sizes)
        g.output_sizes = dict(self.output_sizes)
        return g

    def __repr__(self) -> str:
        return f"TaskGraph({self.name!r}, tasks={len(self._tasks)}, edges={len(self._edges)})"
