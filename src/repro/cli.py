"""Command-line interface: drive a saved Banger project from the shell.

Projects are the JSON documents written by
:meth:`repro.env.project.BangerProject.save`.  Usage::

    python -m repro.cli feedback  project.json
    python -m repro.cli lint      project.json --format sarif
    python -m repro.cli outline   project.json
    python -m repro.cli schedule  project.json --scheduler mh --gantt
    python -m repro.cli edit      project.json --move t3 2 --swap a b
    python -m repro.cli speedup   project.json --procs 1,2,4,8
    python -m repro.cli sweep     project.json --scheduler mh,hlfet --jobs 4 --stats
    python -m repro.cli simulate  project.json --contention
    python -m repro.cli run       project.json [--parallel]
    python -m repro.cli codegen   project.json --target threads -o prog.py
    python -m repro.cli codegen   project.json --target inproc --run
    python -m repro.cli topology  --family hypercube --procs 8
    python -m repro.cli projects  put alice/mydesign project.json
    python -m repro.cli projects  log alice/mydesign
    python -m repro.cli demo

Wherever a command takes a project file, a store reference works too:
``corpus://<name>[@v]`` draws from the built-in scenario corpus and
``store://<tenant>/<name>[@v]`` from the local project store
(``--store``/``BANGER_STORE_DIR``, default ``.banger-store``) — so
``banger sweep corpus://family_butterfly`` needs no JSON file at all.

Exit codes are uniform across every subcommand:

* ``0`` — success;
* ``1`` — the command ran but found problems (lint errors, failed
  feedback, conformance failures, a scheduling error);
* ``2`` — usage or missing input (bad flag values, nonexistent or
  non-project files, malformed JSON).

Every failure prints a single actionable message — the command-line
flavour of instant feedback.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

from repro import __version__
from repro.env.project import BangerProject
from repro.errors import ReproError, ValidationError
from repro.machine.topologies import build_topology
from repro.sched import SCHEDULERS, report
from repro.sched.metrics import ScheduleReport
from repro.sim import simulate
from repro.viz import render_gantt, render_trace_gantt, render_topology
from repro.viz.export import schedule_to_chrome_trace, schedule_to_csv


#: Uniform exit codes (see the module docstring).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2


class UsageError(ReproError):
    """Bad flag values or unusable input files — exits with status 2."""


def _store_root(explicit: str | None = None) -> str:
    """The local store directory: ``--store``, else the environment, else
    ``.banger-store`` in the working directory."""
    return explicit or os.environ.get("BANGER_STORE_DIR") or ".banger-store"


def _parse_ref(text: str) -> tuple[str, str, int | None]:
    """``tenant/name[@version]`` -> its parts."""
    version: int | None = None
    if "@" in text:
        text, _, vtext = text.rpartition("@")
        try:
            version = int(vtext)
        except ValueError:
            raise UsageError(
                f"bad version {vtext!r} in project ref; expected an integer"
            ) from None
    if "/" not in text:
        raise UsageError(
            f"bad project ref {text!r}; expected tenant/name[@version]"
        )
    tenant, name = text.split("/", 1)
    return tenant, name, version


def _resolve_store_uri(path: str) -> dict | None:
    """A project document for ``corpus://`` / ``store://`` URIs, else None."""
    from repro.errors import StoreError

    if path.startswith("corpus://"):
        from repro.store.corpus import CORPUS_TENANT, default_corpus

        ref = path[len("corpus://"):]
        name, version = ref, None
        if "@" in ref:
            _, name, version = _parse_ref(f"{CORPUS_TENANT}/{ref}")
        try:
            return default_corpus().get(CORPUS_TENANT, name, version)
        except StoreError as exc:
            raise UsageError(str(exc)) from None
    if path.startswith("store://"):
        from repro.store import ProjectRepository

        tenant, name, version = _parse_ref(path[len("store://"):])
        try:
            return ProjectRepository(_store_root()).get(tenant, name, version)
        except StoreError as exc:
            raise UsageError(str(exc)) from None
    return None


def _load(path: str) -> BangerProject:
    try:
        doc = _resolve_store_uri(path)
        if doc is not None:
            return BangerProject.from_dict(doc)
        return BangerProject.load(path)
    except ValidationError as exc:
        raise UsageError(f"not a Banger project file: {exc}") from None


def _parse_procs(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(p) for p in text.split(","))
    except ValueError:
        raise UsageError(f"bad processor list {text!r}; expected e.g. 1,2,4,8") from None


# --------------------------------------------------------------------- #
# subcommands
# --------------------------------------------------------------------- #
def cmd_feedback(args: argparse.Namespace) -> int:
    project = _load(args.project)
    fb = project.feedback()
    print(fb.render())
    return 0 if fb.ok else 1


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import lint_project, render_json, render_sarif, render_text

    project = _load(args.project)
    suppress = [r.strip() for r in (args.suppress or "").split(",") if r.strip()]
    report = lint_project(
        project,
        suppress=suppress,
        concurrency=getattr(args, "concurrency", False),
        scheduler=getattr(args, "scheduler", "mh"),
    )
    if getattr(args, "baseline", None):
        from repro.lint import apply_baseline, load_baseline

        report = apply_baseline(report, load_baseline(args.baseline))
    if args.format == "json":
        print(render_json(report))
    elif args.format == "sarif":
        print(render_sarif(report, artifact=args.project))
    else:
        print(render_text(report))
    failed = report.error_count > 0 or (
        args.fail_on == "warning" and report.warning_count > 0
    )
    return 1 if failed else 0


def cmd_outline(args: argparse.Namespace) -> int:
    print(_load(args.project).outline())
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    from repro.env.advisor import render_advice

    project = _load(args.project)
    print(render_advice(project.advise()))
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    project = _load(args.project)
    schedule = project.schedule(args.scheduler)
    print(ScheduleReport.header())
    print(report(schedule).as_row())
    if args.gantt:
        print()
        print(render_gantt(schedule, show_messages=args.messages,
                           highlight_critical=True))
    if args.why:
        from repro.sched import render_explanations

        print()
        print(render_explanations(schedule))
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write(schedule_to_csv(schedule))
        print(f"\nwrote {args.csv}")
    if args.chrome_trace:
        with open(args.chrome_trace, "w", encoding="utf-8") as fh:
            fh.write(schedule_to_chrome_trace(schedule))
        print(f"wrote {args.chrome_trace} (open in chrome://tracing)")
    return 0


def cmd_edit(args: argparse.Namespace) -> int:
    from repro.sched import move_task, swap_tasks

    project = _load(args.project)
    moves = args.move or []
    swaps = args.swap or []
    if not moves and not swaps:
        raise UsageError("nothing to edit; pass --move TASK PROC and/or --swap A B")
    schedule = project.schedule(args.scheduler)
    makespan_before = schedule.makespan()
    edits: list[dict] = []
    lines: list[str] = []
    for task, proc_text in moves:
        try:
            proc = int(proc_text)
        except ValueError:
            raise UsageError(
                f"--move needs an integer processor, got {proc_text!r}"
            ) from None
        result = move_task(schedule, task, proc)
        schedule = result.schedule
        lines.append(f"move {task} -> P{proc}: {result.render()}")
        edits.append({
            "kind": "move", "task": task, "proc": proc,
            "makespan_before": result.makespan_before,
            "makespan_after": result.makespan_after,
            "delta": result.delta,
        })
    for a, b in swaps:
        result = swap_tasks(schedule, a, b)
        schedule = result.schedule
        lines.append(f"swap {a} <-> {b}: {result.render()}")
        edits.append({
            "kind": "swap", "tasks": [a, b],
            "makespan_before": result.makespan_before,
            "makespan_after": result.makespan_after,
            "delta": result.delta,
        })
    makespan_after = schedule.makespan()
    if args.json:
        print(json.dumps({
            "type": "banger-edit",
            "project": project.name,
            "scheduler": args.scheduler,
            "makespan_before": makespan_before,
            "makespan_after": makespan_after,
            "delta": makespan_after - makespan_before,
            "edits": edits,
        }, indent=2))
    else:
        for line in lines:
            print(line)
        delta = makespan_after - makespan_before
        verdict = ("worse" if delta > 1e-9
                   else ("better" if delta < -1e-9 else "same"))
        print(f"total: makespan {makespan_before:.3f} -> {makespan_after:.3f} "
              f"({verdict}, {delta:+.3f})")
        if args.gantt:
            print()
            print(render_gantt(schedule, highlight_critical=True))
    return 0


def cmd_speedup(args: argparse.Namespace) -> int:
    project = _load(args.project)
    report_ = project.speedup(_parse_procs(args.procs), scheduler=args.scheduler,
                              family=args.family)
    from repro.viz import render_speedup_chart

    print(render_speedup_chart(report_))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sched import ScheduleRequest

    project = _load(args.project)
    procs = _parse_procs(args.procs)
    schedulers = [s.strip() for s in args.scheduler.split(",") if s.strip()]
    if not schedulers:
        raise UsageError("no scheduler given; expected e.g. --scheduler mh,hlfet")
    if args.jobs is not None and args.jobs < 1:
        raise UsageError(f"--jobs must be >= 1, got {args.jobs}")
    reports = {}
    for name in schedulers:
        request = ScheduleRequest(
            scheduler=name,
            proc_counts=procs,
            family=args.family,
            jobs=args.jobs,
            use_cache=not args.no_cache,
        )
        reports[name] = project.speedup(request)
        print(reports[name].table())
        if args.gantt:
            print()
            print(project.gantt_series(request))
        print()
    stats = project.service.stats()
    if args.stats:
        print(stats.render())
    if args.json:
        doc = {
            "type": "banger-sweep",
            "project": project.name,
            "proc_counts": list(procs),
            "schedulers": {
                name: {
                    "family": rep.family,
                    "serial_time": rep.serial_time,
                    "max_parallelism": rep.max_parallelism,
                    "points": [
                        {
                            "n_procs": p.n_procs,
                            "makespan": p.makespan,
                            "speedup": p.speedup,
                            "efficiency": p.efficiency,
                        }
                        for p in rep.points
                    ],
                }
                for name, rep in reports.items()
            },
            "stats": stats.as_dict(),
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    project = _load(args.project)
    schedule = project.schedule(args.scheduler)
    scenario = None
    if args.scenario:
        from repro.machine.scenario import FaultScenario

        with open(args.scenario, encoding="utf-8") as fh:
            scenario = FaultScenario.from_dict(json.load(fh))
    if scenario is None:
        trace = simulate(schedule, contention=args.contention)
        print(render_trace_gantt(trace))
        print()
        print(f"static makespan    {schedule.makespan():.3f}")
        print(f"simulated makespan {trace.makespan():.3f}"
              + (" (with link contention)" if args.contention else ""))
        return 0

    label = scenario.name or "scenario"
    if args.reactive:
        from repro.sched.reactive import reactive_execute

        result = reactive_execute(
            schedule, scenario,
            threshold=args.threshold, contention=args.contention,
        )
        trace = result.trace
        passive = result.traces[0]
        print(render_trace_gantt(trace))
        print()
        print(f"static makespan    {schedule.makespan():.3f}")
        print(f"passive makespan   {passive.makespan():.3f} under {label!r} "
              f"({len(passive.stranded)} stranded)")
        print(f"reactive makespan  {trace.makespan():.3f} "
              f"({result.n_rounds} round(s), {result.total_remaps} task(s) "
              f"re-mapped, {len(trace.stranded)} stranded)")
    else:
        from repro.sim.dynamic import simulate_dynamic

        trace = simulate_dynamic(schedule, scenario, contention=args.contention)
        print(render_trace_gantt(trace))
        print()
        print(f"static makespan    {schedule.makespan():.3f}")
        print(f"dynamic makespan   {trace.makespan():.3f} under {label!r}")
    if trace.killed:
        print(f"killed tasks       {', '.join(sorted(trace.killed))}")
    if trace.lost:
        print(f"lost messages      {len(trace.lost)}")
    if trace.stranded:
        print(f"stranded tasks     {', '.join(sorted(trace.stranded))}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    project = _load(args.project)
    if args.parallel:
        result = project.run_parallel(scheduler=args.scheduler)
        print(f"ran on processors {result.procs_used} "
              f"with {result.messages_sent} message(s)")
        outputs = result.outputs
    else:
        seq = project.run()
        for line in seq.displayed():
            print(line)
        outputs = seq.outputs
    for name in sorted(outputs):
        print(f"{name} = {outputs[name]}")
    return 0


#: legacy ``--language`` names -> backend targets
_LEGACY_LANGUAGES = {"python": "threads", "mpi": "mpi", "c": "c"}


def cmd_codegen(args: argparse.Namespace) -> int:
    from repro.codegen.api import generate as generate_source, run as run_target

    if args.list:
        from repro.codegen import list_backends

        for entry in list_backends():
            abilities = []
            if entry["emits_source"]:
                abilities.append("emit")
            if entry["runnable"]:
                abilities.append("run")
            print(f"{entry['name']:<8} [{','.join(abilities)}] {entry['description']}")
        return 0
    if not args.project:
        raise UsageError("codegen needs a project file (or --list)")
    project = _load(args.project)
    if args.target and args.language:
        raise UsageError("pass --target or --language, not both")
    target = args.target or _LEGACY_LANGUAGES.get(args.language or "", "threads")
    if args.run:
        outputs = run_target(project, target=target, scheduler=args.scheduler)
        for name in sorted(outputs):
            print(f"{name} = {outputs[name]}")
        return 0
    source = generate_source(project, target=target, scheduler=args.scheduler)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(source)
        print(f"wrote {args.output} ({len(source.splitlines())} lines)")
    else:
        print(source)
    return 0


def cmd_conform(args: argparse.Namespace) -> int:
    from repro.conformance import corpus_paths, load_entry, replay_entry, run

    oracles = [o.strip() for o in (args.oracle or "").split(",") if o.strip()]

    if args.replay:
        if not pathlib.Path(args.replay).is_dir():
            print(f"error: no such corpus directory: {args.replay}", file=sys.stderr)
            return 2
        failures: list[str] = []
        paths = corpus_paths(args.replay)
        for path in paths:
            for oracle, problem in replay_entry(load_entry(path)):
                failures.append(f"{path.name}: [{oracle}] {problem}")
        if args.format == "json":
            print(json.dumps({
                "type": "banger-conform-replay",
                "corpus": str(args.replay),
                "cases": len(paths),
                "ok": not failures,
                "failures": failures,
            }, indent=2))
        else:
            print(f"replayed {len(paths)} corpus case(s) from {args.replay}")
            for line in failures:
                print(f"FAIL {line}")
            print("ok" if not failures else f"FAILED ({len(failures)} problem(s))")
        return 1 if failures else 0

    report = run(
        seed=args.seed,
        runs=args.runs,
        oracles=oracles or None,
        corpus_dir=args.corpus,
        time_budget=args.budget,
    )
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server import BangerDaemon, run_daemon

    if args.workers is not None and args.workers < 0:
        raise UsageError(f"--workers must be >= 0, got {args.workers}")
    if args.queue_limit < 1:
        raise UsageError(f"--queue-limit must be >= 1, got {args.queue_limit}")
    if args.timeout <= 0:
        raise UsageError(f"--timeout must be > 0, got {args.timeout}")

    access_log = None
    if not args.no_access_log:
        if args.access_log:
            log_fh = open(args.access_log, "a", encoding="utf-8")

            def access_log(record):  # noqa: F811 - the chosen sink
                print(json.dumps(record, sort_keys=True), file=log_fh, flush=True)
        else:
            from repro.server.app import _default_access_log as access_log

    quota = None
    if args.quota_projects or args.quota_versions or args.quota_bytes:
        from repro.store import TenantQuota

        quota = TenantQuota(
            max_projects=args.quota_projects,
            max_versions_per_project=args.quota_versions,
            max_bytes=args.quota_bytes,
        )

    daemon = BangerDaemon(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        request_timeout=args.timeout,
        cache_entries=args.cache_entries,
        debug=args.debug,
        access_log=access_log,
        store_dir=args.store or os.environ.get("BANGER_STORE_DIR") or None,
        tenant_quota=quota,
        seed_corpus=not args.no_seed_corpus,
    )

    def ready(d: BangerDaemon) -> None:
        # One machine-readable line so wrappers can discover --port 0.
        print(json.dumps({
            "event": "ready",
            "host": d.host,
            "port": d.port,
            "workers": d.workers,
            "pid": __import__("os").getpid(),
        }, sort_keys=True), flush=True)

    asyncio.run(run_daemon(daemon, ready=ready))
    return 0


def cmd_projects(args: argparse.Namespace) -> int:
    from repro.errors import QuotaExceeded, StoreError
    from repro.store import ProjectRepository

    repo = ProjectRepository(_store_root(args.store))
    try:
        return _run_projects_action(repo, args)
    except QuotaExceeded as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILURE


def _run_projects_action(repo, args: argparse.Namespace) -> int:
    action = args.action
    if action == "list":
        if args.tenant:
            names = repo.refs.projects(args.tenant)
            if not names and args.tenant not in repo.refs.tenants():
                print(f"error: no tenant {args.tenant!r} in the store",
                      file=sys.stderr)
                return EXIT_FAILURE
            for name in names:
                head = repo.refs.head(args.tenant, name)
                print(f"{args.tenant}/{name}@{head['v']}  "
                      f"{head['manifest'][:12]}  {head.get('message', '')}")
        else:
            for tenant in repo.refs.tenants():
                print(f"{tenant}  ({len(repo.refs.projects(tenant))} project(s))")
        return EXIT_OK
    if action == "seed":
        from repro.store.corpus import seed_corpus

        info = seed_corpus(repo)
        print(f"seeded {len(info)} corpus project(s) into {repo.blobs.total_bytes()} "
              f"stored byte(s)")
        return EXIT_OK
    if action == "put":
        tenant, name, _ = _parse_ref(args.ref)
        with open(args.project, encoding="utf-8") as fh:
            doc = json.load(fh)
        scenario = None
        if args.scenario:
            with open(args.scenario, encoding="utf-8") as fh:
                scenario = json.load(fh)
        info = repo.put(tenant, name, doc, message=args.message,
                        scenario=scenario)
        print(f"{tenant}/{name}@{info['version']}  {info['manifest'][:12]}  "
              f"(project {info['project'][:12]})")
        return EXIT_OK
    if action == "get":
        tenant, name, version = _parse_ref(args.ref)
        doc = repo.get(tenant, name, version)
        text = json.dumps(doc, indent=2)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.output}")
        else:
            print(text)
        return EXIT_OK
    if action == "log":
        tenant, name, _ = _parse_ref(args.ref)
        for entry in repo.log(tenant, name):
            project = (entry.get("project") or "?")[:12]
            print(f"v{entry['v']}  manifest {entry['manifest'][:12]}  "
                  f"project {project}  {entry.get('message', '')}")
        return EXIT_OK
    if action == "diff":
        tenant, name, version_a = _parse_ref(args.ref)
        to_tenant, to_name, version_b = _parse_ref(args.against)
        delta = repo.diff(tenant, name, version_a, version_b,
                          to_tenant=to_tenant, to_name=to_name)
        if args.json:
            print(json.dumps(delta, indent=2, sort_keys=True))
        elif delta["identical"]:
            print("identical (same manifest)")
        else:
            for key, comp in sorted(delta["components"].items()):
                mark = "=" if comp["equal"] else "≠"
                print(f"{key:<9} {mark}")
            for verb in ("added", "removed", "changed"):
                for path in delta["nodes"][verb]:
                    print(f"node {verb:<8} {path}")
            for verb in ("added", "removed"):
                for arc in delta["arcs"][verb]:
                    print(f"arc  {verb:<8} {arc}")
        return EXIT_OK if delta["identical"] or not args.fail_on_diff else EXIT_FAILURE
    if action == "fork":
        tenant, name, version = _parse_ref(args.ref)
        to_tenant, to_name, _ = _parse_ref(args.to)
        info = repo.fork(tenant, name, to_tenant, to_name, version=version,
                         message=args.message)
        print(f"{to_tenant}/{to_name}@{info['version']}  "
              f"{info['manifest'][:12]}  (zero-copy)")
        return EXIT_OK
    if action == "gc":
        result = repo.gc(max_bytes=args.max_bytes)
        print(f"deleted {result['deleted']} blob(s); {result['live']} live, "
              f"{result['stored_bytes']} byte(s) on disk")
        return EXIT_OK
    raise UsageError(f"unknown projects action {action!r}")


def cmd_topology(args: argparse.Namespace) -> int:
    topo = build_topology(args.family, args.procs)
    print(render_topology(topo))
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    """Build the Figure 1 project in a temp file and show the pipeline."""
    import numpy as np

    from repro.apps import lu3_design
    from repro.machine import MachineParams

    project = BangerProject("figure1").set_design(lu3_design())
    project.set_machine("hypercube", 4,
                        MachineParams(msg_startup=0.2, transmission_rate=20.0))
    print(project.feedback().render())
    print()
    print(project.gantt("mh"))
    print()
    A = np.array([[4.0, 3.0, 2.0], [2.0, 4.0, 1.0], [1.0, 2.0, 3.0]])
    b = np.array([1.0, 2.0, 3.0])
    x = project.run({"A": A, "b": b}).outputs["x"]
    print(f"solve([[4,3,2],[2,4,1],[1,2,3]], [1,2,3]) = {x}")
    if args.save:
        project.save(args.save)
        print(f"saved project to {args.save}")
    return 0


# --------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="banger", description="Banger parallel programming environment (CLI)",
        epilog="Diagnostics carry stable rule IDs (PITS0xx, DF1xx, SCH2xx, "
               "XL3xx, MF4xx); see docs/diagnostics.md for the catalogue "
               "with triggering examples and fix hints.",
    )
    parser.add_argument("--version", action="version",
                        version=f"banger {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_project(p: argparse.ArgumentParser) -> None:
        p.add_argument("project",
                       help="path to a saved Banger project (.json), or a "
                            "store://tenant/name[@v] / corpus://<name> ref")

    def add_scheduler(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scheduler", default="mh", choices=sorted(SCHEDULERS))

    p = sub.add_parser("feedback", help="validate everything; exit 1 on errors")
    add_project(p)
    p.set_defaults(fn=cmd_feedback)

    p = sub.add_parser(
        "lint",
        help="static analysis with stable rule IDs (text/json/sarif)",
        epilog="Rule catalogue: docs/diagnostics.md",
    )
    add_project(p)
    p.add_argument("--format", default="text", choices=("text", "json", "sarif"),
                   help="output format (sarif is GitHub-annotatable)")
    p.add_argument("--fail-on", default="error", choices=("error", "warning"),
                   help="lowest severity that makes the exit status nonzero")
    p.add_argument("--suppress", default="",
                   help="comma-separated rule IDs to hide, e.g. XL303,MF401")
    p.add_argument("--baseline", default=None, metavar="REPORT.SARIF",
                   help="suppress findings recorded in a previous SARIF "
                        "report; fail only on new ones")
    p.add_argument("--concurrency", action="store_true",
                   help="also schedule the project and verify the generated "
                        "communication plan (CG5xx rules)")
    p.add_argument("--scheduler", default="mh",
                   help="scheduler used for --concurrency (default: mh)")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("outline", help="print the design outline")
    add_project(p)
    p.set_defaults(fn=cmd_outline)

    p = sub.add_parser("advise", help="measured improvement suggestions")
    add_project(p)
    p.set_defaults(fn=cmd_advise)

    p = sub.add_parser("schedule", help="schedule and summarise")
    add_project(p)
    add_scheduler(p)
    p.add_argument("--gantt", action="store_true", help="print the Gantt chart")
    p.add_argument("--messages", action="store_true", help="list planned messages")
    p.add_argument("--why", action="store_true",
                   help="explain each placement's binding constraint")
    p.add_argument("--csv", help="write placements as CSV")
    p.add_argument("--chrome-trace", help="write Chrome tracing JSON")
    p.set_defaults(fn=cmd_schedule)

    p = sub.add_parser(
        "edit",
        help="what-if schedule edits: move/swap tasks, see the makespan respond",
        epilog="Edits apply in order (moves first, then swaps), each re-timed "
               "with the shared fixed-assignment pass so the result is always "
               "feasible.  A worsening edit still exits 0 — the delta is the "
               "answer; unknown tasks or processors exit 1.",
    )
    add_project(p)
    add_scheduler(p)
    p.add_argument("--move", nargs=2, action="append", metavar=("TASK", "PROC"),
                   help="reassign TASK to processor PROC (repeatable)")
    p.add_argument("--swap", nargs=2, action="append", metavar=("A", "B"),
                   help="exchange the processors of tasks A and B (repeatable)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable result instead of text")
    p.add_argument("--gantt", action="store_true",
                   help="print the edited schedule's Gantt chart (text mode)")
    p.set_defaults(fn=cmd_edit)

    p = sub.add_parser("speedup", help="speedup prediction sweep")
    add_project(p)
    add_scheduler(p)
    p.add_argument("--procs", default="1,2,4,8")
    p.add_argument("--family", default=None,
                   help="topology family (default: the project machine's family)")
    p.set_defaults(fn=cmd_speedup)

    p = sub.add_parser(
        "sweep",
        help="cached, parallel scheduling sweeps across machine sizes",
        epilog="Results are memoized by content (graph x machine x scheduler); "
               "rerunning an unchanged sweep is served from cache.  Misses fan "
               "out over worker processes when --jobs (or the graph size) "
               "warrants it.",
    )
    add_project(p)
    p.add_argument("--procs", default="1,2,4,8")
    p.add_argument("--scheduler", default="mh",
                   help="comma-separated heuristic names (see `banger schedule`)")
    p.add_argument("--family", default=None,
                   help="topology family (default: the project machine's family)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for cache misses (default: auto)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the schedule cache entirely")
    p.add_argument("--stats", action="store_true",
                   help="print cache hit/miss/eviction and sweep counters")
    p.add_argument("--gantt", action="store_true",
                   help="also print the stacked Gantt charts per size")
    p.add_argument("--json", help="write the sweep results + stats as JSON")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "simulate",
        help="discrete-event replay of the schedule",
        epilog="With --scenario the replay injects the fault scenario "
               "(stragglers, processor/link failures, duration noise); add "
               "--reactive to re-map not-yet-started tasks around the faults "
               "as they are observed.",
    )
    add_project(p)
    add_scheduler(p)
    p.add_argument("--contention", action="store_true",
                   help="model one-message-at-a-time links")
    p.add_argument("--scenario", default=None,
                   help="fault-scenario JSON file to inject during the replay")
    p.add_argument("--reactive", action="store_true",
                   help="reschedule unstarted tasks online as faults appear "
                        "(requires --scenario)")
    p.add_argument("--threshold", type=float, default=2.0,
                   help="observed/expected slowdown ratio that flags a "
                        "straggler processor (default: 2.0)")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("run", help="execute the design")
    add_project(p)
    add_scheduler(p)
    p.add_argument("--parallel", action="store_true",
                   help="threaded execution of the schedule (default: sequential)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "codegen",
        help="generate (or run) the parallel program on a backend target",
    )
    p.add_argument(
        "project", nargs="?",
        help="path to a saved Banger project (.json); omit with --list",
    )
    add_scheduler(p)
    p.add_argument(
        "--target", choices=("threads", "inproc", "mpi", "c"),
        help="codegen backend (default: threads)",
    )
    p.add_argument(
        "--language", choices=("python", "mpi", "c"),
        help="legacy alias for --target ('python' means 'threads')",
    )
    p.add_argument(
        "--run", action="store_true",
        help="execute on the target backend and print the design outputs",
    )
    p.add_argument(
        "--list", action="store_true",
        help="list registered backends and exit",
    )
    p.add_argument("-o", "--output", help="write to a file instead of stdout")
    p.set_defaults(fn=cmd_codegen)

    p = sub.add_parser(
        "conform",
        help="differential fuzzing: cross-layer oracles on seeded cases",
        epilog="Runs are deterministic per (seed, runs, oracles): the printed "
               "digest must be identical across repeats.  Failures are shrunk "
               "to minimal witnesses and, with --corpus, written as replayable "
               "JSON cases.  Oracle catalogue: docs/conformance.md",
    )
    p.add_argument("--seed", type=int, default=0, help="fuzzer seed (default 0)")
    p.add_argument("--runs", type=int, default=100,
                   help="number of generated cases (default 100)")
    p.add_argument("--oracle", default="",
                   help="comma-separated oracle names (default: all registered)")
    p.add_argument("--corpus", default=None,
                   help="directory to write shrunk failing cases into")
    p.add_argument("--budget", type=float, default=None,
                   help="wall-clock cap in seconds (truncation is reported)")
    p.add_argument("--replay", default=None, metavar="CORPUS_DIR",
                   help="replay a stored corpus instead of fuzzing")
    p.add_argument("--format", default="text", choices=("text", "json"))
    p.set_defaults(fn=cmd_conform)

    p = sub.add_parser(
        "serve",
        help="run the Banger pipeline as a JSON-over-HTTP daemon",
        epilog="Endpoints: POST /lint /schedule /sweep /simulate /speedup "
               "/conform, GET /healthz /metrics.  Identical in-flight "
               "requests are coalesced onto one computation; see "
               "docs/server.md for schemas and failure semantics.",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8045,
                   help="TCP port (0 picks a free one; read the ready line)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: min(4, cpus); "
                        "0 runs ops inline on threads)")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="max in-flight compute requests before 503 (default 64)")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-request compute budget in seconds (default 30)")
    p.add_argument("--cache-entries", type=int, default=512,
                   help="response LRU size (default 512)")
    p.add_argument("--debug", action="store_true",
                   help="expose /debug/* fault-injection endpoints")
    p.add_argument("--access-log", default=None, metavar="PATH",
                   help="append JSON access-log lines here (default: stderr)")
    p.add_argument("--no-access-log", action="store_true",
                   help="disable the access log entirely")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="project-store directory served under /projects "
                        "(default: BANGER_STORE_DIR or in-memory)")
    p.add_argument("--quota-projects", type=int, default=0,
                   help="max projects per tenant (0 = unlimited)")
    p.add_argument("--quota-versions", type=int, default=0,
                   help="max versions per project (0 = unlimited)")
    p.add_argument("--quota-bytes", type=int, default=0,
                   help="max logical bytes written per tenant (0 = unlimited)")
    p.add_argument("--no-seed-corpus", action="store_true",
                   help="skip seeding the built-in scenario corpus at startup")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "projects",
        help="the local content-addressed project store",
        epilog="Refs are tenant/name[@version]; the store lives in --store "
               "(or BANGER_STORE_DIR, default .banger-store).  Any other "
               "subcommand can read from it via store://tenant/name[@v] and "
               "corpus://<name> project arguments.  See docs/projects.md.",
    )
    p.add_argument("--store", default=None, metavar="DIR",
                   help="store directory (default: BANGER_STORE_DIR "
                        "or .banger-store)")
    actions = p.add_subparsers(dest="action", required=True)

    a = actions.add_parser("list", help="tenants, or one tenant's projects")
    a.add_argument("tenant", nargs="?", default=None)

    a = actions.add_parser("put", help="store a project file as a new version")
    a.add_argument("ref", help="tenant/name")
    a.add_argument("project", help="path to a saved Banger project (.json)")
    a.add_argument("-m", "--message", default="", help="version message")
    a.add_argument("--scenario", default=None,
                   help="fault-scenario JSON to attach to this version")

    a = actions.add_parser("get", help="print (or write) a stored project")
    a.add_argument("ref", help="tenant/name[@version]")
    a.add_argument("-o", "--output", default=None,
                   help="write the project JSON here instead of stdout")

    a = actions.add_parser("log", help="version history of a project")
    a.add_argument("ref", help="tenant/name")

    a = actions.add_parser("diff", help="content delta between two refs")
    a.add_argument("ref", help="tenant/name[@version]")
    a.add_argument("against", help="tenant/name[@version] to compare with")
    a.add_argument("--json", action="store_true",
                   help="machine-readable delta instead of text")
    a.add_argument("--fail-on-diff", action="store_true",
                   help="exit 1 when the refs differ (for scripts)")

    a = actions.add_parser("fork", help="zero-copy branch of a version")
    a.add_argument("ref", help="tenant/name[@version] to fork from")
    a.add_argument("to", help="tenant/name of the new project")
    a.add_argument("-m", "--message", default="", help="version message")

    a = actions.add_parser("gc", help="drop unreferenced blobs")
    a.add_argument("--max-bytes", type=int, default=None,
                   help="if still over this size, also trim non-head "
                        "version history oldest-first (heads always survive)")

    a = actions.add_parser("seed", help="(re)seed the built-in corpus tenant")

    p.set_defaults(fn=cmd_projects)

    p = sub.add_parser("topology", help="draw a topology family")
    p.add_argument("--family", default="hypercube")
    p.add_argument("--procs", type=int, default=8)
    p.set_defaults(fn=cmd_topology)

    p = sub.add_parser("demo", help="the Figure 1 pipeline, end to end")
    p.add_argument("--save", help="also save the demo project JSON here")
    p.set_defaults(fn=cmd_demo)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # the consumer (e.g. `| head`) closed the pipe; exit quietly
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except json.JSONDecodeError as exc:
        print(f"error: not a Banger project file (invalid JSON: {exc})",
              file=sys.stderr)
        return EXIT_USAGE
    except UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FAILURE


if __name__ == "__main__":
    raise SystemExit(main())
