"""Work estimation for PITS routines — the PITS → PITL bridge.

The scheduler needs a weight (operation count) for every task node.  Two
estimators are provided:

* :func:`measure_work` — **dynamic**: trial-run the program on sample inputs
  and read the interpreter's exact operation counter.  This is what Banger's
  "trial runs" enable, and the estimate the environment prefers.
* :func:`estimate_work` — **static**: walk the AST counting operations,
  multiplying loop bodies by their (constant) trip counts when derivable
  and by ``default_iterations`` otherwise.  Useful before any sample inputs
  exist.
"""

from __future__ import annotations

from typing import Any

from repro.calc import ast
from repro.calc.builtins import lookup
from repro.calc.interp import Interpreter
from repro.calc.parser import parse

#: Assumed trip count for loops whose bounds are not literal constants.
DEFAULT_ITERATIONS = 10.0


def measure_work(program: ast.Program | str, **inputs: Any) -> float:
    """Exact operation count of one trial run with the given inputs."""
    return Interpreter(program).run(**inputs).ops


def estimate_work(
    program: ast.Program | str, default_iterations: float = DEFAULT_ITERATIONS
) -> float:
    """Static operation-count estimate (no inputs needed)."""
    if isinstance(program, str):
        program = parse(program)
    return _block_cost(program.body, default_iterations)


def _block_cost(stmts: tuple[ast.Stmt, ...], default_iter: float) -> float:
    return sum(_stmt_cost(s, default_iter) for s in stmts)


def _stmt_cost(s: ast.Stmt, default_iter: float) -> float:
    if isinstance(s, ast.Assign):
        cost = _expr_cost(s.value)
        if isinstance(s.target, ast.Index):
            cost += 1 + sum(_expr_cost(sub) for sub in s.target.subscripts)
        return cost + 1
    if isinstance(s, ast.If):
        branches = [_block_cost(s.then, default_iter)]
        branches += [_block_cost(b, default_iter) for _, b in s.elifs]
        branches.append(_block_cost(s.orelse, default_iter))
        conds = _expr_cost(s.cond) + sum(_expr_cost(c) for c, _ in s.elifs)
        return conds + max(branches)
    if isinstance(s, ast.While):
        per_iter = _expr_cost(s.cond) + _block_cost(s.body, default_iter)
        return default_iter * per_iter
    if isinstance(s, ast.Repeat):
        per_iter = _expr_cost(s.cond) + _block_cost(s.body, default_iter)
        return default_iter * per_iter
    if isinstance(s, ast.For):
        trips = _trip_count(s, default_iter)
        header = _expr_cost(s.start) + _expr_cost(s.stop)
        if s.step is not None:
            header += _expr_cost(s.step)
        return header + trips * (1 + _block_cost(s.body, default_iter))
    if isinstance(s, ast.CallStmt):
        return _expr_cost(s.call)
    return 1.0


def _trip_count(s: ast.For, default_iter: float) -> float:
    start = _const_value(s.start)
    stop = _const_value(s.stop)
    step = _const_value(s.step) if s.step is not None else 1.0
    if start is None or stop is None or step is None or step == 0:
        return default_iter
    trips = (stop - start) / step + 1
    return max(0.0, float(int(trips)))


def _const_value(e: ast.Expr | None) -> float | None:
    """Literal constant folding for loop bounds (numbers, +/- of numbers)."""
    if e is None:
        return None
    if isinstance(e, ast.Num):
        return e.value
    if isinstance(e, ast.Unary) and e.op in ("-", "+"):
        v = _const_value(e.operand)
        if v is None:
            return None
        return -v if e.op == "-" else v
    if isinstance(e, ast.Binary) and e.op in ("+", "-", "*"):
        l, r = _const_value(e.left), _const_value(e.right)
        if l is None or r is None:
            return None
        return {"+": l + r, "-": l - r, "*": l * r}[e.op]
    return None


def _expr_cost(e: ast.Expr) -> float:
    if isinstance(e, (ast.Num, ast.BoolLit, ast.Str, ast.Name)):
        return 0.0
    if isinstance(e, ast.Index):
        return 1.0 + sum(_expr_cost(s) for s in e.subscripts)
    if isinstance(e, ast.Unary):
        return 1.0 + _expr_cost(e.operand)
    if isinstance(e, ast.Binary):
        return 1.0 + _expr_cost(e.left) + _expr_cost(e.right)
    if isinstance(e, ast.ArrayLit):
        return max(1.0, float(len(e.elements))) + sum(_expr_cost(x) for x in e.elements)
    if isinstance(e, ast.Call):
        args_cost = sum(_expr_cost(a) for a in e.args)
        builtin = lookup(e.func)
        if builtin is None:
            return args_cost + 1.0
        # static costs cannot see array sizes; charge the scalar cost
        try:
            base = builtin.cost(*([1.0] * len(e.args)))
        except Exception:
            base = 2.0
        return args_cost + float(base)
    return 1.0
