"""Recursive-descent parser for the PITS calculator language.

Grammar sketch (newline- or ``;``-terminated statements)::

    program  :=  [ "task" IDENT ]  { decl }  { stmt }
    decl     :=  ("input" | "output" | "local") IDENT { "," IDENT }
    stmt     :=  target ":=" expr
              |  "if" expr "then" block { "elif" expr "then" block }
                 [ "else" block ] "end"
              |  "while" expr "do" block "end"
              |  "for" IDENT ":=" expr "to" expr [ "step" expr ] "do" block "end"
              |  "repeat" block "until" expr
              |  IDENT "(" args ")"                  (call for effect)
    target   :=  IDENT [ "[" expr { "," expr } "]" ]

Expression precedence, loosest first: ``or``; ``and``; ``not``; comparisons
(``= <> < <= > >=``); ``+ -``; ``* / %``; unary ``- +``; ``^`` (right
associative); postfix call/index; atoms.
"""

from __future__ import annotations

from repro.calc import ast
from repro.calc.lexer import tokenize
from repro.calc.tokens import Token, TokenType
from repro.errors import CalcSyntaxError

_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")
_BLOCK_ENDERS = ("end", "else", "elif", "until")


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------ #
    # token plumbing
    # ------------------------------------------------------------------ #
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        if tok.type is not TokenType.EOF:
            self.pos += 1
        return tok

    def error(self, message: str, tok: Token | None = None) -> CalcSyntaxError:
        tok = tok or self.cur
        return CalcSyntaxError(message, tok.line, tok.column)

    def expect_op(self, op: str) -> Token:
        if not self.cur.is_op(op):
            raise self.error(f"expected {op!r}, found {self.cur.value!r}")
        return self.advance()

    def expect_kw(self, kw: str) -> Token:
        if not self.cur.is_kw(kw):
            raise self.error(f"expected {kw!r}, found {self.cur.value!r}")
        return self.advance()

    def expect_ident(self) -> Token:
        if self.cur.type is not TokenType.IDENT:
            raise self.error(f"expected a name, found {self.cur.value!r}")
        return self.advance()

    def skip_newlines(self) -> None:
        while self.cur.type is TokenType.NEWLINE or self.cur.is_op(";"):
            self.advance()

    def end_statement(self) -> None:
        if self.cur.type is TokenType.EOF:
            return
        if self.cur.type is TokenType.NEWLINE or self.cur.is_op(";"):
            self.advance()
            return
        # block terminators may directly follow a one-line statement
        if self.cur.is_kw(*_BLOCK_ENDERS):
            return
        raise self.error(f"expected end of statement, found {self.cur.value!r}")

    # ------------------------------------------------------------------ #
    # program structure
    # ------------------------------------------------------------------ #
    def parse_program(self) -> ast.Program:
        self.skip_newlines()
        name = ""
        if self.cur.is_kw("task"):
            self.advance()
            name = self.expect_ident().value
            self.end_statement()
            self.skip_newlines()

        inputs: list[str] = []
        outputs: list[str] = []
        locals_: list[str] = []
        buckets = {"input": inputs, "output": outputs, "local": locals_}
        while self.cur.is_kw("input", "output", "local"):
            kind = self.advance().value
            bucket = buckets[kind]
            while True:
                ident = self.expect_ident().value
                if any(ident in b for b in buckets.values()):
                    raise self.error(f"variable {ident!r} declared twice")
                bucket.append(ident)
                if self.cur.is_op(","):
                    self.advance()
                    continue
                break
            self.end_statement()
            self.skip_newlines()

        body = self.parse_block(top_level=True)
        if self.cur.type is not TokenType.EOF:
            raise self.error(f"unexpected {self.cur.value!r}")
        return ast.Program(
            name=name,
            inputs=tuple(inputs),
            outputs=tuple(outputs),
            locals=tuple(locals_),
            body=body,
        )

    def parse_block(self, top_level: bool = False) -> tuple[ast.Stmt, ...]:
        stmts: list[ast.Stmt] = []
        self.skip_newlines()
        while True:
            if self.cur.type is TokenType.EOF:
                if not top_level:
                    raise self.error("unexpected end of program inside a block")
                break
            if self.cur.is_kw(*_BLOCK_ENDERS):
                if top_level:
                    raise self.error(f"{self.cur.value!r} outside any block")
                break
            stmts.append(self.parse_stmt())
            self.skip_newlines()
        return tuple(stmts)

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #
    def parse_stmt(self) -> ast.Stmt:
        tok = self.cur
        if tok.is_kw("if"):
            return self.parse_if()
        if tok.is_kw("while"):
            return self.parse_while()
        if tok.is_kw("for"):
            return self.parse_for()
        if tok.is_kw("forall"):
            return self.parse_forall()
        if tok.is_kw("repeat"):
            return self.parse_repeat()
        if tok.type is TokenType.IDENT:
            return self.parse_assign_or_call()
        raise self.error(f"expected a statement, found {tok.value!r}")

    def parse_assign_or_call(self) -> ast.Stmt:
        tok = self.expect_ident()
        if self.cur.is_op("("):  # call for effect
            call = self.finish_call(tok)
            self.end_statement()
            return ast.CallStmt(call=call, line=tok.line)
        target: ast.Expr
        if self.cur.is_op("["):
            subs = self.parse_subscripts()
            target = ast.Index(base=tok.value, subscripts=subs, line=tok.line)
        else:
            target = ast.Name(ident=tok.value, line=tok.line)
        self.expect_op(":=")
        value = self.parse_expr()
        self.end_statement()
        return ast.Assign(target=target, value=value, line=tok.line)

    def parse_if(self) -> ast.Stmt:
        tok = self.expect_kw("if")
        cond = self.parse_expr()
        self.expect_kw("then")
        then = self.parse_block()
        elifs: list[tuple[ast.Expr, tuple[ast.Stmt, ...]]] = []
        orelse: tuple[ast.Stmt, ...] = ()
        while self.cur.is_kw("elif"):
            self.advance()
            c = self.parse_expr()
            self.expect_kw("then")
            elifs.append((c, self.parse_block()))
        if self.cur.is_kw("else"):
            self.advance()
            orelse = self.parse_block()
        self.expect_kw("end")
        self.end_statement()
        return ast.If(cond=cond, then=then, elifs=tuple(elifs), orelse=orelse, line=tok.line)

    def parse_while(self) -> ast.Stmt:
        tok = self.expect_kw("while")
        cond = self.parse_expr()
        self.expect_kw("do")
        body = self.parse_block()
        self.expect_kw("end")
        self.end_statement()
        return ast.While(cond=cond, body=body, line=tok.line)

    def parse_for(self) -> ast.Stmt:
        tok = self.expect_kw("for")
        var = self.expect_ident().value
        self.expect_op(":=")
        start = self.parse_expr()
        self.expect_kw("to")
        stop = self.parse_expr()
        step = None
        if self.cur.is_kw("step"):
            self.advance()
            step = self.parse_expr()
        self.expect_kw("do")
        body = self.parse_block()
        self.expect_kw("end")
        self.end_statement()
        return ast.For(var=var, start=start, stop=stop, step=step, body=body, line=tok.line)

    def parse_forall(self) -> ast.Stmt:
        """``forall i := e1 to e2 do ... end`` — no step, unit stride."""
        tok = self.expect_kw("forall")
        var = self.expect_ident().value
        self.expect_op(":=")
        start = self.parse_expr()
        self.expect_kw("to")
        stop = self.parse_expr()
        if self.cur.is_kw("step"):
            raise self.error("forall does not take a step (iterations are independent)")
        self.expect_kw("do")
        body = self.parse_block()
        self.expect_kw("end")
        self.end_statement()
        return ast.For(
            var=var, start=start, stop=stop, step=None, body=body,
            parallel=True, line=tok.line,
        )

    def parse_repeat(self) -> ast.Stmt:
        tok = self.expect_kw("repeat")
        body = self.parse_block()
        self.expect_kw("until")
        cond = self.parse_expr()
        self.end_statement()
        return ast.Repeat(body=body, cond=cond, line=tok.line)

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #
    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.cur.is_kw("or"):
            tok = self.advance()
            right = self.parse_and()
            left = ast.Binary(op="or", left=left, right=right, line=tok.line)
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.cur.is_kw("and"):
            tok = self.advance()
            right = self.parse_not()
            left = ast.Binary(op="and", left=left, right=right, line=tok.line)
        return left

    def parse_not(self) -> ast.Expr:
        if self.cur.is_kw("not"):
            tok = self.advance()
            return ast.Unary(op="not", operand=self.parse_not(), line=tok.line)
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        if self.cur.is_op(*_COMPARISONS):
            tok = self.advance()
            right = self.parse_additive()
            return ast.Binary(op=tok.value, left=left, right=right, line=tok.line)
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while self.cur.is_op("+", "-"):
            tok = self.advance()
            right = self.parse_multiplicative()
            left = ast.Binary(op=tok.value, left=left, right=right, line=tok.line)
        return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while self.cur.is_op("*", "/", "%"):
            tok = self.advance()
            right = self.parse_unary()
            left = ast.Binary(op=tok.value, left=left, right=right, line=tok.line)
        return left

    def parse_unary(self) -> ast.Expr:
        if self.cur.is_op("-", "+"):
            tok = self.advance()
            return ast.Unary(op=tok.value, operand=self.parse_unary(), line=tok.line)
        return self.parse_power()

    def parse_power(self) -> ast.Expr:
        base = self.parse_postfix()
        if self.cur.is_op("^"):
            tok = self.advance()
            # right-associative: a ^ b ^ c == a ^ (b ^ c); exponent may be
            # signed, so re-enter at unary level
            exponent = self.parse_unary()
            return ast.Binary(op="^", left=base, right=exponent, line=tok.line)
        return base

    def parse_postfix(self) -> ast.Expr:
        atom = self.parse_atom()
        while True:
            if self.cur.is_op("[") and isinstance(atom, ast.Name):
                subs = self.parse_subscripts()
                atom = ast.Index(base=atom.ident, subscripts=subs, line=atom.line)
            else:
                return atom

    def parse_subscripts(self) -> tuple[ast.Expr, ...]:
        self.expect_op("[")
        subs = [self.parse_expr()]
        while self.cur.is_op(","):
            self.advance()
            subs.append(self.parse_expr())
        self.expect_op("]")
        if len(subs) > 2:
            raise self.error("at most two subscripts (vector or matrix)")
        return tuple(subs)

    def finish_call(self, name_tok: Token) -> ast.Call:
        self.expect_op("(")
        args: list[ast.Expr] = []
        if not self.cur.is_op(")"):
            args.append(self.parse_expr())
            while self.cur.is_op(","):
                self.advance()
                args.append(self.parse_expr())
        self.expect_op(")")
        return ast.Call(func=name_tok.value.lower(), args=tuple(args), line=name_tok.line)

    def parse_atom(self) -> ast.Expr:
        tok = self.cur
        if tok.type is TokenType.NUMBER:
            self.advance()
            return ast.Num(value=float(tok.value), line=tok.line)
        if tok.type is TokenType.STRING:
            self.advance()
            return ast.Str(value=tok.value, line=tok.line)
        if tok.is_kw("true"):
            self.advance()
            return ast.BoolLit(value=True, line=tok.line)
        if tok.is_kw("false"):
            self.advance()
            return ast.BoolLit(value=False, line=tok.line)
        if tok.type is TokenType.IDENT:
            self.advance()
            if self.cur.is_op("("):
                return self.finish_call(tok)
            return ast.Name(ident=tok.value, line=tok.line)
        if tok.is_op("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_op(")")
            return inner
        if tok.is_op("["):
            return self.parse_array_literal()
        raise self.error(f"expected an expression, found {tok.value!r}")

    def parse_array_literal(self) -> ast.Expr:
        tok = self.expect_op("[")
        elements: list[ast.Expr] = []
        if not self.cur.is_op("]"):
            elements.append(self.parse_expr())
            while self.cur.is_op(","):
                self.advance()
                elements.append(self.parse_expr())
        self.expect_op("]")
        return ast.ArrayLit(elements=tuple(elements), line=tok.line)


def parse(source: str) -> ast.Program:
    """Parse PITS source text into a :class:`~repro.calc.ast.Program`.

    Pathologically deep nesting is reported as a syntax error rather than
    blowing the Python stack — calculator users deserve a message, not a
    traceback.
    """
    try:
        return Parser(tokenize(source)).parse_program()
    except RecursionError:
        raise CalcSyntaxError("expression is nested too deeply") from None


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression (the calculator panel's ``=`` button)."""
    parser = Parser(tokenize(source))
    parser.skip_newlines()
    try:
        expr = parser.parse_expr()
    except RecursionError:
        raise CalcSyntaxError("expression is nested too deeply") from None
    parser.skip_newlines()
    if parser.cur.type is not TokenType.EOF:
        raise parser.error(f"unexpected {parser.cur.value!r} after expression")
    return expr
