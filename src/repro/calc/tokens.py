"""Token types of the PITS calculator language.

The language is deliberately small — the paper wants "simple programming
constructs, scientific and engineering functions, constants, and formulas"
that a scientist can enter from a button panel.  Keywords are case-insensitive
on input and canonicalised to lower case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    NUMBER = "number"
    STRING = "string"
    IDENT = "ident"
    KEYWORD = "keyword"
    OP = "op"
    NEWLINE = "newline"
    EOF = "eof"


#: Reserved words of the PITS language.
KEYWORDS = frozenset(
    {
        "task",
        "input",
        "output",
        "local",
        "if",
        "then",
        "else",
        "elif",
        "end",
        "while",
        "do",
        "for",
        "forall",
        "to",
        "step",
        "repeat",
        "until",
        "and",
        "or",
        "not",
        "true",
        "false",
    }
)

#: Multi-character operators, longest first so the lexer can match greedily.
OPERATORS = (
    ":=",
    "<=",
    ">=",
    "<>",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "^",
    "%",
    "(",
    ")",
    "[",
    "]",
    ",",
    ";",
)


@dataclass(frozen=True)
class Token:
    """One lexeme with its 1-based source position."""

    type: TokenType
    value: str
    line: int
    column: int

    def is_op(self, *ops: str) -> bool:
        return self.type is TokenType.OP and self.value in ops

    def is_kw(self, *kws: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in kws

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.value!r}, {self.line}:{self.column})"
