"""Stock PITS routines — the calculator's formula library.

The paper's calculator offers "constants, and formulas"; this module is the
formula drawer: ready-made, analyzed, tested routines a non-programmer can
drop onto a dataflow node.  ``SQUARE_ROOT`` is the exact program of
Figure 4 (Newton–Raphson).
"""

from __future__ import annotations

from repro.calc.analyze import is_clean
from repro.errors import CalcError

#: Figure 4's example: x = sqrt(a) by Newton-Raphson approximation.
SQUARE_ROOT = """\
task SquareRoot
input a
output x
local g, eps
eps := 1.0e-12
if a < 0 then
  display("sqrt of a negative number")
  g := 0
else
  g := a / 2.0
  if g = 0 then
    g := a
  end
  while g > 0 and abs(g*g - a) > eps * max(a, 1) do
    g := (g + a/g) / 2.0
  end
end
x := g
"""

#: Evaluate a polynomial given its coefficient vector (Horner's rule).
POLYNOMIAL = """\
task PolyEval
input c, x
output y
local i, n
n := len(c)
y := c[1]
for i := 2 to n do
  y := y * x + c[i]
end
"""

#: Trapezoid-rule integral of sin over [a, b] with n panels.
TRAPEZOID_SIN = """\
task TrapezoidSin
input a, b, n
output area
local h, i, s
h := (b - a) / n
s := (sin(a) + sin(b)) / 2
for i := 1 to n - 1 do
  s := s + sin(a + i * h)
end
area := s * h
"""

#: Sample mean and (population) standard deviation of a vector.
STATS = """\
task Stats
input v
output m, sd
local i, n, s
n := len(v)
m := mean(v)
s := 0
for i := 1 to n do
  s := s + (v[i] - m) ^ 2
end
sd := sqrt(s / n)
"""

#: Roots of a*x^2 + b*x + c (real roots only; flags via rc).
QUADRATIC = """\
task Quadratic
input a, b, c
output x1, x2, rc
local d
d := b^2 - 4*a*c
if d < 0 then
  rc := -1
  x1 := 0
  x2 := 0
else
  rc := 0
  d := sqrt(d)
  x1 := (-b + d) / (2*a)
  x2 := (-b - d) / (2*a)
end
"""

#: Dense matrix-vector product written with explicit loops.
MATVEC = """\
task MatVec
input A, x
output y
local i, j, n, m, s
n := rows(A)
m := cols(A)
y := zeros(n)
for i := 1 to n do
  s := 0
  for j := 1 to m do
    s := s + A[i,j] * x[j]
  end
  y[i] := s
end
"""

#: y := a*x + y, the BLAS staple.
AXPY = """\
task Axpy
input a, x, yin
output y
local i, n
n := len(x)
y := zeros(n)
for i := 1 to n do
  y[i] := a * x[i] + yin[i]
end
"""

#: Greatest common divisor by Euclid's algorithm (repeat/until showcase).
GCD = """\
task Gcd
input a, b
output g
local r, x, y
x := abs(a)
y := abs(b)
if y = 0 then
  g := x
else
  repeat
    r := x % y
    x := y
    y := r
  until y = 0
  g := x
end
"""

#: Root of f(x) = cos(x) - x by bisection on [lo, hi] (sign change assumed).
BISECT_COS = """\
task BisectCos
input lo, hi, tol
output root
local a, b, m, fa, fm
a := lo
b := hi
fa := cos(a) - a
repeat
  m := (a + b) / 2
  fm := cos(m) - m
  if fa * fm <= 0 then
    b := m
  else
    a := m
    fa := fm
  end
until b - a < tol
root := (a + b) / 2
"""

#: Simpson's rule for the integral of exp over [a, b] with n panels (even).
SIMPSON_EXP = """\
task SimpsonExp
input a, b, n
output area
local h, i, s
h := (b - a) / n
s := exp(a) + exp(b)
for i := 1 to n - 1 do
  if i % 2 = 1 then
    s := s + 4 * exp(a + i * h)
  else
    s := s + 2 * exp(a + i * h)
  end
end
area := s * h / 3
"""

#: Least-squares line fit: y ~ slope * x + intercept.
LINREG = """\
task LinReg
input x, y
output slope, intercept
local i, n, sx, sy, sxx, sxy
n := len(x)
sx := sum(x)
sy := sum(y)
sxx := dot(x, x)
sxy := dot(x, y)
slope := (n * sxy - sx * sy) / (n * sxx - sx * sx)
intercept := (sy - slope * sx) / n
"""

#: Compound interest table: balance after each of n years.
COMPOUND = """\
task Compound
input principal, rate, n
output balances
local i, b
balances := zeros(n)
b := principal
for i := 1 to n do
  b := b * (1 + rate)
  balances[i] := b
end
"""

#: name -> source of every stock routine.
LIBRARY: dict[str, str] = {
    "square_root": SQUARE_ROOT,
    "polynomial": POLYNOMIAL,
    "trapezoid_sin": TRAPEZOID_SIN,
    "stats": STATS,
    "quadratic": QUADRATIC,
    "matvec": MATVEC,
    "axpy": AXPY,
    "gcd": GCD,
    "bisect_cos": BISECT_COS,
    "simpson_exp": SIMPSON_EXP,
    "linreg": LINREG,
    "compound": COMPOUND,
}


def stock(name: str) -> str:
    """Fetch a stock routine's source by name."""
    try:
        return LIBRARY[name]
    except KeyError:
        raise CalcError(
            f"no stock routine named {name!r}; available: {sorted(LIBRARY)}"
        ) from None


def self_check() -> None:
    """Every shipped routine must pass static analysis (used in tests)."""
    for name, source in LIBRARY.items():
        if not is_clean(source):
            raise CalcError(f"stock routine {name!r} has static errors")
