"""Static analysis of PITS programs — the "instant feedback" checker.

Principle 3 of the paper: "instant feedback to the user wherever possible
... is believed to be a major contributor to early defect removal."  The
analyzer runs on every edit (see :mod:`repro.env`) and reports *all*
problems at once, each tagged with a severity and source line:

* errors — undeclared variables, assignment to inputs, unknown functions,
  wrong arity, an output that is never assigned;
* warnings — variables that are never used, locals never assigned,
  statements after all outputs are final (none currently), shadowed
  constants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.calc import ast
from repro.calc.builtins import CONSTANTS, lookup
from repro.calc.parser import parse
from repro.errors import CalcSyntaxError


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    severity: Severity
    message: str
    line: int = 0

    def __str__(self) -> str:
        where = f"line {self.line}: " if self.line else ""
        return f"{self.severity.value}: {where}{self.message}"


def _is_constant(name: str) -> bool:
    return name in CONSTANTS or (name.lower() == name and name.upper() in CONSTANTS)


def analyze(program: ast.Program | str) -> list[Diagnostic]:
    """Return every diagnostic for a PITS program (empty list = clean).

    Accepts source text (syntax errors become a single ERROR diagnostic)
    or an already parsed program.
    """
    if isinstance(program, str):
        try:
            program = parse(program)
        except CalcSyntaxError as exc:
            return [Diagnostic(Severity.ERROR, str(exc), exc.line)]

    diags: list[Diagnostic] = []
    declared = program.declared
    assigned: set[str] = set(program.inputs)
    used: set[str] = set()
    loop_vars: set[str] = set()

    for name in program.inputs:
        if _is_constant(name):
            diags.append(
                Diagnostic(Severity.WARNING, f"input {name!r} shadows a constant")
            )

    stmts = ast.walk_stmts(program.body)
    for s in stmts:
        if isinstance(s, ast.For):
            loop_vars.add(s.var)

    all_vars = declared | loop_vars

    for s in stmts:
        for e in ast.stmt_exprs(s):
            if isinstance(e, ast.Name):
                if e.ident not in all_vars and not _is_constant(e.ident):
                    diags.append(
                        Diagnostic(
                            Severity.ERROR,
                            f"variable {e.ident!r} is not declared",
                            e.line,
                        )
                    )
                used.add(e.ident)
            elif isinstance(e, ast.Index):
                if e.base not in all_vars and not _is_constant(e.base):
                    diags.append(
                        Diagnostic(
                            Severity.ERROR,
                            f"variable {e.base!r} is not declared",
                            e.line,
                        )
                    )
                used.add(e.base)
            elif isinstance(e, ast.Call):
                if e.func == "display":
                    continue
                builtin = lookup(e.func)
                if builtin is None:
                    diags.append(
                        Diagnostic(
                            Severity.ERROR,
                            f"unknown function {e.func!r}",
                            e.line,
                        )
                    )
                elif not builtin.check_arity(len(e.args)):
                    expected = (
                        str(builtin.min_args)
                        if builtin.min_args == builtin.max_args
                        else f"{builtin.min_args}..{builtin.max_args}"
                    )
                    diags.append(
                        Diagnostic(
                            Severity.ERROR,
                            f"{e.func}() takes {expected} argument(s), got {len(e.args)}",
                            e.line,
                        )
                    )

        if isinstance(s, ast.Assign):
            target = s.target
            name = target.ident if isinstance(target, ast.Name) else target.base  # type: ignore[union-attr]
            if name in program.inputs:
                diags.append(
                    Diagnostic(
                        Severity.ERROR, f"input {name!r} is read-only", s.line
                    )
                )
            elif name not in all_vars:
                diags.append(
                    Diagnostic(
                        Severity.ERROR,
                        f"variable {name!r} is not declared "
                        "(add it to output or local)",
                        s.line,
                    )
                )
            assigned.add(name)
            if isinstance(target, ast.Index):
                used.add(name)  # subscripted write reads the array too
        elif isinstance(s, ast.For):
            if s.var in program.inputs:
                diags.append(
                    Diagnostic(
                        Severity.ERROR, f"loop variable {s.var!r} is an input", s.line
                    )
                )
            assigned.add(s.var)

    # forall bodies must have independent iterations: every write inside
    # must target an array element whose first subscript is the loop
    # variable itself, so iterations touch disjoint locations
    for s in stmts:
        if isinstance(s, ast.For) and s.parallel:
            diags.extend(_check_forall(s))

    for name in program.outputs:
        if name not in assigned:
            diags.append(
                Diagnostic(Severity.ERROR, f"output {name!r} is never assigned")
            )
    for name in program.inputs:
        if name not in used:
            diags.append(
                Diagnostic(Severity.WARNING, f"input {name!r} is never used")
            )
    for name in program.locals:
        if name not in used and name not in assigned:
            diags.append(
                Diagnostic(Severity.WARNING, f"local {name!r} is never used")
            )

    return diags


def _check_forall(loop: ast.For) -> list[Diagnostic]:
    """Disjoint-write rules for ``forall`` bodies."""
    diags: list[Diagnostic] = []
    for inner in ast.walk_stmts(loop.body):
        if isinstance(inner, ast.Assign):
            target = inner.target
            if isinstance(target, ast.Name):
                diags.append(
                    Diagnostic(
                        Severity.ERROR,
                        f"forall body assigns scalar {target.ident!r}; only "
                        f"elements indexed by {loop.var!r} may be written",
                        inner.line,
                    )
                )
            elif isinstance(target, ast.Index):
                first = target.subscripts[0] if target.subscripts else None
                if not (isinstance(first, ast.Name) and first.ident == loop.var):
                    diags.append(
                        Diagnostic(
                            Severity.ERROR,
                            f"forall body writes {target.base!r} with first "
                            f"subscript not {loop.var!r}; iterations must "
                            "write disjoint elements",
                            inner.line,
                        )
                    )
        elif isinstance(inner, ast.For) and inner.parallel:
            diags.append(
                Diagnostic(
                    Severity.ERROR,
                    "nested forall is not supported; make the inner loop a "
                    "plain for",
                    inner.line,
                )
            )
        elif isinstance(inner, ast.CallStmt) and inner.call.func == "display":
            diags.append(
                Diagnostic(
                    Severity.WARNING,
                    "display inside forall prints in nondeterministic order "
                    "once the node is split",
                    inner.line,
                )
            )
    return diags


def errors(program: ast.Program | str) -> list[Diagnostic]:
    return [d for d in analyze(program) if d.severity is Severity.ERROR]


def is_clean(program: ast.Program | str) -> bool:
    """True when the program has no ERROR-severity diagnostics."""
    return not errors(program)
