"""Static analysis of PITS programs — the "instant feedback" checker.

Principle 3 of the paper: "instant feedback to the user wherever possible
... is believed to be a major contributor to early defect removal."  The
analyzer runs on every edit (see :mod:`repro.env`) and reports *all*
problems at once, each tagged with a severity, a stable rule ID (the
``PITS0xx`` family of :mod:`repro.lint`), and a source line:

* errors — undeclared variables, assignment to inputs, unknown functions,
  wrong arity, an output that is never assigned, locals read before any
  assignment, scalar/array kind mismatches;
* warnings — variables that are never used, shadowed constants, statements
  that run after every output is already final.

The ``Diagnostic`` string format predates the rule registry and is kept
stable (``"error: line 3: ..."``); rule IDs surface through the
:mod:`repro.lint` renderers (text/JSON/SARIF).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.calc import ast
from repro.calc.builtins import CONSTANTS, lookup
from repro.calc.parser import parse
from repro.errors import CalcSyntaxError

# Compatibility alias: the canonical definition moved to repro.severity so
# the lint layer no longer reaches into the calculator for a shared enum.
from repro.severity import Severity

__all__ = ["Severity", "Diagnostic", "analyze", "errors", "is_clean"]


@dataclass(frozen=True)
class Diagnostic:
    severity: Severity
    message: str
    line: int = 0
    rule: str = ""

    def __str__(self) -> str:
        where = f"line {self.line}: " if self.line else ""
        return f"{self.severity.value}: {where}{self.message}"


#: Builtins whose result is an array (evidence for kind inference).
_ARRAY_FUNCS = frozenset({"zeros", "ones", "eye", "matmul", "matvec"})


def _is_constant(name: str) -> bool:
    return name in CONSTANTS or (name.lower() == name and name.upper() in CONSTANTS)


def analyze(program: ast.Program | str) -> list[Diagnostic]:
    """Return every diagnostic for a PITS program (empty list = clean).

    Accepts source text (syntax errors become a single ERROR diagnostic)
    or an already parsed program.  When source text is given, inline
    suppression comments are honored: ``# lint: disable=PITS016`` silences
    the named rule(s) on that line (or, on a comment-only line, on the
    following line), and ``# lint: disable-file=PITS007`` silences them for
    the whole program.
    """
    source: str | None = None
    if isinstance(program, str):
        source = program
        try:
            program = parse(program)
        except CalcSyntaxError as exc:
            return [Diagnostic(Severity.ERROR, str(exc), exc.line, rule="PITS001")]

    diags: list[Diagnostic] = []
    declared = program.declared
    assigned: set[str] = set(program.inputs)
    used: set[str] = set()
    loop_vars: set[str] = set()

    for name in program.inputs:
        if _is_constant(name):
            diags.append(
                Diagnostic(
                    Severity.WARNING,
                    f"input {name!r} shadows a constant",
                    rule="PITS009",
                )
            )

    stmts = ast.walk_stmts(program.body)
    for s in stmts:
        if isinstance(s, ast.For):
            loop_vars.add(s.var)

    all_vars = declared | loop_vars

    for s in stmts:
        for e in ast.stmt_exprs(s):
            if isinstance(e, ast.Name):
                if e.ident not in all_vars and not _is_constant(e.ident):
                    diags.append(
                        Diagnostic(
                            Severity.ERROR,
                            f"variable {e.ident!r} is not declared",
                            e.line,
                            rule="PITS002",
                        )
                    )
                used.add(e.ident)
            elif isinstance(e, ast.Index):
                if e.base not in all_vars and not _is_constant(e.base):
                    diags.append(
                        Diagnostic(
                            Severity.ERROR,
                            f"variable {e.base!r} is not declared",
                            e.line,
                            rule="PITS002",
                        )
                    )
                used.add(e.base)
            elif isinstance(e, ast.Call):
                if e.func == "display":
                    continue
                builtin = lookup(e.func)
                if builtin is None:
                    diags.append(
                        Diagnostic(
                            Severity.ERROR,
                            f"unknown function {e.func!r}",
                            e.line,
                            rule="PITS004",
                        )
                    )
                elif not builtin.check_arity(len(e.args)):
                    expected = (
                        str(builtin.min_args)
                        if builtin.min_args == builtin.max_args
                        else f"{builtin.min_args}..{builtin.max_args}"
                    )
                    diags.append(
                        Diagnostic(
                            Severity.ERROR,
                            f"{e.func}() takes {expected} argument(s), got {len(e.args)}",
                            e.line,
                            rule="PITS005",
                        )
                    )

        if isinstance(s, ast.Assign):
            target = s.target
            name = target.ident if isinstance(target, ast.Name) else target.base  # type: ignore[union-attr]
            if name in program.inputs:
                diags.append(
                    Diagnostic(
                        Severity.ERROR,
                        f"input {name!r} is read-only",
                        s.line,
                        rule="PITS003",
                    )
                )
            elif name not in all_vars:
                diags.append(
                    Diagnostic(
                        Severity.ERROR,
                        f"variable {name!r} is not declared "
                        "(add it to output or local)",
                        s.line,
                        rule="PITS002",
                    )
                )
            assigned.add(name)
            if isinstance(target, ast.Index):
                used.add(name)  # subscripted write reads the array too
        elif isinstance(s, ast.For):
            if s.var in program.inputs:
                diags.append(
                    Diagnostic(
                        Severity.ERROR,
                        f"loop variable {s.var!r} is an input",
                        s.line,
                        rule="PITS010",
                    )
                )
            assigned.add(s.var)

    # forall bodies must have independent iterations: every write inside
    # must target an array element whose first subscript is the loop
    # variable itself, so iterations touch disjoint locations
    for s in stmts:
        if isinstance(s, ast.For) and s.parallel:
            diags.extend(_check_forall(s))

    for name in program.outputs:
        if name not in assigned:
            diags.append(
                Diagnostic(
                    Severity.ERROR,
                    f"output {name!r} is never assigned",
                    rule="PITS006",
                )
            )
    for name in program.inputs:
        if name not in used:
            diags.append(
                Diagnostic(
                    Severity.WARNING,
                    f"input {name!r} is never used",
                    rule="PITS007",
                )
            )
    for name in program.locals:
        if name not in used and name not in assigned:
            diags.append(
                Diagnostic(
                    Severity.WARNING,
                    f"local {name!r} is never used",
                    rule="PITS008",
                )
            )

    diags.extend(_check_read_before_assign(program))
    diags.extend(_check_kinds(program, loop_vars))
    diags.extend(_check_dead_statements(program))

    # value-flow analysis (PITS1xx) — only meaningful once the program is
    # scope/kind clean, so it runs behind the error gate
    if not any(d.severity is Severity.ERROR for d in diags):
        from repro.analysis.absint import interpret

        diags.extend(interpret(program).diagnostics)

    if source is not None:
        diags = _apply_suppressions(source, diags)
    return diags


def _check_forall(loop: ast.For) -> list[Diagnostic]:
    """Disjoint-write rules for ``forall`` bodies."""
    diags: list[Diagnostic] = []
    for inner in ast.walk_stmts(loop.body):
        if isinstance(inner, ast.Assign):
            target = inner.target
            if isinstance(target, ast.Name):
                diags.append(
                    Diagnostic(
                        Severity.ERROR,
                        f"forall body assigns scalar {target.ident!r}; only "
                        f"elements indexed by {loop.var!r} may be written",
                        inner.line,
                        rule="PITS011",
                    )
                )
            elif isinstance(target, ast.Index):
                first = target.subscripts[0] if target.subscripts else None
                if not (isinstance(first, ast.Name) and first.ident == loop.var):
                    diags.append(
                        Diagnostic(
                            Severity.ERROR,
                            f"forall body writes {target.base!r} with first "
                            f"subscript not {loop.var!r}; iterations must "
                            "write disjoint elements",
                            inner.line,
                            rule="PITS012",
                        )
                    )
        elif isinstance(inner, ast.For) and inner.parallel:
            diags.append(
                Diagnostic(
                    Severity.ERROR,
                    "nested forall is not supported; make the inner loop a "
                    "plain for",
                    inner.line,
                    rule="PITS013",
                )
            )
        elif isinstance(inner, ast.CallStmt) and inner.call.func == "display":
            diags.append(
                Diagnostic(
                    Severity.WARNING,
                    "display inside forall prints in nondeterministic order "
                    "once the node is split",
                    inner.line,
                    rule="PITS014",
                )
            )
    return diags


def _check_read_before_assign(program: ast.Program) -> list[Diagnostic]:
    """Flag locals that are read at a point no assignment can precede.

    Statements are walked in execution order (``repeat`` bodies before their
    conditions, loop bounds before bodies).  Branches are treated as
    *may-assign*: a variable assigned in any arm of an ``if`` counts as
    assigned afterwards, so only reads that are unreachable by every path
    are flagged — conservative, no false positives from branchy code.
    """
    local_vars = set(program.locals)
    diags: list[Diagnostic] = []
    reported: set[str] = set()

    def read(name: str, line: int, assigned: set[str]) -> None:
        if name in local_vars and name not in assigned and name not in reported:
            reported.add(name)
            diags.append(
                Diagnostic(
                    Severity.ERROR,
                    f"local {name!r} is read before it is assigned",
                    line,
                    rule="PITS015",
                )
            )

    def read_expr(e: ast.Expr, assigned: set[str]) -> None:
        for sub in ast.walk_exprs(e):
            if isinstance(sub, ast.Name):
                read(sub.ident, sub.line, assigned)
            elif isinstance(sub, ast.Index):
                read(sub.base, sub.line, assigned)

    def visit(stmts: tuple[ast.Stmt, ...], assigned: set[str]) -> set[str]:
        for s in stmts:
            if isinstance(s, ast.Assign):
                read_expr(s.value, assigned)
                if isinstance(s.target, ast.Index):
                    for sub in s.target.subscripts:
                        read_expr(sub, assigned)
                    # writing one element reads (requires) the whole array
                    read(s.target.base, s.line, assigned)
                    assigned.add(s.target.base)
                else:
                    assigned.add(s.target.ident)  # type: ignore[union-attr]
            elif isinstance(s, ast.If):
                read_expr(s.cond, assigned)
                for cond, _ in s.elifs:
                    read_expr(cond, assigned)
                branch_assigns: set[str] = set()
                for block in (s.then, *(b for _, b in s.elifs), s.orelse):
                    branch_assigns |= visit(block, set(assigned))
                assigned |= branch_assigns
            elif isinstance(s, ast.While):
                read_expr(s.cond, assigned)
                assigned |= visit(s.body, set(assigned))
            elif isinstance(s, ast.For):
                read_expr(s.start, assigned)
                read_expr(s.stop, assigned)
                if s.step is not None:
                    read_expr(s.step, assigned)
                assigned.add(s.var)
                assigned |= visit(s.body, set(assigned))
            elif isinstance(s, ast.Repeat):
                body_assigned = visit(s.body, set(assigned))
                read_expr(s.cond, body_assigned)
                assigned |= body_assigned
            elif isinstance(s, ast.CallStmt):
                read_expr(s.call, assigned)
        return assigned

    visit(program.body, set(program.inputs))
    return diags


def _check_kinds(program: ast.Program, loop_vars: set[str]) -> list[Diagnostic]:
    """Scalar-vs-array kind inference with mismatch errors.

    Evidence is deliberately conservative: a variable is *array-like* when
    it is subscripted or whole-assigned from an array constructor / literal,
    *scalar-only* when its whole-variable assignments are all scalar
    literals.  Only contradictions are reported.
    """
    diags: list[Diagnostic] = []
    indexed: dict[str, int] = {}          # var -> first line used as v[...]
    scalar_assigned: dict[str, int] = {}  # var -> line of a scalar-literal assign
    array_assigned: set[str] = set()

    for s in ast.walk_stmts(program.body):
        for e in ast.stmt_exprs(s):
            for sub in ast.walk_exprs(e):
                if isinstance(sub, ast.Index):
                    indexed.setdefault(sub.base, sub.line)
        if isinstance(s, ast.Assign):
            if isinstance(s.target, ast.Index):
                indexed.setdefault(s.target.base, s.line)
            elif isinstance(s.target, ast.Name):
                value = s.value
                if isinstance(value, (ast.Num, ast.BoolLit, ast.Str)):
                    scalar_assigned.setdefault(s.target.ident, s.line)
                elif isinstance(value, ast.ArrayLit) or (
                    isinstance(value, ast.Call) and value.func in _ARRAY_FUNCS
                ):
                    array_assigned.add(s.target.ident)
                elif isinstance(value, ast.Binary):
                    # e.g. ``C := matmul(A, B) + matmul(C, D)`` is array-like
                    parts = (value.left, value.right)
                    if any(
                        isinstance(p, ast.Call) and p.func in _ARRAY_FUNCS
                        for p in parts
                    ) or any(isinstance(p, ast.ArrayLit) for p in parts):
                        array_assigned.add(s.target.ident)

    for var, line in sorted(indexed.items(), key=lambda kv: kv[1]):
        if var in loop_vars:
            diags.append(
                Diagnostic(
                    Severity.ERROR,
                    f"loop variable {var!r} is a scalar but is subscripted "
                    "like an array",
                    line,
                    rule="PITS016",
                )
            )
        elif (
            var in scalar_assigned
            and var not in array_assigned
            and var not in program.inputs
        ):
            diags.append(
                Diagnostic(
                    Severity.ERROR,
                    f"variable {var!r} is subscripted like an array but is "
                    "only ever assigned a scalar",
                    line,
                    rule="PITS016",
                )
            )
    return diags


def _stmt_matters(s: ast.Stmt, outputs: frozenset[str]) -> bool:
    """True when ``s`` (or anything nested in it) can still affect a result:
    it assigns an output variable or performs I/O (a bare call)."""
    for inner in ast.walk_stmts((s,)):
        if isinstance(inner, ast.Assign):
            target = inner.target
            name = target.ident if isinstance(target, ast.Name) else target.base  # type: ignore[union-attr]
            if name in outputs:
                return True
        elif isinstance(inner, ast.CallStmt):
            return True
    return False


def _check_dead_statements(program: ast.Program) -> list[Diagnostic]:
    """Warn about top-level statements after every output is finalized."""
    outputs = frozenset(program.outputs)
    if not outputs:
        return []
    last_live = -1
    for i, s in enumerate(program.body):
        if _stmt_matters(s, outputs):
            last_live = i
    if last_live < 0:  # no output ever assigned: PITS006 already fired
        return []
    return [
        Diagnostic(
            Severity.WARNING,
            "statement runs after every output is already final and cannot "
            "affect the result",
            s.line,
            rule="PITS017",
        )
        for s in program.body[last_live + 1:]
    ]


#: ``# lint: disable=RULE1,RULE2`` / ``# lint: disable-file=RULE``.
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)


def _apply_suppressions(
    source: str, diags: list[Diagnostic]
) -> list[Diagnostic]:
    """Drop diagnostics silenced by inline ``# lint: disable=`` comments."""
    per_line: dict[int, set[str]] = {}
    whole_file: set[str] = set()
    for lineno, text in enumerate(source.splitlines(), 1):
        m = _SUPPRESS_RE.search(text)
        if m is None:
            continue
        rules = {r.strip().upper() for r in m.group(2).split(",") if r.strip()}
        if m.group(1) == "disable-file":
            whole_file |= rules
        else:
            per_line.setdefault(lineno, set()).update(rules)
            if not text[: text.index("#")].strip():
                # a comment-only directive governs the line below it
                per_line.setdefault(lineno + 1, set()).update(rules)
    if not per_line and not whole_file:
        return diags
    return [
        d
        for d in diags
        if d.rule not in whole_file
        and not (d.line and d.rule in per_line.get(d.line, ()))
    ]


def errors(program: ast.Program | str) -> list[Diagnostic]:
    return [d for d in analyze(program) if d.severity is Severity.ERROR]


def is_clean(program: ast.Program | str) -> bool:
    """True when the program has no ERROR-severity diagnostics."""
    return not errors(program)
