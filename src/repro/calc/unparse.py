"""Pretty-printer: PITS AST back to source text.

Used by the node-splitting transform (:mod:`repro.graph.transform`), which
rewrites a routine's AST and must hand the result back to the environment
as ordinary source.  Round-trip property (tested):
``parse(unparse(parse(src)))`` behaves identically to ``parse(src)``.
"""

from __future__ import annotations

from repro.calc import ast
from repro.errors import CalcError

_INDENT = "  "

#: Operators whose mixing warrants parentheses; we parenthesise every
#: nested binary expression instead of tracking precedence — the output is
#: for machines first, humans second, and re-parses identically.
_BOOL_OPS = ("and", "or")


def unparse_expr(e: ast.Expr) -> str:
    if isinstance(e, ast.Num):
        if e.value == int(e.value) and abs(e.value) < 1e15:
            return str(int(e.value))
        return repr(e.value)
    if isinstance(e, ast.BoolLit):
        return "true" if e.value else "false"
    if isinstance(e, ast.Str):
        return f'"{e.value}"'
    if isinstance(e, ast.Name):
        return e.ident
    if isinstance(e, ast.Index):
        subs = ", ".join(unparse_expr(s) for s in e.subscripts)
        return f"{e.base}[{subs}]"
    if isinstance(e, ast.Unary):
        inner = unparse_expr(e.operand)
        if e.op == "not":
            return f"not ({inner})"
        return f"{e.op}({inner})"
    if isinstance(e, ast.Binary):
        return f"({unparse_expr(e.left)} {e.op} {unparse_expr(e.right)})"
    if isinstance(e, ast.Call):
        args = ", ".join(unparse_expr(a) for a in e.args)
        return f"{e.func}({args})"
    if isinstance(e, ast.ArrayLit):
        items = ", ".join(unparse_expr(x) for x in e.elements)
        return f"[{items}]"
    raise CalcError(f"cannot unparse {type(e).__name__}")


def _unparse_stmt(s: ast.Stmt, depth: int) -> list[str]:
    pad = _INDENT * depth
    if isinstance(s, ast.Assign):
        return [f"{pad}{unparse_expr(s.target)} := {unparse_expr(s.value)}"]
    if isinstance(s, ast.If):
        lines = [f"{pad}if {unparse_expr(s.cond)} then"]
        lines += _unparse_block(s.then, depth + 1)
        for cond, block in s.elifs:
            lines.append(f"{pad}elif {unparse_expr(cond)} then")
            lines += _unparse_block(block, depth + 1)
        if s.orelse:
            lines.append(f"{pad}else")
            lines += _unparse_block(s.orelse, depth + 1)
        lines.append(f"{pad}end")
        return lines
    if isinstance(s, ast.While):
        return (
            [f"{pad}while {unparse_expr(s.cond)} do"]
            + _unparse_block(s.body, depth + 1)
            + [f"{pad}end"]
        )
    if isinstance(s, ast.Repeat):
        return (
            [f"{pad}repeat"]
            + _unparse_block(s.body, depth + 1)
            + [f"{pad}until {unparse_expr(s.cond)}"]
        )
    if isinstance(s, ast.For):
        kw = "forall" if s.parallel else "for"
        header = f"{pad}{kw} {s.var} := {unparse_expr(s.start)} to {unparse_expr(s.stop)}"
        if s.step is not None:
            header += f" step {unparse_expr(s.step)}"
        header += " do"
        return [header] + _unparse_block(s.body, depth + 1) + [f"{pad}end"]
    if isinstance(s, ast.CallStmt):
        return [f"{pad}{unparse_expr(s.call)}"]
    raise CalcError(f"cannot unparse {type(s).__name__}")


def _unparse_block(stmts: tuple[ast.Stmt, ...], depth: int) -> list[str]:
    out: list[str] = []
    for s in stmts:
        out += _unparse_stmt(s, depth)
    return out


def unparse(program: ast.Program) -> str:
    """Full source text of a PITS program."""
    lines: list[str] = []
    if program.name:
        lines.append(f"task {program.name}")
    if program.inputs:
        lines.append("input " + ", ".join(program.inputs))
    if program.outputs:
        lines.append("output " + ", ".join(program.outputs))
    if program.locals:
        lines.append("local " + ", ".join(program.locals))
    lines += _unparse_block(program.body, 0)
    return "\n".join(lines) + "\n"
