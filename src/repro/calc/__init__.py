"""The PITS calculator language — "programming-in-the-small".

Public surface:

* :func:`parse` / :func:`parse_expression` — source → AST;
* :func:`run_program` / :func:`eval_expression` / :class:`Interpreter` —
  execution with operation metering;
* :func:`analyze` / :func:`is_clean` — instant-feedback static checks;
* :func:`estimate_work` / :func:`measure_work` — task weights for PITL;
* :class:`CalculatorPanel` — the Figure 4 button panel as a state machine;
* :data:`LIBRARY` / :func:`stock` — ready-made routines (Newton sqrt, ...).
"""

from repro.calc.analyze import Diagnostic, Severity, analyze, errors, is_clean
from repro.calc.builtins import BUILTINS, CONSTANTS, Builtin, lookup
from repro.calc.cost import estimate_work, measure_work
from repro.calc.interp import (
    DEFAULT_STEP_LIMIT,
    Interpreter,
    RunResult,
    eval_expression,
    run_program,
)
from repro.calc.lexer import tokenize
from repro.calc.panel import CalculatorPanel, all_buttons
from repro.calc.profile import LineStats, ProfileResult, profile_program
from repro.calc.parser import parse, parse_expression
from repro.calc.library import LIBRARY, stock
from repro.calc.unparse import unparse, unparse_expr

__all__ = [
    "BUILTINS",
    "Builtin",
    "CONSTANTS",
    "CalculatorPanel",
    "DEFAULT_STEP_LIMIT",
    "Diagnostic",
    "Interpreter",
    "LIBRARY",
    "LineStats",
    "ProfileResult",
    "profile_program",
    "RunResult",
    "Severity",
    "all_buttons",
    "analyze",
    "errors",
    "estimate_work",
    "eval_expression",
    "is_clean",
    "lookup",
    "measure_work",
    "parse",
    "parse_expression",
    "run_program",
    "stock",
    "tokenize",
    "unparse",
    "unparse_expr",
]
