"""Scientific function buttons of the calculator, and their cost model.

Each builtin carries an operation-count estimate so the interpreter can
meter how much "work" a PITS routine does — that figure becomes the task's
weight in the scheduling layer (closing the loop between PITS and PITL).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.errors import CalcRuntimeError, CalcTypeError

Value = Any  # float | bool | str | np.ndarray


def _scalar(x: Value, fn: str) -> float:
    if isinstance(x, bool):
        raise CalcTypeError(f"{fn}() expects a number, got a boolean")
    if isinstance(x, (int, float)):
        return float(x)
    raise CalcTypeError(f"{fn}() expects a number, got {type(x).__name__}")


def _array(x: Value, fn: str) -> np.ndarray:
    if isinstance(x, np.ndarray):
        return x
    raise CalcTypeError(f"{fn}() expects a vector or matrix, got {type(x).__name__}")


def _size_cost(x: Value) -> float:
    return float(x.size) if isinstance(x, np.ndarray) else 1.0


@dataclass(frozen=True)
class Builtin:
    """One function button: implementation, arity range, and op-count."""

    name: str
    fn: Callable[..., Value]
    min_args: int
    max_args: int
    cost: Callable[..., float]
    doc: str = ""

    def check_arity(self, n: int) -> bool:
        return self.min_args <= n <= self.max_args


def _guard_domain(fn: Callable[..., float], name: str) -> Callable[..., float]:
    def wrapped(*args: float) -> float:
        try:
            return fn(*args)
        except (ValueError, OverflowError) as exc:
            raise CalcRuntimeError(f"{name}({', '.join(map(str, args))}): {exc}") from None

    return wrapped


def _make_zeros(n: Value, m: Value | None = None) -> np.ndarray:
    rows = int(_scalar(n, "zeros"))
    if rows < 0:
        raise CalcRuntimeError(f"zeros(): negative size {rows}")
    if m is None:
        return np.zeros(rows)
    cols = int(_scalar(m, "zeros"))
    if cols < 0:
        raise CalcRuntimeError(f"zeros(): negative size {cols}")
    return np.zeros((rows, cols))


def _make_ones(n: Value, m: Value | None = None) -> np.ndarray:
    z = _make_zeros(n, m)
    z += 1.0
    return z


def _dot(u: Value, v: Value) -> float:
    a, b = _array(u, "dot"), _array(v, "dot")
    if a.ndim != 1 or b.ndim != 1:
        raise CalcTypeError("dot() expects two vectors")
    if a.shape != b.shape:
        raise CalcRuntimeError(f"dot(): length mismatch {a.shape[0]} vs {b.shape[0]}")
    return float(a @ b)


def _matvec(A: Value, x: Value) -> np.ndarray:
    a, v = _array(A, "matvec"), _array(x, "matvec")
    if a.ndim != 2 or v.ndim != 1:
        raise CalcTypeError("matvec() expects a matrix and a vector")
    if a.shape[1] != v.shape[0]:
        raise CalcRuntimeError(f"matvec(): shape mismatch {a.shape} x {v.shape}")
    return a @ v


def _matmul(A: Value, B: Value) -> np.ndarray:
    a, b = _array(A, "matmul"), _array(B, "matmul")
    if a.ndim != 2 or b.ndim != 2:
        raise CalcTypeError("matmul() expects two matrices")
    if a.shape[1] != b.shape[0]:
        raise CalcRuntimeError(f"matmul(): shape mismatch {a.shape} x {b.shape}")
    return a @ b


def _len(x: Value) -> float:
    a = _array(x, "len")
    return float(a.shape[0])


def _rows(x: Value) -> float:
    a = _array(x, "rows")
    return float(a.shape[0])


def _cols(x: Value) -> float:
    a = _array(x, "cols")
    if a.ndim == 1:
        return 1.0
    return float(a.shape[1])


def _mean(x: Value) -> float:
    a = _array(x, "mean")
    if a.size == 0:
        raise CalcRuntimeError("mean() of an empty array")
    return float(np.mean(a))


def _minmax(fn: Callable, name: str) -> Callable[..., float]:
    def wrapped(*args: Value) -> float:
        if len(args) == 1 and isinstance(args[0], np.ndarray):
            if args[0].size == 0:
                raise CalcRuntimeError(f"{name}() of an empty array")
            return float(fn(args[0].ravel()))
        return float(fn(_scalar(a, name) for a in args))

    return wrapped


_B: list[Builtin] = []


def _register(
    name: str,
    fn: Callable[..., Value],
    min_args: int,
    max_args: int | None = None,
    cost: Callable[..., float] | None = None,
    doc: str = "",
) -> None:
    _B.append(
        Builtin(
            name=name,
            fn=fn,
            min_args=min_args,
            max_args=max_args if max_args is not None else min_args,
            cost=cost or (lambda *a: 1.0),
            doc=doc,
        )
    )


_TRANSCENDENTAL_COST = lambda *a: 4.0

_register("abs", lambda x: abs(_scalar(x, "abs")) if not isinstance(x, np.ndarray) else np.abs(x),
          1, cost=_size_cost, doc="absolute value (elementwise on arrays)")
_register("sqrt", _guard_domain(lambda x: math.sqrt(_scalar(x, "sqrt")), "sqrt"), 1,
          cost=lambda x: 2.0, doc="square root")
_register("sin", lambda x: math.sin(_scalar(x, "sin")), 1, cost=_TRANSCENDENTAL_COST, doc="sine (radians)")
_register("cos", lambda x: math.cos(_scalar(x, "cos")), 1, cost=_TRANSCENDENTAL_COST, doc="cosine (radians)")
_register("tan", lambda x: math.tan(_scalar(x, "tan")), 1, cost=_TRANSCENDENTAL_COST, doc="tangent (radians)")
_register("asin", _guard_domain(lambda x: math.asin(_scalar(x, "asin")), "asin"), 1, cost=_TRANSCENDENTAL_COST)
_register("acos", _guard_domain(lambda x: math.acos(_scalar(x, "acos")), "acos"), 1, cost=_TRANSCENDENTAL_COST)
_register("atan", lambda x: math.atan(_scalar(x, "atan")), 1, cost=_TRANSCENDENTAL_COST)
_register("atan2", lambda y, x: math.atan2(_scalar(y, "atan2"), _scalar(x, "atan2")), 2, cost=_TRANSCENDENTAL_COST)
_register("exp", _guard_domain(lambda x: math.exp(_scalar(x, "exp")), "exp"), 1, cost=_TRANSCENDENTAL_COST)
_register("ln", _guard_domain(lambda x: math.log(_scalar(x, "ln")), "ln"), 1, cost=_TRANSCENDENTAL_COST)
_register("log10", _guard_domain(lambda x: math.log10(_scalar(x, "log10")), "log10"), 1, cost=_TRANSCENDENTAL_COST)
_register("pow", _guard_domain(lambda x, y: math.pow(_scalar(x, "pow"), _scalar(y, "pow")), "pow"), 2,
          cost=_TRANSCENDENTAL_COST)
_register("sinh", _guard_domain(lambda x: math.sinh(_scalar(x, "sinh")), "sinh"), 1, cost=_TRANSCENDENTAL_COST)
_register("cosh", _guard_domain(lambda x: math.cosh(_scalar(x, "cosh")), "cosh"), 1, cost=_TRANSCENDENTAL_COST)
_register("tanh", lambda x: math.tanh(_scalar(x, "tanh")), 1, cost=_TRANSCENDENTAL_COST)
_register("hypot", lambda x, y: math.hypot(_scalar(x, "hypot"), _scalar(y, "hypot")), 2,
          cost=_TRANSCENDENTAL_COST, doc="sqrt(x^2 + y^2) without overflow")
_register("deg", lambda x: math.degrees(_scalar(x, "deg")), 1, doc="radians to degrees")
_register("rad", lambda x: math.radians(_scalar(x, "rad")), 1, doc="degrees to radians")
_register("clamp", lambda x, lo, hi: float(min(max(_scalar(x, "clamp"), _scalar(lo, "clamp")),
                                               _scalar(hi, "clamp"))), 3,
          doc="x limited to [lo, hi]")
_register("floor", lambda x: float(math.floor(_scalar(x, "floor"))), 1)
_register("ceil", lambda x: float(math.ceil(_scalar(x, "ceil"))), 1)
_register("round", lambda x: float(round(_scalar(x, "round"))), 1)
_register("sign", lambda x: float(np.sign(_scalar(x, "sign"))), 1)
_register("min", _minmax(min, "min"), 1, 8, cost=lambda *a: sum(map(_size_cost, a)),
          doc="minimum of scalars or of one array")
_register("max", _minmax(max, "max"), 1, 8, cost=lambda *a: sum(map(_size_cost, a)),
          doc="maximum of scalars or of one array")
_register("len", _len, 1, doc="first dimension of an array")
_register("rows", _rows, 1, doc="row count of an array")
_register("cols", _cols, 1, doc="column count of a matrix (1 for vectors)")
_register("zeros", _make_zeros, 1, 2, cost=lambda *a: 1.0, doc="zero vector or matrix")
_register("ones", _make_ones, 1, 2, cost=lambda *a: 1.0, doc="all-ones vector or matrix")
_register("eye", lambda n: np.eye(int(_scalar(n, "eye"))), 1, doc="identity matrix")
_register("dot", _dot, 2, cost=lambda u, v: 2.0 * _size_cost(u), doc="vector dot product")
_register("matvec", _matvec, 2, cost=lambda A, x: 2.0 * _size_cost(A), doc="matrix-vector product")
_register("matmul", _matmul, 2,
          cost=lambda A, B: 2.0 * _size_cost(A) * (B.shape[1] if isinstance(B, np.ndarray) and B.ndim == 2 else 1),
          doc="matrix-matrix product")
_register("transpose", lambda A: _array(A, "transpose").T.copy(), 1, cost=_size_cost)
_register("sum", lambda x: float(np.sum(_array(x, "sum"))), 1, cost=_size_cost)
_register("mean", _mean, 1, cost=_size_cost)
_register("norm", lambda x: float(np.linalg.norm(_array(x, "norm"))), 1, cost=lambda x: 2.0 * _size_cost(x))
_register("copy", lambda x: x.copy() if isinstance(x, np.ndarray) else x, 1, cost=_size_cost,
          doc="defensive copy of an array")

#: name -> Builtin
BUILTINS: dict[str, Builtin] = {b.name: b for b in _B}

#: Constant buttons of the panel.
CONSTANTS: dict[str, float] = {
    "PI": math.pi,
    "E": math.e,
    "TAU": math.tau,
    "EPS": 2.220446049250313e-16,
}


def lookup(name: str) -> Builtin | None:
    return BUILTINS.get(name.lower())
