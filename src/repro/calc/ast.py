"""Abstract syntax of PITS programs.

A :class:`Program` mirrors the calculator panel of the paper's Figure 4: the
input/output variable window (``inputs``/``outputs``), the local-variable
window (``locals``), and the program window (``body``).  All AST nodes carry
their source line for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# --------------------------------------------------------------------- #
# expressions
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Expr:
    line: int = field(default=0, kw_only=True)


@dataclass(frozen=True)
class Num(Expr):
    value: float


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool


@dataclass(frozen=True)
class Str(Expr):
    value: str


@dataclass(frozen=True)
class Name(Expr):
    ident: str


@dataclass(frozen=True)
class Index(Expr):
    """1-based subscripting: ``v[i]`` or ``A[i, j]``."""

    base: str
    subscripts: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class Unary(Expr):
    op: str = ""  # "-", "+", "not"
    operand: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Binary(Expr):
    op: str = ""  # arithmetic, comparison, "and"/"or"
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Call(Expr):
    func: str = ""
    args: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class ArrayLit(Expr):
    """``[1, 2, 3]`` (vector) or ``[[1, 2], [3, 4]]`` (matrix)."""

    elements: tuple[Expr, ...] = ()


# --------------------------------------------------------------------- #
# statements
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Stmt:
    line: int = field(default=0, kw_only=True)


@dataclass(frozen=True)
class Assign(Stmt):
    """``target := expr`` where target is a Name or Index."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: tuple[Stmt, ...] = ()
    elifs: tuple[tuple[Expr, tuple[Stmt, ...]], ...] = ()
    orelse: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class For(Stmt):
    """``for var := start to stop [step s] do ... end`` (inclusive stop).

    ``parallel=True`` marks a ``forall`` — the data-parallel variant whose
    iterations are independent (the analyzer enforces disjoint writes), so
    the environment may split the node across processors
    (:mod:`repro.graph.transform`).  Sequential execution is always a valid
    serialization, so the interpreter treats both forms identically.
    """

    var: str = ""
    start: Expr = None  # type: ignore[assignment]
    stop: Expr = None  # type: ignore[assignment]
    step: Expr | None = None
    body: tuple[Stmt, ...] = ()
    parallel: bool = False


@dataclass(frozen=True)
class Repeat(Stmt):
    """``repeat ... until cond`` — body runs at least once."""

    body: tuple[Stmt, ...] = ()
    cond: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class CallStmt(Stmt):
    """A bare call used for effect, e.g. ``display(x)``."""

    call: Call = None  # type: ignore[assignment]


# --------------------------------------------------------------------- #
# program
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Program:
    """A complete PITS routine for one dataflow node."""

    name: str = ""
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    locals: tuple[str, ...] = ()
    body: tuple[Stmt, ...] = ()

    @property
    def declared(self) -> frozenset[str]:
        return frozenset(self.inputs) | frozenset(self.outputs) | frozenset(self.locals)


def walk_exprs(node: Expr) -> list[Expr]:
    """All sub-expressions of ``node``, preorder (node first)."""
    out: list[Expr] = [node]
    if isinstance(node, Unary):
        out += walk_exprs(node.operand)
    elif isinstance(node, Binary):
        out += walk_exprs(node.left) + walk_exprs(node.right)
    elif isinstance(node, Call):
        for a in node.args:
            out += walk_exprs(a)
    elif isinstance(node, Index):
        for s in node.subscripts:
            out += walk_exprs(s)
    elif isinstance(node, ArrayLit):
        for e in node.elements:
            out += walk_exprs(e)
    return out


def walk_stmts(stmts: tuple[Stmt, ...]) -> list[Stmt]:
    """All statements, preorder, including nested blocks."""
    out: list[Stmt] = []
    for s in stmts:
        out.append(s)
        if isinstance(s, If):
            out += walk_stmts(s.then)
            for _, block in s.elifs:
                out += walk_stmts(block)
            out += walk_stmts(s.orelse)
        elif isinstance(s, (While,)):
            out += walk_stmts(s.body)
        elif isinstance(s, For):
            out += walk_stmts(s.body)
        elif isinstance(s, Repeat):
            out += walk_stmts(s.body)
    return out


def stmt_exprs(s: Stmt) -> list[Expr]:
    """The expressions directly attached to one statement (not nested stmts)."""
    if isinstance(s, Assign):
        exprs = walk_exprs(s.value)
        if isinstance(s.target, Index):
            for sub in s.target.subscripts:
                exprs += walk_exprs(sub)
        return exprs
    if isinstance(s, If):
        out = walk_exprs(s.cond)
        for cond, _ in s.elifs:
            out += walk_exprs(cond)
        return out
    if isinstance(s, While):
        return walk_exprs(s.cond)
    if isinstance(s, Repeat):
        return walk_exprs(s.cond)
    if isinstance(s, For):
        out = walk_exprs(s.start) + walk_exprs(s.stop)
        if s.step is not None:
            out += walk_exprs(s.step)
        return out
    if isinstance(s, CallStmt):
        return walk_exprs(s.call)
    return []
