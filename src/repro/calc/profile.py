"""A line profiler for PITS routines — instant feedback about *cost*.

Trial runs tell a designer what a routine computes; the profiler tells them
where its operations go, line by line, so they know what to move into a
``forall`` or split into another node.  Implemented as a thin subclass of
the interpreter that attributes the operation counter to the line of the
statement being executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.calc import ast
from repro.calc.interp import DEFAULT_STEP_LIMIT, Interpreter, RunResult


@dataclass
class LineStats:
    line: int
    hits: int = 0
    ops: float = 0.0


@dataclass
class ProfileResult:
    """Per-line execution statistics plus the ordinary run result."""

    run: RunResult
    lines: dict[int, LineStats] = field(default_factory=dict)
    source: str = ""

    def hottest(self, k: int = 3) -> list[LineStats]:
        return sorted(self.lines.values(), key=lambda s: -s.ops)[:k]

    def render(self) -> str:
        src_lines = self.source.splitlines()
        total = max(self.run.ops, 1e-12)
        out = [f"{'line':>5} {'hits':>7} {'ops':>10} {'%':>5}  source"]
        for number, text in enumerate(src_lines, start=1):
            stats = self.lines.get(number)
            if stats is None:
                out.append(f"{number:>5} {'':>7} {'':>10} {'':>5}  {text}")
            else:
                share = stats.ops / total
                out.append(
                    f"{number:>5} {stats.hits:>7} {stats.ops:>10.0f} "
                    f"{share:>5.0%}  {text}"
                )
        out.append(f"total: {self.run.ops:.0f} ops, {self.run.steps} steps")
        return "\n".join(out)


class _ProfilingInterpreter(Interpreter):
    """Charges each statement the ops it consumed *itself*: the delta of
    the global counter across its execution minus whatever its nested
    statements charged to their own lines during that execution."""

    def __init__(self, program, step_limit: int = DEFAULT_STEP_LIMIT):
        super().__init__(program, step_limit=step_limit)
        self.line_stats: dict[int, LineStats] = {}
        self._charged = 0.0

    def _exec_stmt(self, s: ast.Stmt) -> None:
        stats = self.line_stats.setdefault(s.line, LineStats(line=s.line))
        stats.hits += 1
        before_ops = self.ops
        before_charged = self._charged
        super()._exec_stmt(s)
        gained = self.ops - before_ops
        nested_charged = self._charged - before_charged
        own = max(gained - nested_charged, 0.0)
        stats.ops += own
        self._charged = before_charged + nested_charged + own


def profile_program(
    source: str, step_limit: int = DEFAULT_STEP_LIMIT, **inputs: Any
) -> ProfileResult:
    """Trial-run ``source`` and attribute operation counts to lines.

    Block statements (loops, ifs) report their header cost; their bodies'
    costs appear on the body lines.  Column totals equal the run's total.
    """
    interp = _ProfilingInterpreter(source, step_limit=step_limit)
    run = interp.run(**inputs)
    return ProfileResult(run=run, lines=dict(interp.line_stats), source=source)
