"""Tokenizer for the PITS calculator language."""

from __future__ import annotations

from repro.calc.tokens import KEYWORDS, OPERATORS, Token, TokenType
from repro.errors import CalcSyntaxError


def tokenize(source: str) -> list[Token]:
    """Convert PITS source text into a token list ending with EOF.

    Comments run from ``#`` to end of line.  Newlines are significant (they
    terminate statements) and are emitted as NEWLINE tokens; consecutive
    blank lines collapse to one.
    """
    tokens: list[Token] = []
    line, col = 1, 1
    i = 0
    n = len(source)

    def push(type_: TokenType, value: str, l: int, c: int) -> None:
        if type_ is TokenType.NEWLINE and (not tokens or tokens[-1].type is TokenType.NEWLINE):
            return
        tokens.append(Token(type_, value, l, c))

    while i < n:
        ch = source[i]

        if ch == "\n":
            push(TokenType.NEWLINE, "\n", line, col)
            i += 1
            line += 1
            col = 1
            continue

        if ch in " \t\r":
            i += 1
            col += 1
            continue

        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue

        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start, start_col = i, col
            seen_dot = False
            seen_exp = False
            while i < n:
                c2 = source[i]
                if c2.isdigit():
                    i += 1
                elif c2 == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c2 in "eE" and not seen_exp and i + 1 < n and (
                    source[i + 1].isdigit()
                    or (source[i + 1] in "+-" and i + 2 < n and source[i + 2].isdigit())
                ):
                    seen_exp = True
                    i += 1
                    if source[i] in "+-":
                        i += 1
                else:
                    break
            text = source[start:i]
            col += i - start
            push(TokenType.NUMBER, text, line, start_col)
            continue

        if ch.isalpha() or ch == "_":
            start, start_col = i, col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            col += i - start
            low = text.lower()
            if low in KEYWORDS:
                push(TokenType.KEYWORD, low, line, start_col)
            else:
                push(TokenType.IDENT, text, line, start_col)
            continue

        if ch == '"':
            start_col = col
            i += 1
            col += 1
            chars: list[str] = []
            while i < n and source[i] != '"':
                if source[i] == "\n":
                    raise CalcSyntaxError("unterminated string literal", line, start_col)
                chars.append(source[i])
                i += 1
                col += 1
            if i >= n:
                raise CalcSyntaxError("unterminated string literal", line, start_col)
            i += 1
            col += 1
            push(TokenType.STRING, "".join(chars), line, start_col)
            continue

        for op in OPERATORS:
            if source.startswith(op, i):
                push(TokenType.OP, op, line, col)
                i += len(op)
                col += len(op)
                break
        else:
            raise CalcSyntaxError(f"unexpected character {ch!r}", line, col)

    push(TokenType.NEWLINE, "\n", line, col)
    tokens.append(Token(TokenType.EOF, "", line, col))
    return tokens
