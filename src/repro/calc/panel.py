"""The programmable pocket calculator panel (the paper's Figure 4), sans pixels.

The GUI of Figure 4 has four regions: an input/output-variable window (upper
right), a local-variable window (upper left), a panel of programming buttons
(upper middle), and a textual program window (bottom).  This class models
that interaction as a state machine driven by :meth:`press`, so every
behaviour the paper shows — entering the Newton–Raphson SquareRoot routine
button by button, evaluating an expression on demand, trial-running the task
— is exercised programmatically and covered by tests.
"""

from __future__ import annotations

from typing import Any

from repro.calc.analyze import Diagnostic, analyze
from repro.calc.builtins import BUILTINS, CONSTANTS
from repro.calc.interp import RunResult, eval_expression, run_program
from repro.errors import CalcError

#: Button categories, used by the ASCII renderer and for validation.
DIGIT_BUTTONS = tuple("0123456789") + (".",)
OPERATOR_BUTTONS = ("+", "-", "*", "/", "^", "%", "(", ")", "[", "]", ",", ":=",
                    "=", "<>", "<", "<=", ">", ">=")
KEYWORD_BUTTONS = (
    "if", "then", "else", "elif", "end", "while", "do",
    "for", "to", "step", "repeat", "until", "and", "or", "not",
    "true", "false",
)
FUNCTION_BUTTONS = tuple(sorted(BUILTINS)) + ("display",)
CONSTANT_BUTTONS = tuple(sorted(CONSTANTS))
EDIT_BUTTONS = ("ENTER", "CLEAR", "BACKSPACE", "CLEAR-ALL")

#: Tokens that glue to the following token without a space when rendered.
_NO_SPACE_AFTER = frozenset({"(", "["})
_NO_SPACE_BEFORE = frozenset({")", "]", ",", "(", "["})


class CalculatorPanel:
    """A Banger PITS calculator for one dataflow node.

    Parameters
    ----------
    task_name:
        Name shown in the title bar (and emitted as the ``task`` header).
    """

    def __init__(self, task_name: str = ""):
        self.task_name = task_name
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self.locals: list[str] = []
        self.lines: list[str] = []
        self._entry: list[str] = []  # tokens of the line being typed
        self._digits: str = ""  # digit accumulator
        self.register: Any = None  # last evaluated value (the display)
        self.memory: dict[str, Any] = {}  # sample bindings for "="

    # ------------------------------------------------------------------ #
    # variable windows
    # ------------------------------------------------------------------ #
    def _declare(self, bucket: list[str], names: tuple[str, ...]) -> None:
        for name in names:
            if not name.isidentifier():
                raise CalcError(f"{name!r} is not a valid variable name")
            if any(name in b for b in (self.inputs, self.outputs, self.locals)):
                raise CalcError(f"variable {name!r} is already declared")
            bucket.append(name)

    def declare_input(self, *names: str) -> "CalculatorPanel":
        self._declare(self.inputs, names)
        return self

    def declare_output(self, *names: str) -> "CalculatorPanel":
        self._declare(self.outputs, names)
        return self

    def declare_local(self, *names: str) -> "CalculatorPanel":
        self._declare(self.locals, names)
        return self

    @property
    def variables(self) -> list[str]:
        return self.inputs + self.outputs + self.locals

    # ------------------------------------------------------------------ #
    # buttons
    # ------------------------------------------------------------------ #
    def press(self, *buttons: str) -> "CalculatorPanel":
        """Press one or more buttons, in order (chainable)."""
        for label in buttons:
            self._press_one(label)
        return self

    def _press_one(self, label: str) -> None:
        if label in DIGIT_BUTTONS:
            self._digits += label
            return
        if label == "BACKSPACE":
            self._edit(label)  # digit accumulator shrinks before any flush
            return
        self._flush_digits()
        if label in EDIT_BUTTONS:
            self._edit(label)
        elif label in OPERATOR_BUTTONS:
            self._entry.append(label)
        elif label in KEYWORD_BUTTONS:
            self._entry.append(label)
        elif label in FUNCTION_BUTTONS:
            self._entry.append(label)
            self._entry.append("(")
        elif label in CONSTANT_BUTTONS:
            self._entry.append(label)
        elif label in self.variables:
            self._entry.append(label)
        elif label.replace(".", "", 1).replace("e-", "", 1).replace("e+", "", 1).isdigit():
            self._entry.append(label)  # whole number typed at once
        else:
            raise CalcError(
                f"no button labelled {label!r} (declare the variable first?)"
            )

    def _flush_digits(self) -> None:
        if self._digits:
            self._entry.append(self._digits)
            self._digits = ""

    def _edit(self, label: str) -> None:
        if label == "ENTER":
            line = self.current_line
            if line:
                self.lines.append(line)
            self._entry = []
        elif label == "CLEAR":
            self._entry = []
            self._digits = ""
        elif label == "BACKSPACE":
            if self._digits:
                self._digits = self._digits[:-1]
            elif self._entry:
                self._entry.pop()
        elif label == "CLEAR-ALL":
            self.lines = []
            self._entry = []
            self._digits = ""
            self.register = None

    @property
    def current_line(self) -> str:
        """The line under construction, rendered with calculator spacing."""
        tokens = self._entry + ([self._digits] if self._digits else [])
        out: list[str] = []
        for tok in tokens:
            if out and tok not in _NO_SPACE_BEFORE and out[-1] not in _NO_SPACE_AFTER:
                out.append(" ")
            out.append(tok)
        return "".join(out)

    def type_line(self, line: str) -> "CalculatorPanel":
        """Shortcut for tests and power users: append raw source lines."""
        for piece in line.split("\n"):
            self.lines.append(piece)
        return self

    # ------------------------------------------------------------------ #
    # the display
    # ------------------------------------------------------------------ #
    def source(self) -> str:
        """Assemble the full PITS routine from the panel's four windows."""
        header: list[str] = []
        if self.task_name:
            header.append(f"task {self.task_name}")
        if self.inputs:
            header.append("input " + ", ".join(self.inputs))
        if self.outputs:
            header.append("output " + ", ".join(self.outputs))
        if self.locals:
            header.append("local " + ", ".join(self.locals))
        return "\n".join(header + self.lines) + "\n"

    def diagnostics(self) -> list[Diagnostic]:
        """Instant feedback: analyze the program as it currently stands."""
        return analyze(self.source())

    def calculate(self) -> Any:
        """The ``=`` button: evaluate the line being typed, show it in the
        register, and leave the line intact for further editing.

        Variables are bound from :attr:`memory` (set via :meth:`store`).
        """
        self._flush_digits()
        if not self._entry:
            raise CalcError("nothing to calculate")
        self.register = eval_expression(self.current_line, env=self.memory)
        return self.register

    def store(self, **bindings: Any) -> "CalculatorPanel":
        """Bind sample values used by the ``=`` button."""
        self.memory.update(bindings)
        return self

    def trial_run(self, **inputs: Any) -> RunResult:
        """Run the whole routine on sample inputs (the instant-feedback run)."""
        result = run_program(self.source(), **inputs)
        if result.outputs:
            # show the first output on the display, like a real calculator
            self.register = result.outputs[self.outputs[0]] if self.outputs else None
        return result

    def __repr__(self) -> str:
        return (
            f"CalculatorPanel({self.task_name!r}, io={len(self.inputs)}+"
            f"{len(self.outputs)}, locals={len(self.locals)}, lines={len(self.lines)})"
        )


def all_buttons() -> dict[str, tuple[str, ...]]:
    """Every button on the panel, grouped for rendering."""
    return {
        "digits": DIGIT_BUTTONS,
        "operators": OPERATOR_BUTTONS,
        "keywords": KEYWORD_BUTTONS,
        "functions": FUNCTION_BUTTONS,
        "constants": CONSTANT_BUTTONS,
        "editing": EDIT_BUTTONS,
    }
