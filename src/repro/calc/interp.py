"""Tree-walking interpreter for PITS programs.

The interpreter is the engine behind two Banger features:

* **trial runs** — "the ability to perform trial runs of tasks or entire
  programs" — run a node's routine on sample inputs and see the outputs
  (and ``display(...)`` messages) immediately;
* **work metering** — every arithmetic operation, comparison, subscript,
  and builtin call increments an operation counter, giving the task weight
  the scheduler uses (:attr:`RunResult.ops`).

Semantics
---------
Values are floats, booleans, strings (display only), and numpy vectors /
matrices.  Subscripts are **1-based** (the calculator is aimed at
scientists; ``A[1,1]`` is the top-left element).  ``input`` variables are
read-only.  ``for`` bounds are inclusive.  A configurable step budget guards
against runaway loops (:class:`~repro.errors.CalcLimitError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.calc import ast
from repro.calc.builtins import CONSTANTS, Value, lookup
from repro.calc.parser import parse
from repro.errors import (
    CalcLimitError,
    CalcNameError,
    CalcRuntimeError,
    CalcTypeError,
)

#: Default cap on interpreter steps (statements + expression nodes).
DEFAULT_STEP_LIMIT = 5_000_000


@dataclass
class RunResult:
    """Outcome of one trial run."""

    outputs: dict[str, Value]
    locals: dict[str, Value]
    ops: float
    steps: int
    displayed: list[str] = field(default_factory=list)

    def output(self, name: str) -> Value:
        try:
            return self.outputs[name]
        except KeyError:
            raise CalcNameError(f"no output named {name!r}") from None


def _as_number(v: Value, where: str, line: int) -> float:
    if isinstance(v, bool):
        raise CalcTypeError(f"line {line}: {where} expects a number, got a boolean")
    if isinstance(v, (int, float)):
        return float(v)
    raise CalcTypeError(f"line {line}: {where} expects a number, got {type(v).__name__}")


def _as_bool(v: Value, where: str, line: int) -> bool:
    if isinstance(v, bool):
        return v
    raise CalcTypeError(f"line {line}: {where} expects a condition, got {type(v).__name__}")


def _coerce_input(v: Any) -> Value:
    """Accept friendly Python values for inputs (ints, lists, nested lists)."""
    if isinstance(v, bool):
        return v
    if isinstance(v, (int, float)):
        return float(v)
    if isinstance(v, np.ndarray):
        return v.astype(float)
    if isinstance(v, (list, tuple)):
        return np.array(v, dtype=float)
    if isinstance(v, str):
        return v
    raise CalcTypeError(f"unsupported input value of type {type(v).__name__}")


class Interpreter:
    """Executes one PITS program.

    Parameters
    ----------
    program:
        Parsed :class:`~repro.calc.ast.Program` or source text.
    step_limit:
        Maximum interpreter steps before :class:`CalcLimitError`.
    """

    def __init__(self, program: ast.Program | str, step_limit: int = DEFAULT_STEP_LIMIT):
        self.program = parse(program) if isinstance(program, str) else program
        self.step_limit = step_limit
        self.env: dict[str, Value] = {}
        self.ops = 0.0
        self.steps = 0
        self.displayed: list[str] = []

    # ------------------------------------------------------------------ #
    def run(self, **inputs: Any) -> RunResult:
        """Execute the program with the given input bindings."""
        prog = self.program
        missing = [v for v in prog.inputs if v not in inputs]
        if missing:
            raise CalcNameError(f"missing input(s): {', '.join(missing)}")
        extra = [v for v in inputs if v not in prog.inputs]
        if extra:
            raise CalcNameError(f"unknown input(s): {', '.join(extra)}")
        self.env = {name: _coerce_input(v) for name, v in inputs.items()}
        self.ops = 0.0
        self.steps = 0
        self.displayed = []
        try:
            self._exec_block(prog.body)
        except RecursionError:
            raise CalcRuntimeError(
                "expression nesting exceeded the interpreter's stack"
            ) from None
        unset = [v for v in prog.outputs if v not in self.env]
        if unset:
            raise CalcRuntimeError(
                f"program finished without assigning output(s): {', '.join(unset)}"
            )
        return RunResult(
            outputs={v: self.env[v] for v in prog.outputs},
            locals={v: self.env[v] for v in prog.locals if v in self.env},
            ops=self.ops,
            steps=self.steps,
            displayed=list(self.displayed),
        )

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #
    def _tick(self, line: int) -> None:
        self.steps += 1
        if self.steps > self.step_limit:
            raise CalcLimitError(
                f"line {line}: program exceeded {self.step_limit} steps "
                "(possible infinite loop)"
            )

    def _exec_block(self, stmts: tuple[ast.Stmt, ...]) -> None:
        for s in stmts:
            self._exec_stmt(s)

    def _exec_stmt(self, s: ast.Stmt) -> None:
        self._tick(s.line)
        if isinstance(s, ast.Assign):
            self._exec_assign(s)
        elif isinstance(s, ast.If):
            if _as_bool(self._eval(s.cond), "if", s.line):
                self._exec_block(s.then)
                return
            for cond, block in s.elifs:
                if _as_bool(self._eval(cond), "elif", s.line):
                    self._exec_block(block)
                    return
            self._exec_block(s.orelse)
        elif isinstance(s, ast.While):
            while _as_bool(self._eval(s.cond), "while", s.line):
                self._tick(s.line)
                self._exec_block(s.body)
        elif isinstance(s, ast.Repeat):
            while True:
                self._tick(s.line)
                self._exec_block(s.body)
                if _as_bool(self._eval(s.cond), "until", s.line):
                    break
        elif isinstance(s, ast.For):
            self._exec_for(s)
        elif isinstance(s, ast.CallStmt):
            self._exec_call_stmt(s)
        else:  # pragma: no cover - parser produces no other nodes
            raise CalcRuntimeError(f"line {s.line}: unknown statement {type(s).__name__}")

    def _exec_for(self, s: ast.For) -> None:
        if s.var in self.program.inputs:
            raise CalcRuntimeError(f"line {s.line}: loop variable {s.var!r} is an input")
        start = _as_number(self._eval(s.start), "for start", s.line)
        stop = _as_number(self._eval(s.stop), "for stop", s.line)
        step = _as_number(self._eval(s.step), "for step", s.line) if s.step else 1.0
        if step == 0:
            raise CalcRuntimeError(f"line {s.line}: for step must not be 0")
        i = start
        while (step > 0 and i <= stop + 1e-12) or (step < 0 and i >= stop - 1e-12):
            self._tick(s.line)
            self.env[s.var] = i
            self._exec_block(s.body)
            i += step

    def _exec_call_stmt(self, s: ast.CallStmt) -> None:
        call = s.call
        if call.func == "display":
            parts = []
            for a in call.args:
                v = self._eval(a)
                parts.append(v if isinstance(v, str) else _format_value(v))
            self.displayed.append(" ".join(parts))
            return
        # any other builtin may be called for effect; its value is dropped
        self._eval(call)

    def _exec_assign(self, s: ast.Assign) -> None:
        value = self._eval(s.value)
        target = s.target
        if isinstance(target, ast.Name):
            name = target.ident
            self._check_assignable(name, s.line)
            if isinstance(value, np.ndarray):
                value = value.copy()  # value semantics: no aliasing surprises
            self.env[name] = value
        elif isinstance(target, ast.Index):
            self._check_assignable(target.base, s.line)
            arr = self.env.get(target.base)
            if not isinstance(arr, np.ndarray):
                raise CalcTypeError(
                    f"line {s.line}: {target.base!r} is not an array "
                    "(create it with zeros(...) first)"
                )
            idx = self._subscripts(target, arr, s.line)
            self.ops += 1
            arr[idx] = _as_number(value, "array element", s.line)
        else:  # pragma: no cover
            raise CalcRuntimeError(f"line {s.line}: bad assignment target")

    def _check_assignable(self, name: str, line: int) -> None:
        if name in self.program.inputs:
            raise CalcRuntimeError(f"line {line}: input {name!r} is read-only")
        if name not in self.program.declared:
            raise CalcNameError(
                f"line {line}: variable {name!r} is not declared "
                "(add it to input, output, or local)"
            )

    # ------------------------------------------------------------------ #
    # expressions
    # ------------------------------------------------------------------ #
    def _eval(self, e: ast.Expr) -> Value:
        self._tick(e.line)
        if isinstance(e, ast.Num):
            return e.value
        if isinstance(e, ast.BoolLit):
            return e.value
        if isinstance(e, ast.Str):
            return e.value
        if isinstance(e, ast.Name):
            return self._lookup(e.ident, e.line)
        if isinstance(e, ast.Index):
            return self._eval_index(e)
        if isinstance(e, ast.Unary):
            return self._eval_unary(e)
        if isinstance(e, ast.Binary):
            return self._eval_binary(e)
        if isinstance(e, ast.Call):
            return self._eval_call(e)
        if isinstance(e, ast.ArrayLit):
            return self._eval_array_lit(e)
        raise CalcRuntimeError(f"line {e.line}: unknown expression {type(e).__name__}")

    def _lookup(self, name: str, line: int) -> Value:
        if name in self.env:
            return self.env[name]
        if name in CONSTANTS:
            return CONSTANTS[name]
        if name.upper() in CONSTANTS and name.lower() == name:
            return CONSTANTS[name.upper()]
        if name in self.program.declared:
            raise CalcNameError(f"line {line}: variable {name!r} used before assignment")
        raise CalcNameError(f"line {line}: unknown variable {name!r}")

    def _subscripts(self, e: ast.Index, arr: np.ndarray, line: int) -> tuple[int, ...]:
        if arr.ndim != len(e.subscripts):
            kind = "vector" if arr.ndim == 1 else "matrix"
            raise CalcTypeError(
                f"line {line}: {e.base!r} is a {kind}; "
                f"{len(e.subscripts)} subscript(s) given"
            )
        idx: list[int] = []
        for sub, extent in zip(e.subscripts, arr.shape):
            raw = _as_number(self._eval(sub), "subscript", line)
            k = int(round(raw))
            if abs(raw - k) > 1e-9:
                raise CalcTypeError(f"line {line}: subscript {raw} is not an integer")
            if not 1 <= k <= extent:
                raise CalcRuntimeError(
                    f"line {line}: subscript {k} out of range 1..{extent} for {e.base!r}"
                )
            idx.append(k - 1)
        return tuple(idx)

    def _eval_index(self, e: ast.Index) -> Value:
        arr = self._lookup(e.base, e.line)
        if not isinstance(arr, np.ndarray):
            raise CalcTypeError(f"line {e.line}: {e.base!r} is not an array")
        self.ops += 1
        return float(arr[self._subscripts(e, arr, e.line)])

    def _eval_unary(self, e: ast.Unary) -> Value:
        v = self._eval(e.operand)
        self.ops += 1
        if e.op == "not":
            return not _as_bool(v, "not", e.line)
        if isinstance(v, np.ndarray):
            return -v if e.op == "-" else v.copy()
        n = _as_number(v, f"unary {e.op}", e.line)
        return -n if e.op == "-" else n

    def _eval_binary(self, e: ast.Binary) -> Value:
        if e.op == "and":
            return (
                _as_bool(self._eval(e.left), "and", e.line)
                and _as_bool(self._eval(e.right), "and", e.line)
            )
        if e.op == "or":
            return (
                _as_bool(self._eval(e.left), "or", e.line)
                or _as_bool(self._eval(e.right), "or", e.line)
            )
        left = self._eval(e.left)
        right = self._eval(e.right)
        op = e.op
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return self._compare(op, left, right, e.line)
        self.ops += max(
            1.0,
            float(left.size) if isinstance(left, np.ndarray) else 1.0,
            float(right.size) if isinstance(right, np.ndarray) else 1.0,
        )
        array_operands = isinstance(left, np.ndarray) or isinstance(right, np.ndarray)
        if array_operands:
            return self._array_arith(op, left, right, e.line)
        l = _as_number(left, f"operator {op}", e.line)
        r = _as_number(right, f"operator {op}", e.line)
        if op == "+":
            return l + r
        if op == "-":
            return l - r
        if op == "*":
            return l * r
        if op == "/":
            if r == 0:
                raise CalcRuntimeError(f"line {e.line}: division by zero")
            return l / r
        if op == "%":
            if r == 0:
                raise CalcRuntimeError(f"line {e.line}: modulo by zero")
            return l % r
        if op == "^":
            try:
                result = l**r
            except (OverflowError, ZeroDivisionError, ValueError) as exc:
                raise CalcRuntimeError(f"line {e.line}: {l} ^ {r}: {exc}") from None
            if isinstance(result, complex):
                raise CalcRuntimeError(f"line {e.line}: {l} ^ {r} is not a real number")
            return float(result)
        raise CalcRuntimeError(f"line {e.line}: unknown operator {op!r}")

    def _array_arith(self, op: str, left: Value, right: Value, line: int) -> Value:
        if op not in ("+", "-", "*", "/"):
            raise CalcTypeError(f"line {line}: operator {op!r} not defined for arrays")
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            with np.errstate(divide="raise", invalid="raise"):
                return left / right
        except FloatingPointError:
            raise CalcRuntimeError(f"line {line}: array division by zero") from None
        except ValueError as exc:
            raise CalcTypeError(f"line {line}: array shape mismatch: {exc}") from None

    def _compare(self, op: str, left: Value, right: Value, line: int) -> bool:
        self.ops += 1
        if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
            if op in ("=", "<>"):
                if not (isinstance(left, np.ndarray) and isinstance(right, np.ndarray)):
                    raise CalcTypeError(f"line {line}: cannot compare array and scalar")
                equal = left.shape == right.shape and bool(np.array_equal(left, right))
                return equal if op == "=" else not equal
            raise CalcTypeError(f"line {line}: ordering not defined for arrays")
        if isinstance(left, bool) or isinstance(right, bool):
            if op in ("=", "<>") and isinstance(left, bool) and isinstance(right, bool):
                return (left == right) if op == "=" else (left != right)
            raise CalcTypeError(f"line {line}: cannot order booleans")
        l = _as_number(left, f"comparison {op}", line)
        r = _as_number(right, f"comparison {op}", line)
        return {
            "=": l == r,
            "<>": l != r,
            "<": l < r,
            "<=": l <= r,
            ">": l > r,
            ">=": l >= r,
        }[op]

    def _eval_call(self, e: ast.Call) -> Value:
        builtin = lookup(e.func)
        if builtin is None:
            raise CalcNameError(f"line {e.line}: unknown function {e.func!r}")
        if not builtin.check_arity(len(e.args)):
            expected = (
                str(builtin.min_args)
                if builtin.min_args == builtin.max_args
                else f"{builtin.min_args}..{builtin.max_args}"
            )
            raise CalcTypeError(
                f"line {e.line}: {e.func}() takes {expected} argument(s), "
                f"got {len(e.args)}"
            )
        args = [self._eval(a) for a in e.args]
        self.ops += builtin.cost(*args)
        try:
            return builtin.fn(*args)
        except (CalcRuntimeError, CalcTypeError) as exc:
            raise type(exc)(f"line {e.line}: {exc}") from None

    def _eval_array_lit(self, e: ast.ArrayLit) -> Value:
        values = [self._eval(el) for el in e.elements]
        self.ops += max(1.0, float(len(values)))
        if not values:
            return np.zeros(0)
        if all(isinstance(v, np.ndarray) and v.ndim == 1 for v in values):
            lengths = {v.shape[0] for v in values}
            if len(lengths) != 1:
                raise CalcTypeError(f"line {e.line}: ragged matrix literal")
            return np.array([v for v in values], dtype=float)
        if any(isinstance(v, np.ndarray) for v in values):
            raise CalcTypeError(f"line {e.line}: mixed scalars and rows in array literal")
        return np.array(
            [_as_number(v, "array element", e.line) for v in values], dtype=float
        )


def _format_value(v: Value) -> str:
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, float):
        return f"{v:g}"
    if isinstance(v, np.ndarray):
        return np.array2string(v, precision=6, suppress_small=True)
    return str(v)


def run_program(source: str | ast.Program, step_limit: int = DEFAULT_STEP_LIMIT, **inputs: Any) -> RunResult:
    """One-call trial run: parse (if needed), execute, return the result."""
    return Interpreter(source, step_limit=step_limit).run(**inputs)


def eval_expression(source: str, env: dict[str, Any] | None = None) -> Value:
    """Evaluate a bare expression (the panel's ``=`` button).

    ``env`` provides variable bindings; constants are always available.
    """
    from repro.calc.parser import parse_expression

    expr = parse_expression(source)
    names = sorted(
        {n.ident for n in ast.walk_exprs(expr) if isinstance(n, ast.Name)}
        | {n.base for n in ast.walk_exprs(expr) if isinstance(n, ast.Index)}
    )
    env = {k: v for k, v in (env or {}).items()}
    program = ast.Program(
        name="expr",
        inputs=tuple(n for n in names if n not in CONSTANTS and n.upper() not in CONSTANTS),
        outputs=("result_",),
        body=(ast.Assign(target=ast.Name(ident="result_"), value=expr, line=1),),
    )
    missing = [k for k in program.inputs if k not in env]
    if missing:
        raise CalcNameError(f"unbound variable(s) in expression: {', '.join(missing)}")
    interp = Interpreter(program)
    return interp.run(**{k: env[k] for k in program.inputs}).outputs["result_"]
