"""The one floating-point tolerance used for cross-layer time comparisons.

Schedulers, the schedule checker (``SCH202``-``SCH205``), the simulator's
static-vs-trace comparison, and the conformance oracles all compare event
times that were produced by *different* arithmetic orders over the same
cost model.  Each layer re-associates the same sums (start + duration,
ready + hop + hop, ...) so results agree only up to accumulated rounding.

``TOL`` is an **absolute** tolerance of ``1e-6`` time units.  Task times in
this codebase are O(1)-O(1e4) (work / processor_speed with the shipped
presets), so 1e-6 is ~1e-10 relative — far above float64 rounding noise for
any realistic chain of additions, far below any genuine off-by-one in a
cost term (the smallest nonzero cost parameters are O(1e-2)).  Every layer
must import the helpers below instead of inlining its own epsilon; drifting
tolerances between the scheduler and the simulator is exactly the class of
bug the conformance suite exists to catch.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

#: Absolute tolerance for floating-point time comparisons (see module doc).
TOL = 1e-6

__all__ = ["TOL", "approx_eq", "approx_le", "approx_ge", "values_close"]


def approx_eq(a: float, b: float, tol: float = TOL) -> bool:
    """``a == b`` up to the shared absolute tolerance."""
    return abs(a - b) <= tol


def approx_le(a: float, b: float, tol: float = TOL) -> bool:
    """``a <= b`` up to the shared absolute tolerance."""
    return a <= b + tol


def approx_ge(a: float, b: float, tol: float = TOL) -> bool:
    """``a >= b`` up to the shared absolute tolerance."""
    return a >= b - tol


def values_close(a: Any, b: Any) -> bool:
    """Exact, NaN-aware equality for PITS values (floats, bools, strings,
    numpy arrays).

    Used by the interpreter-vs-generated-code oracles: because both
    executions share one runtime (:mod:`repro.codegen.runtime`), they must
    agree *bit for bit* — no tolerance — but ``NaN == NaN`` must hold so a
    routine that legitimately produces NaN on both sides still conforms.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
            return False
        return a.shape == b.shape and bool(np.array_equal(a, b, equal_nan=True))
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        if math.isnan(a) or math.isnan(b):
            return math.isnan(a) and math.isnan(b)
        return float(a) == float(b)
    return a == b
