"""A thin blocking client for the banger daemon.

Wraps :mod:`http.client` — no third-party dependencies — with one
connection per thread (keep-alive reuse) and typed errors.  This is what
the test suite and the server benchmark drive the daemon with, and the
shape any notebook/script integration would take::

    from repro.client import BangerClient

    client = BangerClient(port=8045)
    doc = client.schedule(project.to_dict(), scheduler="mh")
    print(doc["makespan"])

Every compute call posts a JSON body and returns the decoded JSON
response.  Non-2xx answers raise :class:`ServerError` carrying the HTTP
status and the daemon's structured error document.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from typing import Any

from repro.errors import ReproError

DEFAULT_TIMEOUT = 60.0


class ClientError(ReproError):
    """The daemon could not be reached (connection refused, timeout...)."""


class ServerError(ReproError):
    """The daemon answered with a non-2xx status.

    Attributes
    ----------
    status:
        The HTTP status code (400, 500, 503, 504...).
    doc:
        The daemon's decoded error document (``{"type": "banger-error",
        "kind": ..., "message": ...}``), or ``{}`` if the body was not JSON.
    retry_after:
        Seconds from the ``Retry-After`` header (403 quota rejections and
        503 backpressure carry it), or ``None``.
    """

    def __init__(self, status: int, doc: dict[str, Any],
                 retry_after: float | None = None):
        self.status = status
        self.doc = doc
        self.retry_after = retry_after
        kind = doc.get("kind", "error")
        message = doc.get("message", "(no message)")
        super().__init__(f"daemon answered {status} ({kind}): {message}")


class BangerClient:
    """Blocking JSON client, one keep-alive connection per thread."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8045,
        timeout: float = DEFAULT_TIMEOUT,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.conn = conn
        return conn

    def close(self) -> None:
        """Close this thread's connection (others close when their thread dies)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def request(
        self, method: str, path: str, payload: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """One round-trip; retries once on a stale keep-alive connection."""
        body = (
            json.dumps(payload, sort_keys=True).encode("utf-8")
            if payload is not None
            else b""
        )
        for attempt in (1, 2):
            conn = self._connection()
            try:
                conn.request(
                    method, path, body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                # A keep-alive connection the daemon already closed surfaces
                # here; one reconnect distinguishes that from a dead daemon.
                self.close()
                if attempt == 2:
                    raise ClientError(
                        f"cannot reach banger daemon at "
                        f"{self.host}:{self.port}: {exc}"
                    ) from exc
        try:
            doc = json.loads(raw.decode("utf-8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            doc = {}
        if response.status >= 300:
            retry_after: float | None = None
            header = response.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    pass
            raise ServerError(
                response.status,
                doc if isinstance(doc, dict) else {},
                retry_after=retry_after,
            )
        return doc

    def post(self, path: str, payload: dict[str, Any]) -> dict[str, Any]:
        return self.request("POST", path, payload)

    def get(self, path: str) -> dict[str, Any]:
        return self.request("GET", path)

    # ------------------------------------------------------------------ #
    # endpoint wrappers
    # ------------------------------------------------------------------ #
    def healthz(self) -> dict[str, Any]:
        return self.get("/healthz")

    def metrics(self) -> dict[str, Any]:
        return self.get("/metrics")

    def lint(self, project: dict[str, Any], **options: Any) -> dict[str, Any]:
        return self.post("/lint", {"project": project, **options})

    def schedule(self, project: dict[str, Any], **options: Any) -> dict[str, Any]:
        return self.post("/schedule", {"project": project, **options})

    def speedup(self, project: dict[str, Any], **options: Any) -> dict[str, Any]:
        return self.post("/speedup", {"project": project, **options})

    def sweep(self, project: dict[str, Any], **options: Any) -> dict[str, Any]:
        return self.post("/sweep", {"project": project, **options})

    def simulate(self, project: dict[str, Any], **options: Any) -> dict[str, Any]:
        return self.post("/simulate", {"project": project, **options})

    def codegen(self, project: dict[str, Any], **options: Any) -> dict[str, Any]:
        return self.post("/codegen", {"project": project, **options})

    def conform(self, **options: Any) -> dict[str, Any]:
        return self.post("/conform", dict(options))

    # ------------------------------------------------------------------ #
    # project store
    # ------------------------------------------------------------------ #
    def projects(self, tenant: str | None = None) -> dict[str, Any]:
        """Tenants in the store, or one tenant's projects."""
        return self.get("/projects" if tenant is None else f"/projects/{tenant}")

    def project_put(
        self,
        tenant: str,
        name: str,
        project: dict[str, Any],
        message: str = "",
        scenario: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {"project": project, "message": message}
        if scenario is not None:
            payload["scenario"] = scenario
        return self.post(f"/projects/{tenant}/{name}", payload)

    def project_get(
        self, tenant: str, name: str, version: int | None = None
    ) -> dict[str, Any]:
        path = f"/projects/{tenant}/{name}"
        if version is not None:
            path += f"/v/{version}"
        return self.get(path)

    def project_log(self, tenant: str, name: str) -> dict[str, Any]:
        return self.get(f"/projects/{tenant}/{name}/log")

    def project_diff(
        self,
        tenant: str,
        name: str,
        version_a: int | None = None,
        version_b: int | None = None,
        to_tenant: str | None = None,
        to_name: str | None = None,
    ) -> dict[str, Any]:
        if to_tenant is None and to_name is None and (
            version_a is not None and version_b is not None
        ):
            return self.get(
                f"/projects/{tenant}/{name}/diff/{version_a}/{version_b}"
            )
        payload: dict[str, Any] = {}
        if version_a is not None:
            payload["version_a"] = version_a
        if version_b is not None:
            payload["version_b"] = version_b
        if to_tenant is not None:
            payload["to_tenant"] = to_tenant
        if to_name is not None:
            payload["to_name"] = to_name
        return self.post(f"/projects/{tenant}/{name}/diff", payload)

    def project_fork(
        self,
        tenant: str,
        name: str,
        to_tenant: str,
        to_name: str,
        version: int | None = None,
        message: str = "",
    ) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "to_tenant": to_tenant, "to_name": to_name, "message": message,
        }
        if version is not None:
            payload["version"] = version
        return self.post(f"/projects/{tenant}/{name}/fork", payload)

    def store_gc(self, max_bytes: int | None = None) -> dict[str, Any]:
        payload = {} if max_bytes is None else {"max_bytes": max_bytes}
        return self.post("/projects/gc", payload)


def wait_until_ready(
    host: str = "127.0.0.1",
    port: int = 8045,
    timeout: float = 10.0,
    interval: float = 0.05,
) -> BangerClient:
    """Poll ``/healthz`` until the daemon answers; return a ready client.

    Raises :class:`ClientError` if the daemon is not up within ``timeout``
    seconds — used by tests and the benchmark right after spawning
    ``banger serve``.
    """
    client = BangerClient(host=host, port=port, timeout=min(timeout, 5.0))
    deadline = time.monotonic() + timeout
    last: Exception | None = None
    while time.monotonic() < deadline:
        try:
            doc = client.healthz()
            if doc.get("ok"):
                client.timeout = DEFAULT_TIMEOUT
                return client
        except (ClientError, ServerError, socket.error) as exc:
            last = exc
        time.sleep(interval)
    raise ClientError(
        f"banger daemon at {host}:{port} not ready after {timeout:g}s: {last}"
    )
