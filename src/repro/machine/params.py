"""The four machine parameters of the paper, plus conversion helpers.

    "A program is tailored to a certain machine by considering the following
    characteristics of the target machine:
      1. Processor speed
      2. Process startup time
      3. Message passing startup time
      4. Message transmission speed"

:class:`MachineParams` holds exactly these four numbers (plus an optional
per-hop switching latency, an extension for modern wormhole/store-and-forward
distinctions, defaulting to 0 so the paper's model is the default).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineError


@dataclass(frozen=True)
class MachineParams:
    """Scalar performance characteristics of a target machine.

    Parameters
    ----------
    processor_speed:
        Operations per time unit; a task with weight ``work`` executes in
        ``process_startup + work / processor_speed``.
    process_startup:
        Fixed cost to launch a task on a processor.
    msg_startup:
        Fixed software overhead per message (the alpha of the classic
        alpha–beta model).
    transmission_rate:
        Data units per time unit moved over one link (the 1/beta).
    hop_latency:
        Extra fixed cost per link crossed (0 = the paper's model, where only
        the store-and-forward ``hops * size / rate`` term grows with
        distance).
    """

    processor_speed: float = 1.0
    process_startup: float = 0.0
    msg_startup: float = 0.0
    transmission_rate: float = 1.0
    hop_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.processor_speed <= 0:
            raise MachineError(f"processor_speed must be > 0, got {self.processor_speed}")
        if self.transmission_rate <= 0:
            raise MachineError(f"transmission_rate must be > 0, got {self.transmission_rate}")
        for field_name in ("process_startup", "msg_startup", "hop_latency"):
            value = getattr(self, field_name)
            if value < 0:
                raise MachineError(f"{field_name} must be >= 0, got {value}")

    # ------------------------------------------------------------------ #
    def exec_time(self, work: float) -> float:
        """Wall time to run a task of ``work`` operations on one processor."""
        if work < 0:
            raise MachineError(f"work must be >= 0, got {work}")
        return self.process_startup + work / self.processor_speed

    def comm_time(self, size: float, hops: int) -> float:
        """Wall time to move ``size`` data units across ``hops`` links.

        Zero hops (same processor) costs nothing: Banger charges only for
        real message passing.  Store-and-forward: each link retransmits the
        whole message.
        """
        if size < 0:
            raise MachineError(f"message size must be >= 0, got {size}")
        if hops < 0:
            raise MachineError(f"hops must be >= 0, got {hops}")
        if hops == 0:
            return 0.0
        return (
            self.msg_startup
            + hops * self.hop_latency
            + hops * size / self.transmission_rate
        )

    def scaled(self, factor: float) -> "MachineParams":
        """A machine with ``factor``× faster processors (comm unchanged)."""
        if factor <= 0:
            raise MachineError(f"scale factor must be > 0, got {factor}")
        return MachineParams(
            processor_speed=self.processor_speed * factor,
            process_startup=self.process_startup,
            msg_startup=self.msg_startup,
            transmission_rate=self.transmission_rate,
            hop_latency=self.hop_latency,
        )


#: A frictionless machine: unit-speed processors, free messages.  Useful as
#: the machine-independent baseline (schedules then cost pure graph time).
IDEAL = MachineParams()

#: Parameters loosely shaped like the 1990s distributed-memory machines the
#: paper targeted: message startup dwarfs per-unit transmission cost.
NCUBE_LIKE = MachineParams(
    processor_speed=1.0,
    process_startup=0.5,
    msg_startup=5.0,
    transmission_rate=2.0,
)

#: An iPSC-flavoured preset: slightly faster links, heavier task launch.
IPSC_LIKE = MachineParams(
    processor_speed=1.0,
    process_startup=1.0,
    msg_startup=8.0,
    transmission_rate=4.0,
)

#: Workstations on a LAN: fast processors, brutal message startup — the
#: regime where grain packing is mandatory.
LAN_WORKSTATIONS = MachineParams(
    processor_speed=4.0,
    process_startup=0.2,
    msg_startup=50.0,
    transmission_rate=1.0,
)

#: A tightly coupled shared-memory-ish box: messages almost free.
TIGHT_SMP = MachineParams(
    processor_speed=1.0,
    process_startup=0.01,
    msg_startup=0.05,
    transmission_rate=100.0,
)

#: Name -> preset, for the CLI and parameter-sweep benchmarks.
PRESETS: dict[str, MachineParams] = {
    "ideal": IDEAL,
    "ncube": NCUBE_LIKE,
    "ipsc": IPSC_LIKE,
    "lan": LAN_WORKSTATIONS,
    "smp": TIGHT_SMP,
}
