"""The interconnection families of the paper's Figure 2, plus extensions.

Banger supports "hypercubes, meshes, trees, stars, and fully-connected
topologies"; we add rings, linear arrays, 2-D tori, and a shared bus.  Each
regular family overrides :meth:`route` with its textbook routing algorithm
(e-cube for hypercubes, XY for meshes/tori); tests check these produce
shortest paths by comparing against the BFS tables of the base class.
"""

from __future__ import annotations

import math

from repro.errors import MachineError
from repro.machine.topology import Topology


class FullyConnected(Topology):
    """Every processor pair shares a dedicated link (diameter 1)."""

    family = "full"

    def __init__(self, n_procs: int):
        links = [(a, b) for a in range(n_procs) for b in range(a + 1, n_procs)]
        super().__init__(n_procs, links, name=f"full({n_procs})")

    def route(self, src: int, dst: int) -> list[int]:
        self._check_proc(src)
        self._check_proc(dst)
        return [src] if src == dst else [src, dst]


class Bus(Topology):
    """A single shared medium: any pair is one hop, but all traffic shares it.

    Structurally identical to :class:`FullyConnected`; the distinguishing
    ``shared_medium`` flag makes the contention-aware simulator serialise
    every message through one resource.
    """

    family = "bus"
    shared_medium = True

    def __init__(self, n_procs: int):
        links = [(a, b) for a in range(n_procs) for b in range(a + 1, n_procs)]
        super().__init__(n_procs, links, name=f"bus({n_procs})")

    def route(self, src: int, dst: int) -> list[int]:
        self._check_proc(src)
        self._check_proc(dst)
        return [src] if src == dst else [src, dst]


class Star(Topology):
    """Processor 0 is the hub; every other processor hangs off it."""

    family = "star"

    def __init__(self, n_procs: int):
        links = [(0, p) for p in range(1, n_procs)]
        super().__init__(n_procs, links, name=f"star({n_procs})")
        self.hub = 0

    def route(self, src: int, dst: int) -> list[int]:
        self._check_proc(src)
        self._check_proc(dst)
        if src == dst:
            return [src]
        if src == self.hub or dst == self.hub:
            return [src, dst]
        return [src, self.hub, dst]


class Ring(Topology):
    """A cycle; messages take the shorter way around."""

    family = "ring"

    def __init__(self, n_procs: int):
        if n_procs < 3:
            raise MachineError(f"ring needs >= 3 processors, got {n_procs}")
        links = [(p, (p + 1) % n_procs) for p in range(n_procs)]
        super().__init__(n_procs, links, name=f"ring({n_procs})")

    def route(self, src: int, dst: int) -> list[int]:
        self._check_proc(src)
        self._check_proc(dst)
        n = self.n_procs
        if src == dst:
            return [src]
        clockwise = (dst - src) % n
        step = 1 if clockwise <= n - clockwise else -1
        path = [src]
        cur = src
        while cur != dst:
            cur = (cur + step) % n
            path.append(cur)
        return path


class LinearArray(Topology):
    """An open chain ``0 - 1 - ... - n-1``."""

    family = "linear"

    def __init__(self, n_procs: int):
        links = [(p, p + 1) for p in range(n_procs - 1)]
        super().__init__(n_procs, links, name=f"linear({n_procs})")

    def route(self, src: int, dst: int) -> list[int]:
        self._check_proc(src)
        self._check_proc(dst)
        step = 1 if dst >= src else -1
        return list(range(src, dst + step, step))


class Hypercube(Topology):
    """A binary d-cube over ``2**dim`` processors with e-cube routing.

    Processors are linked when their labels differ in exactly one bit; the
    distance between two processors is the Hamming distance of their labels.
    This is the family of the paper's Figure 3 experiments.
    """

    family = "hypercube"

    def __init__(self, dim: int):
        if dim < 0:
            raise MachineError(f"hypercube dimension must be >= 0, got {dim}")
        if dim > 16:
            raise MachineError(f"hypercube dimension {dim} is unreasonably large")
        n = 1 << dim
        links = [
            (p, p ^ (1 << bit))
            for p in range(n)
            for bit in range(dim)
            if p < (p ^ (1 << bit))
        ]
        super().__init__(n, links, name=f"hypercube({n})")
        self.dim = dim

    @classmethod
    def for_procs(cls, n_procs: int) -> "Hypercube":
        """The hypercube with exactly ``n_procs`` (must be a power of two)."""
        if n_procs < 1 or n_procs & (n_procs - 1):
            raise MachineError(f"hypercube size must be a power of two, got {n_procs}")
        return cls(n_procs.bit_length() - 1)

    def hops(self, src: int, dst: int) -> int:
        self._check_proc(src)
        self._check_proc(dst)
        return (src ^ dst).bit_count()

    def route(self, src: int, dst: int) -> list[int]:
        """Dimension-ordered (e-cube) routing: fix differing bits low→high."""
        self._check_proc(src)
        self._check_proc(dst)
        path = [src]
        cur = src
        for bit in range(self.dim):
            if (cur ^ dst) & (1 << bit):
                cur ^= 1 << bit
                path.append(cur)
        return path


class Mesh2D(Topology):
    """An open ``rows × cols`` grid with XY (row-first) routing.

    Processor ``p`` sits at ``(p // cols, p % cols)``.
    """

    family = "mesh"

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise MachineError(f"mesh needs positive extents, got {rows}x{cols}")
        n = rows * cols
        links = []
        for r in range(rows):
            for c in range(cols):
                p = r * cols + c
                if c + 1 < cols:
                    links.append((p, p + 1))
                if r + 1 < rows:
                    links.append((p, p + cols))
        super().__init__(n, links, name=f"mesh({rows}x{cols})")
        self.rows = rows
        self.cols = cols

    @classmethod
    def square(cls, n_procs: int) -> "Mesh2D":
        side = math.isqrt(n_procs)
        if side * side != n_procs:
            raise MachineError(f"square mesh size must be a perfect square, got {n_procs}")
        return cls(side, side)

    def coords(self, p: int) -> tuple[int, int]:
        self._check_proc(p)
        return divmod(p, self.cols)

    def proc_at(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise MachineError(f"coordinates ({row}, {col}) outside {self.name}")
        return row * self.cols + col

    def hops(self, src: int, dst: int) -> int:
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def route(self, src: int, dst: int) -> list[int]:
        """XY routing: travel along the row to the target column, then down."""
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        path = [src]
        c_step = 1 if c2 > c1 else -1
        for c in range(c1 + c_step, c2 + c_step, c_step) if c1 != c2 else ():
            path.append(self.proc_at(r1, c))
        r_step = 1 if r2 > r1 else -1
        for r in range(r1 + r_step, r2 + r_step, r_step) if r1 != r2 else ():
            path.append(self.proc_at(r, c2))
        return path


class Torus2D(Mesh2D):
    """A ``rows × cols`` grid with wraparound links in both dimensions."""

    family = "torus"

    def __init__(self, rows: int, cols: int):
        super().__init__(rows, cols)
        self.name = f"torus({rows}x{cols})"
        if cols > 2:
            for r in range(rows):
                self.add_link(self.proc_at(r, 0), self.proc_at(r, cols - 1))
        if rows > 2:
            for c in range(cols):
                self.add_link(self.proc_at(0, c), self.proc_at(rows - 1, c))

    def _axis_steps(self, a: int, b: int, extent: int, wrap: bool) -> list[int]:
        """Signed unit steps from a to b along one axis, the short way."""
        if a == b:
            return []
        fwd = (b - a) % extent
        back = (a - b) % extent
        if wrap and back < fwd:
            return [-1] * back
        if wrap and fwd <= back:
            return [1] * fwd
        return [1] * (b - a) if b > a else [-1] * (a - b)

    def hops(self, src: int, dst: int) -> int:
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        dr = abs(r1 - r2)
        dc = abs(c1 - c2)
        if self.rows > 2:
            dr = min(dr, self.rows - dr)
        if self.cols > 2:
            dc = min(dc, self.cols - dc)
        return dr + dc

    def route(self, src: int, dst: int) -> list[int]:
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        path = [src]
        r, c = r1, c1
        for step in self._axis_steps(c1, c2, self.cols, self.cols > 2):
            c = (c + step) % self.cols
            path.append(self.proc_at(r, c))
        for step in self._axis_steps(r1, r2, self.rows, self.rows > 2):
            r = (r + step) % self.rows
            path.append(self.proc_at(r, c))
        return path


class Mesh3D(Topology):
    """An open ``nx × ny × nz`` grid with XYZ dimension-ordered routing."""

    family = "mesh3d"

    def __init__(self, nx: int, ny: int, nz: int):
        if min(nx, ny, nz) < 1:
            raise MachineError(f"mesh3d needs positive extents, got {nx}x{ny}x{nz}")
        n = nx * ny * nz
        links = []
        for x in range(nx):
            for y in range(ny):
                for z in range(nz):
                    p = (x * ny + y) * nz + z
                    if z + 1 < nz:
                        links.append((p, p + 1))
                    if y + 1 < ny:
                        links.append((p, p + nz))
                    if x + 1 < nx:
                        links.append((p, p + ny * nz))
        super().__init__(n, links, name=f"mesh3d({nx}x{ny}x{nz})")
        self.nx, self.ny, self.nz = nx, ny, nz

    def coords(self, p: int) -> tuple[int, int, int]:
        self._check_proc(p)
        x, rem = divmod(p, self.ny * self.nz)
        y, z = divmod(rem, self.nz)
        return x, y, z

    def proc_at(self, x: int, y: int, z: int) -> int:
        if not (0 <= x < self.nx and 0 <= y < self.ny and 0 <= z < self.nz):
            raise MachineError(f"coordinates ({x},{y},{z}) outside {self.name}")
        return (x * self.ny + y) * self.nz + z

    def hops(self, src: int, dst: int) -> int:
        a, b = self.coords(src), self.coords(dst)
        return sum(abs(i - j) for i, j in zip(a, b))

    def route(self, src: int, dst: int) -> list[int]:
        (x1, y1, z1), (x2, y2, z2) = self.coords(src), self.coords(dst)
        path = [src]
        x, y, z = x1, y1, z1
        for target, axis in ((x2, "x"), (y2, "y"), (z2, "z")):
            cur = {"x": x, "y": y, "z": z}[axis]
            step = 1 if target > cur else -1
            while cur != target:
                cur += step
                if axis == "x":
                    x = cur
                elif axis == "y":
                    y = cur
                else:
                    z = cur
                path.append(self.proc_at(x, y, z))
        return path


class ChordalRing(Topology):
    """A ring with extra chords every ``chord`` positions (ILLIAC-style).

    Chords shorten the diameter without the full cost of a hypercube;
    routing falls back to the base class's BFS tables.
    """

    family = "chordal"

    def __init__(self, n_procs: int, chord: int):
        if n_procs < 3:
            raise MachineError(f"chordal ring needs >= 3 processors, got {n_procs}")
        if not 2 <= chord < n_procs:
            raise MachineError(
                f"chord must be in 2..{n_procs - 1}, got {chord}"
            )
        links = [(p, (p + 1) % n_procs) for p in range(n_procs)]
        for p in range(n_procs):
            q = (p + chord) % n_procs
            if p != q:
                links.append((min(p, q), max(p, q)))
        super().__init__(n_procs, links, name=f"chordal({n_procs},{chord})")
        self.chord = chord


class BalancedTree(Topology):
    """A complete ``arity``-ary tree of the given depth (root = processor 0).

    Depth 1 is a single processor; depth 2 adds ``arity`` children, etc.
    """

    family = "tree"

    def __init__(self, depth: int, arity: int = 2):
        if depth < 1:
            raise MachineError(f"tree depth must be >= 1, got {depth}")
        if arity < 1:
            raise MachineError(f"tree arity must be >= 1, got {arity}")
        n = sum(arity**level for level in range(depth))
        links = [(p, (p - 1) // arity) for p in range(1, n)]
        super().__init__(n, links, name=f"tree(d{depth},a{arity})")
        self.depth = depth
        self.arity = arity

    def parent(self, p: int) -> int | None:
        self._check_proc(p)
        return None if p == 0 else (p - 1) // self.arity

    def children(self, p: int) -> list[int]:
        self._check_proc(p)
        first = p * self.arity + 1
        return [c for c in range(first, first + self.arity) if c < self.n_procs]

    def route(self, src: int, dst: int) -> list[int]:
        """Up from both endpoints to their lowest common ancestor."""
        self._check_proc(src)
        self._check_proc(dst)
        up_src = [src]
        while up_src[-1] != 0:
            up_src.append((up_src[-1] - 1) // self.arity)
        up_dst = [dst]
        while up_dst[-1] != 0:
            up_dst.append((up_dst[-1] - 1) // self.arity)
        ancestors = set(up_src)
        lca = next(p for p in up_dst if p in ancestors)
        head = up_src[: up_src.index(lca) + 1]
        tail = up_dst[: up_dst.index(lca)]
        return head + tail[::-1]


#: family name -> builder taking a processor count (approximate for meshes).
def build_topology(family: str, n_procs: int) -> Topology:
    """Build a named family sized for (roughly) ``n_procs`` processors.

    ``hypercube`` requires a power of two; ``mesh``/``torus`` require a
    perfect square; others accept any count their structure allows.
    """
    family = family.lower()
    if family in ("full", "fully-connected", "fullyconnected", "complete"):
        return FullyConnected(n_procs)
    if family == "bus":
        return Bus(n_procs)
    if family == "star":
        return Star(n_procs)
    if family == "ring":
        return Ring(n_procs)
    if family in ("linear", "chain", "array"):
        return LinearArray(n_procs)
    if family == "hypercube":
        return Hypercube.for_procs(n_procs)
    if family == "mesh":
        return Mesh2D.square(n_procs)
    if family == "torus":
        side = math.isqrt(n_procs)
        if side * side != n_procs:
            raise MachineError(f"torus size must be a perfect square, got {n_procs}")
        return Torus2D(side, side)
    if family == "mesh3d":
        side = round(n_procs ** (1 / 3))
        if side**3 != n_procs:
            raise MachineError(f"mesh3d size must be a perfect cube, got {n_procs}")
        return Mesh3D(side, side, side)
    if family == "chordal":
        return ChordalRing(n_procs, max(2, n_procs // 4))
    if family == "tree":
        depth, total = 1, 1
        while total < n_procs:
            depth += 1
            total += 2**(depth - 1)
        if total != n_procs:
            raise MachineError(
                f"binary tree sizes are 1, 3, 7, 15, ...; got {n_procs}"
            )
        return BalancedTree(depth, 2)
    raise MachineError(f"unknown topology family {family!r}")


#: The families the paper names, for sweep benchmarks.
PAPER_FAMILIES = ("hypercube", "mesh", "tree", "star", "full")
