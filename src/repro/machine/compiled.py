"""Compile-ahead topology tables: routes and distances computed once.

The scheduling kernel (:mod:`repro.sched.core`) asks the topology the same
questions for every schedule on the same machine: hop counts, shortest-path
routes, the mean distance.  :class:`Topology` answers them from lazy per-object
caches — a fresh BFS (or analytic route walk) per topology *object*, even when
the machine is content-identical to one scheduled a moment ago.

:class:`CompiledTopology` compiles a :class:`~repro.machine.machine.TargetMachine`
topology once into flat all-pairs distance and route tables:

* plain lists indexed by ``src * n + dst`` — no dicts, no lazy fill;
* built by calling the topology's own :meth:`~Topology.route` per pair, so a
  family's analytic router (e-cube, XY, LCA) decides the path and every
  consumer stays **byte-identical** to the uncompiled answers;
* content-addressed by :meth:`TargetMachine.content_hash` and canonical-JSON
  serializable (:meth:`to_dict` / :meth:`from_dict`), so the tables land in
  the :class:`~repro.sched.service.ScheduleService` LRU + versioned disk tier
  and are shareable across processes and shards.

A small process-wide cache (:func:`compiled_for`) keyed by machine hash lets
every kernel build on a warm topology skip BFS entirely.  Hits and misses are
counted under a lock (mirroring the kernel counters in ``sched/core``) and
surface as ``compiled_hits`` / ``compiled_misses`` in
:func:`repro.sched.core.kernel_counters` and ``ServiceStats``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from repro.errors import MachineError

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (machine -> sched)
    from repro.machine.machine import TargetMachine
    from repro.machine.params import MachineParams

#: Bump when the table layout changes; serialized copies self-describe.
FORMAT_VERSION = 1


class CompiledTopology:
    """Flat all-pairs routing tables for one machine topology.

    ``dist[src * n + dst]`` is the hop count; ``routes[src * n + dst]`` is the
    processor sequence ``(src, ..., dst)`` along the same shortest path the
    live topology would return.  ``diameter`` and ``average_distance`` are
    derived from ``dist`` with the exact summation the live topology uses, so
    every float coming out of a compiled machine matches the lazy path
    byte-for-byte.
    """

    __slots__ = (
        "machine_hash",
        "n_procs",
        "dist",
        "routes",
        "_route_links",
        "_avg_distance",
    )

    def __init__(
        self,
        machine_hash: str,
        n_procs: int,
        dist: list[int],
        routes: list[tuple[int, ...]],
    ):
        if len(dist) != n_procs * n_procs or len(routes) != n_procs * n_procs:
            raise MachineError(
                f"compiled tables for {n_procs} processors need "
                f"{n_procs * n_procs} entries, got {len(dist)}/{len(routes)}"
            )
        self.machine_hash = machine_hash
        self.n_procs = n_procs
        self.dist = dist
        self.routes = routes
        self._route_links: dict[int, list[tuple[int, int]]] = {}
        self._avg_distance: float | None = None

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    @classmethod
    def compile(cls, machine: "TargetMachine") -> "CompiledTopology":
        """Walk every ordered pair through the topology's own router."""
        topology = machine.topology
        n = topology.n_procs
        dist: list[int] = [0] * (n * n)
        routes: list[tuple[int, ...]] = [()] * (n * n)
        for src in range(n):
            base = src * n
            for dst in range(n):
                path = tuple(topology.route(src, dst))
                routes[base + dst] = path
                dist[base + dst] = len(path) - 1
        return cls(machine.content_hash(), n, dist, routes)

    # ------------------------------------------------------------------ #
    # the query surface the kernel needs
    # ------------------------------------------------------------------ #
    def hops(self, src: int, dst: int) -> int:
        return self.dist[src * self.n_procs + dst]

    def route(self, src: int, dst: int) -> tuple[int, ...]:
        return self.routes[src * self.n_procs + dst]

    def route_links(self, src: int, dst: int) -> list[tuple[int, int]]:
        """Undirected links along :meth:`route` (memoized per pair)."""
        key = src * self.n_procs + dst
        cached = self._route_links.get(key)
        if cached is None:
            path = self.routes[key]
            cached = [(min(a, b), max(a, b)) for a, b in zip(path, path[1:])]
            self._route_links[key] = cached
        return cached

    def diameter(self) -> int:
        return max(self.dist, default=0)

    def average_distance(self) -> float:
        """Mean hops over ordered distinct pairs — same summation order and
        integer total as :meth:`Topology.average_distance`, so the float is
        bit-identical."""
        avg = self._avg_distance
        if avg is not None:
            return avg
        n = self.n_procs
        if n == 1:
            self._avg_distance = 0.0
            return 0.0
        total = 0
        for src in range(n):
            base = src * n
            for dst in range(n):
                if src != dst:
                    total += self.dist[base + dst]
        avg = total / (n * (n - 1))
        self._avg_distance = avg
        return avg

    def mean_comm_cost(self, params: "MachineParams", size: float) -> float:
        """Replicates :meth:`TargetMachine.mean_comm_cost` from the tables."""
        if self.n_procs == 1:
            return 0.0
        avg_hops = self.average_distance()
        if avg_hops == 0:
            return 0.0
        return (
            params.msg_startup
            + avg_hops * params.hop_latency
            + avg_hops * size / params.transmission_rate
        )

    # ------------------------------------------------------------------ #
    # serialization (canonical-JSON friendly: lists + scalars only)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "compiled_topology",
            "format_version": FORMAT_VERSION,
            "machine_hash": self.machine_hash,
            "n_procs": self.n_procs,
            "dist": list(self.dist),
            "routes": [list(path) for path in self.routes],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CompiledTopology":
        if data.get("type") != "compiled_topology":
            raise MachineError(
                f"not a compiled-topology document (type={data.get('type')!r})"
            )
        if data.get("format_version") != FORMAT_VERSION:
            raise MachineError(
                f"compiled-topology format {data.get('format_version')!r} "
                f"unsupported (expected {FORMAT_VERSION})"
            )
        return cls(
            data["machine_hash"],
            data["n_procs"],
            [int(d) for d in data["dist"]],
            [tuple(path) for path in data["routes"]],
        )

    def __repr__(self) -> str:
        return (
            f"CompiledTopology(procs={self.n_procs}, "
            f"hash={self.machine_hash[:12]}...)"
        )


# ---------------------------------------------------------------------- #
# the process-wide warm-table cache
# ---------------------------------------------------------------------- #
#: Enough for a daemon serving many machines without unbounded growth.
_CACHE_CAP = 128

_LOCK = threading.Lock()
_CACHE: "OrderedDict[str, CompiledTopology]" = OrderedDict()

_ZERO_COUNTERS = {"compiled_hits": 0, "compiled_misses": 0}
_counters: dict[str, int] = dict(_ZERO_COUNTERS)


def compiled_for(machine: "TargetMachine") -> CompiledTopology:
    """The compiled tables for ``machine``, compiling on first sight.

    Content-addressed: two machine objects with the same params + topology
    share one entry.  A kernel built on a warm machine therefore never runs
    BFS — the tables are fetched by hash in O(1).
    """
    key = machine.content_hash()
    with _LOCK:
        hit = _CACHE.get(key)
        if hit is not None:
            _CACHE.move_to_end(key)
            _counters["compiled_hits"] += 1
            return hit
        _counters["compiled_misses"] += 1
    compiled = CompiledTopology.compile(machine)
    seed_compiled(compiled)
    return compiled


def seed_compiled(compiled: CompiledTopology) -> None:
    """Insert pre-built tables (e.g. loaded from the service disk tier)."""
    with _LOCK:
        _CACHE[compiled.machine_hash] = compiled
        _CACHE.move_to_end(compiled.machine_hash)
        while len(_CACHE) > _CACHE_CAP:
            _CACHE.popitem(last=False)


def cached_compiled(machine_hash: str) -> CompiledTopology | None:
    """Peek the process cache by machine hash without counting or compiling."""
    with _LOCK:
        return _CACHE.get(machine_hash)


def evict_compiled(machine_hash: str) -> None:
    """Drop one machine's tables (mirrors ``ScheduleService.invalidate``)."""
    with _LOCK:
        _CACHE.pop(machine_hash, None)


def clear_compiled() -> None:
    """Drop every cached table (tests; ``ScheduleService.clear``)."""
    with _LOCK:
        _CACHE.clear()


def compiled_counters() -> dict[str, int]:
    """Snapshot of the process-wide compiled-table hit/miss counters."""
    with _LOCK:
        return dict(_counters)


def reset_compiled_counters() -> None:
    with _LOCK:
        _counters.update(_ZERO_COUNTERS)
