"""Interconnection-network topologies (the paper's Figure 2 graph input).

A :class:`Topology` is an undirected graph over processors ``0..n-1``.  The
user "enters the target machine's interconnection network topology as
another graph"; :class:`CustomTopology` accepts any edge list, while
:mod:`repro.machine.topologies` provides the families Banger supports
(hypercube, mesh, tree, star, fully-connected) plus ring/torus/bus
extensions.

Routing is table-driven: the base class computes BFS all-pairs shortest
paths lazily; regular families override :meth:`route` with their analytic
algorithms (e-cube, XY) which tests cross-check against BFS distances.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Iterable, Sequence

from repro.errors import MachineError, RoutingError


class Topology:
    """An undirected processor-interconnection graph.

    Parameters
    ----------
    n_procs:
        Number of processors, labelled ``0..n_procs-1``.
    links:
        Iterable of undirected processor pairs.
    name:
        Display name (subclasses set a family-specific one).
    """

    family = "custom"

    def __init__(self, n_procs: int, links: Iterable[tuple[int, int]], name: str = ""):
        if n_procs < 1:
            raise MachineError(f"topology needs >= 1 processor, got {n_procs}")
        self.n_procs = n_procs
        self.name = name or f"{self.family}({n_procs})"
        # Daemon worker threads share machines: every derived-table build is
        # double-checked under this lock (reentrant — diameter() builds the
        # BFS tables while already holding it).
        self._lock = threading.RLock()
        self._revision = 0
        self._adj: dict[int, set[int]] = {p: set() for p in range(n_procs)}
        self._links: set[tuple[int, int]] = set()
        for a, b in links:
            self.add_link(a, b)
        self._invalidate_caches()

    # ------------------------------------------------------------------ #
    # construction / structure
    # ------------------------------------------------------------------ #
    def add_link(self, a: int, b: int) -> None:
        self._check_proc(a)
        self._check_proc(b)
        if a == b:
            raise MachineError(f"self-link on processor {a} is not allowed")
        with self._lock:
            key = (min(a, b), max(a, b))
            self._links.add(key)
            self._adj[a].add(b)
            self._adj[b].add(a)
            self._invalidate_caches()

    def _invalidate_caches(self) -> None:
        """Drop every derived table; called whenever the link set changes.

        Also bumps ``_revision``, the cheap change counter that keys
        revision-scoped caches elsewhere (``TargetMachine.content_hash``,
        the compiled-topology tables in :mod:`repro.machine.compiled`).
        """
        with self._lock:
            self._revision += 1
            self._dist: list[list[int]] | None = None
            self._next_hop: list[list[int]] | None = None
            self._sorted_adj: list[list[int]] | None = None
            self._diameter: int | None = None
            self._avg_distance: float | None = None
            self._route_links_cache: dict[tuple[int, int], list[tuple[int, int]]] = {}

    def __getstate__(self) -> dict[str, Any]:
        """Locks do not pickle — drop it (topologies ship to sweep workers)."""
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def _check_proc(self, p: int) -> None:
        if not (0 <= p < self.n_procs):
            raise MachineError(
                f"processor {p} out of range for {self.name} (0..{self.n_procs - 1})"
            )

    @property
    def links(self) -> list[tuple[int, int]]:
        return sorted(self._links)

    @property
    def n_links(self) -> int:
        return len(self._links)

    def _sorted_neighbors(self) -> list[list[int]]:
        """Adjacency lists sorted once per link-set revision."""
        adj = self._sorted_adj
        if adj is None:
            with self._lock:
                adj = self._sorted_adj
                if adj is None:
                    adj = [sorted(self._adj[p]) for p in range(self.n_procs)]
                    self._sorted_adj = adj
        return adj

    def neighbors(self, p: int) -> list[int]:
        self._check_proc(p)
        return list(self._sorted_neighbors()[p])

    def degree(self, p: int) -> int:
        self._check_proc(p)
        return len(self._adj[p])

    def max_degree(self) -> int:
        return max((len(s) for s in self._adj.values()), default=0)

    def has_link(self, a: int, b: int) -> bool:
        self._check_proc(a)
        self._check_proc(b)
        return (min(a, b), max(a, b)) in self._links

    # ------------------------------------------------------------------ #
    # shortest paths
    # ------------------------------------------------------------------ #
    def _ensure_tables(self) -> tuple[list[list[int]], list[list[int]]]:
        """Build (or fetch) the BFS tables; returns a consistent snapshot."""
        dist, nxt = self._dist, self._next_hop
        if dist is not None and nxt is not None:
            return dist, nxt
        with self._lock:
            dist, nxt = self._dist, self._next_hop
            if dist is not None and nxt is not None:
                return dist, nxt
            n = self.n_procs
            INF = n + 1
            dist = [[INF] * n for _ in range(n)]
            nxt = [[-1] * n for _ in range(n)]
            adj = self._sorted_neighbors()
            for src in range(n):
                dist[src][src] = 0
                nxt[src][src] = src
                q: deque[int] = deque([src])
                while q:
                    u = q.popleft()
                    for v in adj[u]:
                        if dist[src][v] > dist[src][u] + 1:
                            dist[src][v] = dist[src][u] + 1
                            # first hop out of src towards v
                            nxt[src][v] = v if u == src else nxt[src][u]
                            q.append(v)
            self._dist = dist
            self._next_hop = nxt
            return dist, nxt

    def hops(self, src: int, dst: int) -> int:
        """Shortest-path link count between two processors."""
        self._check_proc(src)
        self._check_proc(dst)
        if src == dst:
            return 0
        dist, _ = self._ensure_tables()
        d = dist[src][dst]
        if d > self.n_procs:
            raise RoutingError(f"{self.name}: no route from {src} to {dst}")
        return d

    def route(self, src: int, dst: int) -> list[int]:
        """Processor sequence ``[src, ..., dst]`` along one shortest path."""
        self._check_proc(src)
        self._check_proc(dst)
        if src == dst:
            return [src]
        dist, nxt = self._ensure_tables()
        if dist[src][dst] > self.n_procs:
            raise RoutingError(f"{self.name}: no route from {src} to {dst}")
        path = [src]
        cur = src
        while cur != dst:
            cur = nxt[cur][dst]
            path.append(cur)
        return path

    def route_links(self, src: int, dst: int) -> list[tuple[int, int]]:
        """The undirected links crossed by :meth:`route` (empty if src==dst)."""
        cached = self._route_links_cache.get((src, dst))
        if cached is None:
            path = self.route(src, dst)
            cached = [(min(a, b), max(a, b)) for a, b in zip(path, path[1:])]
            with self._lock:
                self._route_links_cache[(src, dst)] = cached
        return list(cached)

    def diameter(self) -> int:
        """Longest shortest path; raises if disconnected.  Cached."""
        best = self._diameter
        if best is not None:
            return best
        with self._lock:
            best = self._diameter
            if best is not None:
                return best
            dist, _ = self._ensure_tables()
            best = 0
            for row in dist:
                for d in row:
                    if d > self.n_procs:
                        raise RoutingError(f"{self.name} is disconnected")
                    if d > best:
                        best = d
            self._diameter = best
            return best

    def average_distance(self) -> float:
        """Mean hop count over ordered distinct pairs (0 for 1 processor).

        Cached — the schedulers call this through
        :meth:`~repro.machine.machine.TargetMachine.mean_comm_cost` once per
        edge when computing priorities, which made the uncached O(n²) scan
        the dominant cost of scheduling on large machines.
        """
        avg = self._avg_distance
        if avg is not None:
            return avg
        if self.n_procs == 1:
            self._avg_distance = 0.0
            return 0.0
        with self._lock:
            avg = self._avg_distance
            if avg is not None:
                return avg
            dist, _ = self._ensure_tables()
            total = 0
            for src in range(self.n_procs):
                row = dist[src]
                for dst in range(self.n_procs):
                    if src != dst:
                        d = row[dst]
                        if d > self.n_procs:
                            raise RoutingError(f"{self.name} is disconnected")
                        total += d
            avg = total / (self.n_procs * (self.n_procs - 1))
            self._avg_distance = avg
            return avg

    def is_connected(self) -> bool:
        if self.n_procs == 1:
            return True
        seen = {0}
        q = deque([0])
        while q:
            u = q.popleft()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    q.append(v)
        return len(seen) == self.n_procs

    def validate(self) -> None:
        if not self.is_connected():
            raise MachineError(f"topology {self.name!r} is disconnected")

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, procs={self.n_procs}, links={self.n_links})"


class CustomTopology(Topology):
    """A user-drawn interconnection graph (any edge list)."""

    family = "custom"

    def __init__(self, n_procs: int, links: Sequence[tuple[int, int]], name: str = ""):
        super().__init__(n_procs, links, name=name or f"custom({n_procs})")
