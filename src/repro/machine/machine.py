"""The target machine: scalar parameters bound to an interconnection graph.

A :class:`TargetMachine` is the single cost model shared by the static
schedulers (:mod:`repro.sched`) and the discrete-event simulator
(:mod:`repro.sim`), which is what makes the cross-validation between
predicted and simulated schedules exact in the contention-free case.
"""

from __future__ import annotations

from typing import Any

from repro.errors import MachineError
from repro.machine.params import IDEAL, MachineParams
from repro.machine.topologies import build_topology
from repro.machine.topology import CustomTopology, Topology


class TargetMachine:
    """A parallel computer: ``params`` + ``topology``.

    Parameters
    ----------
    topology:
        The interconnection graph (see :mod:`repro.machine.topologies`).
    params:
        The paper's four scalar characteristics (defaults to the ideal
        machine: unit-speed processors, free communication).
    name:
        Display name; defaults to the topology's.
    """

    def __init__(
        self,
        topology: Topology,
        params: MachineParams = IDEAL,
        name: str = "",
    ):
        topology.validate()
        self.topology = topology
        self.params = params
        self.name = name or topology.name
        self._hash_cache: tuple[int, str] | None = None

    # ------------------------------------------------------------------ #
    # the cost model
    # ------------------------------------------------------------------ #
    @property
    def n_procs(self) -> int:
        return self.topology.n_procs

    def procs(self) -> range:
        return range(self.n_procs)

    def exec_time(self, work: float) -> float:
        """Wall time for a task of ``work`` operations (any processor)."""
        return self.params.exec_time(work)

    def comm_cost(self, src_proc: int, dst_proc: int, size: float) -> float:
        """Wall time to move ``size`` units between two processors.

        Zero when ``src_proc == dst_proc`` — co-located tasks share memory.
        """
        hops = self.topology.hops(src_proc, dst_proc)
        return self.params.comm_time(size, hops)

    def mean_comm_cost(self, size: float) -> float:
        """Average cost of moving ``size`` units between two distinct
        random processors — the machine-aware edge weight used when
        computing scheduling priorities before placement is known."""
        if self.n_procs == 1:
            return 0.0
        avg_hops = self.topology.average_distance()
        if avg_hops == 0:
            return 0.0
        # average_distance is fractional, so apply the affine cost model
        # directly instead of calling comm_time (which wants integer hops)
        return (
            self.params.msg_startup
            + avg_hops * self.params.hop_latency
            + avg_hops * size / self.params.transmission_rate
        )

    def route(self, src_proc: int, dst_proc: int) -> list[int]:
        return self.topology.route(src_proc, dst_proc)

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "machine",
            "name": self.name,
            "params": {
                "processor_speed": self.params.processor_speed,
                "process_startup": self.params.process_startup,
                "msg_startup": self.params.msg_startup,
                "transmission_rate": self.params.transmission_rate,
                "hop_latency": self.params.hop_latency,
            },
            "topology": {
                "family": self.topology.family,
                "name": self.topology.name,
                "n_procs": self.topology.n_procs,
                "links": [list(l) for l in self.topology.links],
            },
        }

    def content_hash(self) -> str:
        """Stable fingerprint of params + topology — the machine half of the
        scheduling cache key (see :mod:`repro.sched.service`).

        Cached per topology revision: params and name are frozen after
        construction, so the fingerprint only changes when the link set does
        (``Topology._invalidate_caches`` bumps ``_revision``).  This makes the
        per-kernel-build compiled-table lookup O(1) instead of re-serializing
        the whole machine document.
        """
        from repro.graph.serialize import fingerprint

        revision = self.topology._revision
        cached = self._hash_cache
        if cached is not None and cached[0] == revision:
            return cached[1]
        digest = fingerprint(self.to_dict())
        self._hash_cache = (revision, digest)
        return digest

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TargetMachine":
        if data.get("type") != "machine":
            raise MachineError(f"not a machine document (type={data.get('type')!r})")
        params = MachineParams(**data.get("params", {}))
        topo_doc = data.get("topology", {})
        topo = CustomTopology(
            topo_doc["n_procs"],
            [tuple(l) for l in topo_doc.get("links", [])],
            name=topo_doc.get("name", ""),
        )
        # Preserve the original family so loaded machines keep driving
        # family-default sweeps (a reloaded mesh project still sweeps meshes).
        topo.family = topo_doc.get("family", topo.family)
        return cls(topo, params, name=data.get("name", ""))

    def __repr__(self) -> str:
        return f"TargetMachine({self.name!r}, procs={self.n_procs})"


def make_machine(
    family: str,
    n_procs: int,
    params: MachineParams = IDEAL,
) -> TargetMachine:
    """One-call builder: ``make_machine("hypercube", 8, NCUBE_LIKE)``."""
    return TargetMachine(build_topology(family, n_procs), params)


def single_processor(params: MachineParams = IDEAL) -> TargetMachine:
    """The 1-processor machine — the baseline for speedup charts."""
    return TargetMachine(CustomTopology(1, [], name="uniprocessor"), params)
