"""The target machine: scalar parameters bound to an interconnection graph.

A :class:`TargetMachine` is the single cost model shared by the static
schedulers (:mod:`repro.sched`) and the discrete-event simulator
(:mod:`repro.sim`), which is what makes the cross-validation between
predicted and simulated schedules exact in the contention-free case.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import MachineError
from repro.machine.params import IDEAL, MachineParams
from repro.machine.topologies import build_topology
from repro.machine.topology import CustomTopology, Topology


class TargetMachine:
    """A parallel computer: ``params`` + ``topology``.

    Parameters
    ----------
    topology:
        The interconnection graph (see :mod:`repro.machine.topologies`).
    params:
        The paper's four scalar characteristics (defaults to the ideal
        machine: unit-speed processors, free communication).
    name:
        Display name; defaults to the topology's.
    proc_speed_factors:
        Optional per-processor relative speeds in ``(0, 1]`` — ``params``
        describes the machine at its *nominal best* and a factor below 1.0
        marks a permanently slower processor.  The static schedulers plan
        on nominal times; only the dynamic simulator
        (:mod:`repro.sim.dynamic`) and the reactive rescheduler consume the
        factors, so a uniform machine (all 1.0, the default) keeps every
        existing schedule and content hash byte-identical.
    link_bandwidth_factors:
        Optional per-link relative bandwidths in ``(0, 1]``, keyed by the
        normalized link ``(min(a, b), max(a, b))``.  Same contract: nominal
        is the ceiling, factors only degrade, uniform maps hash-identically.
    """

    def __init__(
        self,
        topology: Topology,
        params: MachineParams = IDEAL,
        name: str = "",
        proc_speed_factors: "Sequence[float] | None" = None,
        link_bandwidth_factors: "dict[tuple[int, int], float] | None" = None,
    ):
        topology.validate()
        self.topology = topology
        self.params = params
        self.name = name or topology.name
        self.proc_speed_factors = self._check_speed_factors(proc_speed_factors)
        self.link_bandwidth_factors = self._check_bandwidth_factors(
            link_bandwidth_factors
        )
        self._hash_cache: tuple[int, str] | None = None

    def _check_speed_factors(
        self, factors: "Sequence[float] | None"
    ) -> tuple[float, ...] | None:
        """Normalize: uniform (all 1.0 / absent) is stored as ``None``."""
        if factors is None:
            return None
        values = tuple(float(f) for f in factors)
        if len(values) != self.topology.n_procs:
            raise MachineError(
                f"proc_speed_factors has {len(values)} entries for "
                f"{self.topology.n_procs} processors"
            )
        for proc, f in enumerate(values):
            if not 0.0 < f <= 1.0:
                raise MachineError(
                    f"proc_speed_factors[{proc}] = {f!r}; factors are relative "
                    "to the nominal params and must be in (0, 1]"
                )
        return None if all(f == 1.0 for f in values) else values

    def _check_bandwidth_factors(
        self, factors: "dict[tuple[int, int], float] | None"
    ) -> dict[tuple[int, int], float] | None:
        if not factors:
            return None
        links = {(min(a, b), max(a, b)) for a, b in self.topology.links}
        normalized: dict[tuple[int, int], float] = {}
        for (a, b), f in factors.items():
            link = (min(int(a), int(b)), max(int(a), int(b)))
            if link not in links:
                raise MachineError(
                    f"link_bandwidth_factors names link {link}, which is not "
                    f"a link of topology {self.topology.name!r}"
                )
            f = float(f)
            if not 0.0 < f <= 1.0:
                raise MachineError(
                    f"link_bandwidth_factors[{link}] = {f!r}; factors are "
                    "relative to the nominal params and must be in (0, 1]"
                )
            if f != 1.0:
                normalized[link] = f
        return normalized or None

    # ------------------------------------------------------------------ #
    # the cost model
    # ------------------------------------------------------------------ #
    @property
    def n_procs(self) -> int:
        return self.topology.n_procs

    def procs(self) -> range:
        return range(self.n_procs)

    def exec_time(self, work: float) -> float:
        """Wall time for a task of ``work`` operations (any processor)."""
        return self.params.exec_time(work)

    def comm_cost(self, src_proc: int, dst_proc: int, size: float) -> float:
        """Wall time to move ``size`` units between two processors.

        Zero when ``src_proc == dst_proc`` — co-located tasks share memory.
        """
        hops = self.topology.hops(src_proc, dst_proc)
        return self.params.comm_time(size, hops)

    def mean_comm_cost(self, size: float) -> float:
        """Average cost of moving ``size`` units between two distinct
        random processors — the machine-aware edge weight used when
        computing scheduling priorities before placement is known."""
        if self.n_procs == 1:
            return 0.0
        avg_hops = self.topology.average_distance()
        if avg_hops == 0:
            return 0.0
        # average_distance is fractional, so apply the affine cost model
        # directly instead of calling comm_time (which wants integer hops)
        return (
            self.params.msg_startup
            + avg_hops * self.params.hop_latency
            + avg_hops * size / self.params.transmission_rate
        )

    def route(self, src_proc: int, dst_proc: int) -> list[int]:
        return self.topology.route(src_proc, dst_proc)

    # ------------------------------------------------------------------ #
    # heterogeneity (consumed by the dynamic regime only)
    # ------------------------------------------------------------------ #
    def speed_factor(self, proc: int) -> float:
        """Relative speed of ``proc`` (1.0 nominal; below 1.0 is slower)."""
        if self.proc_speed_factors is None:
            return 1.0
        return self.proc_speed_factors[proc]

    def bandwidth_factor(self, a: int, b: int) -> float:
        """Relative bandwidth of link ``(a, b)`` (1.0 nominal)."""
        if self.link_bandwidth_factors is None:
            return 1.0
        return self.link_bandwidth_factors.get((min(a, b), max(a, b)), 1.0)

    @property
    def is_uniform(self) -> bool:
        """True when every processor and link runs at nominal speed."""
        return self.proc_speed_factors is None and self.link_bandwidth_factors is None

    def uniform(self) -> "TargetMachine":
        """This machine with all heterogeneity factors stripped to nominal.

        Used by the ``dynamic_null`` oracle: the factor-free view is the
        machine the static cost model already describes, so the empty-
        scenario dynamic replay must match the static replay byte for byte.
        """
        if self.is_uniform:
            return self
        return TargetMachine(self.topology, self.params, name=self.name)

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "type": "machine",
            "name": self.name,
            "params": {
                "processor_speed": self.params.processor_speed,
                "process_startup": self.params.process_startup,
                "msg_startup": self.params.msg_startup,
                "transmission_rate": self.params.transmission_rate,
                "hop_latency": self.params.hop_latency,
            },
            "topology": {
                "family": self.topology.family,
                "name": self.topology.name,
                "n_procs": self.topology.n_procs,
                "links": [list(l) for l in self.topology.links],
            },
        }
        # Heterogeneity factors are emitted only when non-uniform so every
        # pre-existing machine document — and therefore every content hash,
        # cache key, and corpus case id — stays byte-identical.
        if self.proc_speed_factors is not None:
            doc["proc_speed_factors"] = list(self.proc_speed_factors)
        if self.link_bandwidth_factors is not None:
            doc["link_bandwidth_factors"] = [
                [a, b, f]
                for (a, b), f in sorted(self.link_bandwidth_factors.items())
            ]
        return doc

    def content_hash(self) -> str:
        """Stable fingerprint of params + topology — the machine half of the
        scheduling cache key (see :mod:`repro.sched.service`).

        Cached per topology revision: params and name are frozen after
        construction, so the fingerprint only changes when the link set does
        (``Topology._invalidate_caches`` bumps ``_revision``).  This makes the
        per-kernel-build compiled-table lookup O(1) instead of re-serializing
        the whole machine document.
        """
        from repro.graph.serialize import fingerprint

        revision = self.topology._revision
        cached = self._hash_cache
        if cached is not None and cached[0] == revision:
            return cached[1]
        digest = fingerprint(self.to_dict())
        self._hash_cache = (revision, digest)
        return digest

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TargetMachine":
        if data.get("type") != "machine":
            raise MachineError(f"not a machine document (type={data.get('type')!r})")
        params = MachineParams(**data.get("params", {}))
        topo_doc = data.get("topology", {})
        topo = CustomTopology(
            topo_doc["n_procs"],
            [tuple(l) for l in topo_doc.get("links", [])],
            name=topo_doc.get("name", ""),
        )
        # Preserve the original family so loaded machines keep driving
        # family-default sweeps (a reloaded mesh project still sweeps meshes).
        topo.family = topo_doc.get("family", topo.family)
        speeds = data.get("proc_speed_factors")
        bandwidths = data.get("link_bandwidth_factors")
        return cls(
            topo,
            params,
            name=data.get("name", ""),
            proc_speed_factors=speeds,
            link_bandwidth_factors=(
                {(int(a), int(b)): float(f) for a, b, f in bandwidths}
                if bandwidths
                else None
            ),
        )

    def __repr__(self) -> str:
        return f"TargetMachine({self.name!r}, procs={self.n_procs})"


def make_machine(
    family: str,
    n_procs: int,
    params: MachineParams = IDEAL,
) -> TargetMachine:
    """One-call builder: ``make_machine("hypercube", 8, NCUBE_LIKE)``."""
    return TargetMachine(build_topology(family, n_procs), params)


def single_processor(params: MachineParams = IDEAL) -> TargetMachine:
    """The 1-processor machine — the baseline for speedup charts."""
    return TargetMachine(CustomTopology(1, [], name="uniprocessor"), params)
