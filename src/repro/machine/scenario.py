"""Fault/straggler scenarios: the seeded script of what goes wrong at run time.

A :class:`FaultScenario` is the dynamic half of the machine model: the
static :class:`~repro.machine.machine.TargetMachine` says what the fleet
*should* do, the scenario says what actually happens — processors fail or
slow down at timestamps, links fail or lose bandwidth, and task durations
carry lognormal noise.  Scenarios are plain canonical-JSON documents
(:func:`repro.graph.serialize.canonical_json`), so a failure observed under
one replays bit-for-bit anywhere, and they are *degradation-only*: slowdown
factors are ``>= 1`` and noise multipliers are ``>= 1``, because the
nominal cost model is the contract the static schedulers promised ("never
later than planned") and the dynamic regime only breaks it in one
direction.  That one-sidedness is what keeps the reactive rescheduler's
pinned observed times feasible under the nominal SCH floor rules.

Determinism under injected randomness: the per-task duration noise is keyed
by ``(noise_seed, task name)`` through :class:`random.Random`'s string
seeding (SHA-512 based, platform-stable), so the multiplier a task draws
does not depend on event order, scheduling, or which processor it landed
on — resimulating is byte-identical, and re-mapping a task does not reroll
its luck.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any

from repro.errors import MachineError
from repro.machine.machine import TargetMachine

PROC_FAIL = "proc_fail"
PROC_SLOWDOWN = "proc_slowdown"
LINK_FAIL = "link_fail"
LINK_SLOWDOWN = "link_slowdown"

EVENT_KINDS = (PROC_FAIL, PROC_SLOWDOWN, LINK_FAIL, LINK_SLOWDOWN)

#: Scenario profiles :func:`seeded_scenario` can draw.
PROFILES = ("straggler", "failure", "link", "combined")


@dataclass(frozen=True)
class FaultEvent:
    """One timed injection: a processor/link failing or slowing down.

    ``factor`` is the slowdown multiplier for the two ``*_slowdown`` kinds
    (``>= 1``; a later slowdown event on the same target *replaces* the
    current multiplier, so ``factor=1.0`` means "recovered to nominal").
    Failures are permanent.
    """

    time: float
    kind: str
    proc: int | None = None
    link: tuple[int, int] | None = None
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise MachineError(
                f"unknown fault event kind {self.kind!r}; expected one of "
                f"{EVENT_KINDS}"
            )
        if self.time < 0:
            raise MachineError(f"fault event time must be >= 0, got {self.time!r}")
        if self.kind in (PROC_FAIL, PROC_SLOWDOWN):
            if self.proc is None or self.proc < 0:
                raise MachineError(f"{self.kind} event needs a processor index")
        else:
            if self.link is None:
                raise MachineError(f"{self.kind} event needs a link (a, b)")
            a, b = self.link
            object.__setattr__(self, "link", (min(a, b), max(a, b)))
        if self.kind in (PROC_SLOWDOWN, LINK_SLOWDOWN) and self.factor < 1.0:
            raise MachineError(
                f"{self.kind} factor must be >= 1 (degradation-only model), "
                f"got {self.factor!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"time": self.time, "kind": self.kind}
        if self.proc is not None:
            doc["proc"] = self.proc
        if self.link is not None:
            doc["link"] = list(self.link)
        if self.kind in (PROC_SLOWDOWN, LINK_SLOWDOWN):
            doc["factor"] = self.factor
        return doc

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultEvent":
        link = data.get("link")
        return cls(
            time=float(data["time"]),
            kind=str(data["kind"]),
            proc=(int(data["proc"]) if data.get("proc") is not None else None),
            link=(tuple(int(x) for x in link) if link is not None else None),
            factor=float(data.get("factor", 1.0)),
        )

    def _sort_key(self) -> tuple:
        return (
            self.time,
            EVENT_KINDS.index(self.kind),
            -1 if self.proc is None else self.proc,
            self.link or (-1, -1),
            self.factor,
        )


@dataclass(frozen=True)
class FaultScenario:
    """A canonical, seeded script of run-time faults for one simulation.

    ``duration_noise`` is the sigma of a one-sided lognormal stretch applied
    to every task duration: multiplier ``exp(|N(0, sigma)|) >= 1``, drawn
    deterministically per task from ``(noise_seed, task)``.
    """

    events: tuple[FaultEvent, ...] = ()
    duration_noise: float = 0.0
    noise_seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        events = tuple(sorted(self.events, key=FaultEvent._sort_key))
        object.__setattr__(self, "events", events)
        if self.duration_noise < 0:
            raise MachineError(
                f"duration_noise must be >= 0, got {self.duration_noise!r}"
            )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "FaultScenario":
        return cls()

    @property
    def is_empty(self) -> bool:
        return not self.events and self.duration_noise == 0.0

    @property
    def has_failures(self) -> bool:
        """True when some event can strand tasks (proc or link failure)."""
        return any(e.kind in (PROC_FAIL, LINK_FAIL) for e in self.events)

    def failed_procs(self, at: float = math.inf) -> set[int]:
        """Processors whose failure time is ``<= at``."""
        return {
            e.proc
            for e in self.events
            if e.kind == PROC_FAIL and e.proc is not None and e.time <= at
        }

    def noise_multiplier(self, task: str) -> float:
        """The deterministic ``>= 1`` duration stretch for one task."""
        if self.duration_noise == 0.0:
            return 1.0
        rng = random.Random(f"fault-noise:{self.noise_seed}:{task}")
        return math.exp(abs(rng.gauss(0.0, self.duration_noise)))

    def validate_for(self, machine: TargetMachine) -> None:
        """Raise :class:`MachineError` if an event targets a processor or
        link the machine does not have."""
        links = {(min(a, b), max(a, b)) for a, b in machine.topology.links}
        for event in self.events:
            if event.proc is not None and event.proc >= machine.n_procs:
                raise MachineError(
                    f"scenario event targets processor {event.proc}, machine "
                    f"{machine.name!r} has {machine.n_procs}"
                )
            if event.link is not None and event.link not in links:
                raise MachineError(
                    f"scenario event targets link {event.link}, which is not "
                    f"a link of machine {machine.name!r}"
                )

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "fault-scenario",
            "name": self.name,
            "events": [e.to_dict() for e in self.events],
            "duration_noise": self.duration_noise,
            "noise_seed": self.noise_seed,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultScenario":
        if data.get("type") != "fault-scenario":
            raise MachineError(
                f"not a fault-scenario document (type={data.get('type')!r})"
            )
        return cls(
            events=tuple(
                FaultEvent.from_dict(e) for e in data.get("events", [])
            ),
            duration_noise=float(data.get("duration_noise", 0.0)),
            noise_seed=int(data.get("noise_seed", 0)),
            name=str(data.get("name", "")),
        )

    def content_hash(self) -> str:
        from repro.graph.serialize import fingerprint

        return fingerprint(self.to_dict())


def seeded_scenario(
    seed: int,
    machine: TargetMachine,
    horizon: float,
    profile: str = "combined",
) -> FaultScenario:
    """Draw a deterministic scenario sized to one machine and time horizon.

    ``horizon`` should be on the order of the schedule's makespan — event
    timestamps land in its first two thirds so they actually hit running
    work.  Profiles: ``straggler`` (processor slowdowns only), ``failure``
    (processor failures, never all processors), ``link`` (link slowdowns
    and failures), ``combined`` (a mix).  The same ``(seed, machine
    content, horizon, profile)`` always yields the same scenario.
    """
    if profile not in PROFILES:
        raise MachineError(f"unknown scenario profile {profile!r}; "
                           f"expected one of {PROFILES}")
    horizon = max(float(horizon), 1e-9)
    rng = random.Random(
        f"fault-scenario:{seed}:{machine.content_hash()}:{profile}"
    )
    links = sorted((min(a, b), max(a, b)) for a, b in machine.topology.links)
    events: list[FaultEvent] = []

    def when() -> float:
        return round(rng.uniform(0.0, 2.0 * horizon / 3.0), 6)

    def stragglers(n: int) -> None:
        for proc in rng.sample(range(machine.n_procs), min(n, machine.n_procs)):
            events.append(FaultEvent(
                time=when(), kind=PROC_SLOWDOWN, proc=proc,
                factor=round(rng.uniform(2.5, 10.0), 3),
            ))

    def failures(n: int) -> None:
        # Never fail every processor: a dead fleet makes every policy
        # equally useless and the reactive-safety invariant degenerate.
        limit = min(n, machine.n_procs - 1)
        for proc in rng.sample(range(machine.n_procs), max(limit, 0)):
            events.append(FaultEvent(time=when(), kind=PROC_FAIL, proc=proc))

    def link_events(n: int) -> None:
        if not links:
            return
        for link in rng.sample(links, min(n, len(links))):
            if rng.random() < 0.5:
                events.append(FaultEvent(time=when(), kind=LINK_FAIL, link=link))
            else:
                events.append(FaultEvent(
                    time=when(), kind=LINK_SLOWDOWN, link=link,
                    factor=round(rng.uniform(2.0, 8.0), 3),
                ))

    if profile == "straggler":
        stragglers(rng.randint(1, 2))
    elif profile == "failure":
        failures(rng.randint(1, 2))
    elif profile == "link":
        link_events(rng.randint(1, 2))
    else:
        stragglers(rng.randint(0, 2))
        if rng.random() < 0.5:
            failures(1)
        if rng.random() < 0.5:
            link_events(1)
    noise = round(rng.choice((0.0, rng.uniform(0.05, 0.3))), 4)
    return FaultScenario(
        events=tuple(events),
        duration_noise=noise,
        noise_seed=seed,
        name=f"{profile}-{seed}",
    )
