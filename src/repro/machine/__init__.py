"""Target machine models: parameters, topologies, routing, and cost model.

Public surface:

* :class:`MachineParams` — the paper's four scalar characteristics;
* topology families (:class:`Hypercube`, :class:`Mesh2D`, :class:`Torus2D`,
  :class:`Ring`, :class:`Star`, :class:`BalancedTree`,
  :class:`FullyConnected`, :class:`Bus`, :class:`LinearArray`,
  :class:`CustomTopology`) and :func:`build_topology`;
* :class:`TargetMachine` binding both, with :func:`make_machine` /
  :func:`single_processor` conveniences.
"""

from repro.machine.machine import TargetMachine, make_machine, single_processor
from repro.machine.scenario import (
    EVENT_KINDS,
    PROFILES,
    FaultEvent,
    FaultScenario,
    seeded_scenario,
)
from repro.machine.params import (
    IDEAL,
    IPSC_LIKE,
    LAN_WORKSTATIONS,
    NCUBE_LIKE,
    PRESETS,
    TIGHT_SMP,
    MachineParams,
)
from repro.machine.topologies import (
    PAPER_FAMILIES,
    BalancedTree,
    Bus,
    ChordalRing,
    FullyConnected,
    Hypercube,
    LinearArray,
    Mesh2D,
    Mesh3D,
    Ring,
    Star,
    Torus2D,
    build_topology,
)
from repro.machine.topology import CustomTopology, Topology

__all__ = [
    "EVENT_KINDS",
    "PROFILES",
    "FaultEvent",
    "FaultScenario",
    "seeded_scenario",
    "BalancedTree",
    "Bus",
    "ChordalRing",
    "CustomTopology",
    "Mesh3D",
    "FullyConnected",
    "Hypercube",
    "IDEAL",
    "IPSC_LIKE",
    "LAN_WORKSTATIONS",
    "PRESETS",
    "TIGHT_SMP",
    "LinearArray",
    "MachineParams",
    "Mesh2D",
    "NCUBE_LIKE",
    "PAPER_FAMILIES",
    "Ring",
    "Star",
    "TargetMachine",
    "Topology",
    "Torus2D",
    "build_topology",
    "make_machine",
    "single_processor",
]
