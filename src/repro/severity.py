"""The one shared severity scale for every diagnostic in the environment.

Historically :mod:`repro.calc.analyze` defined its own ``Severity`` enum and
:mod:`repro.lint` imported it, which worked but put the canonical definition
in an odd place (the PITS checker) and made the lint package depend on the
calculator layer for a three-value enum.  The definition now lives here, at
the root of the package where nothing else is imported, and both layers
re-export it — ``repro.calc.analyze.Severity`` remains a compatibility
alias, so ``from repro.calc.analyze import Severity`` keeps working and
identity checks (``d.severity is Severity.ERROR``) hold across layers.
"""

from __future__ import annotations

import enum


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
