"""The banger daemon: the Banger pipeline behind a socket.

The paper's promise is *instant feedback* for a single scientist at a
terminal; the ROADMAP's promise is the same feedback loop as a managed
service under heavy traffic.  This package is that service — a
stdlib-only asyncio JSON-over-HTTP daemon (``banger serve``) exposing
lint, scheduling, sweeps, simulation, speedup prediction, and the
conformance fuzzer as endpoints, with:

* **request coalescing** — N in-flight identical requests (same graph
  content hash, machine content hash, scheduler key, options) trigger one
  computation and share one byte-identical response;
* **response caching** — completed answers are kept in a bounded LRU, so
  a warm ``/schedule`` is a hash lookup, not a scheduler run;
* **a bounded worker pool** — CPU-bound work runs in restartable worker
  processes with per-request timeouts, kill-on-disconnect cancellation,
  and crash isolation (a dead worker fails only its own request);
* **backpressure** — a bounded admission queue answers 503 instead of
  growing without bound;
* **observability** — structured JSON access logs and a ``/metrics``
  endpoint aggregating server counters, :class:`ServiceStats`, and
  :func:`kernel_counters` from every worker;
* **graceful shutdown** — SIGTERM stops accepting connections, drains
  every in-flight request, then exits 0.

See ``docs/server.md`` for the endpoint catalogue and failure semantics,
and :mod:`repro.client` for the thin blocking client.
"""

from repro.server.app import BangerDaemon, run_daemon
from repro.server.metrics import ServerMetrics
from repro.server.ops import OPS, coalesce_key, execute
from repro.server.workers import (
    WorkerCrash,
    WorkerPool,
    WorkerTimeout,
)

__all__ = [
    "BangerDaemon",
    "OPS",
    "ServerMetrics",
    "WorkerCrash",
    "WorkerPool",
    "WorkerTimeout",
    "coalesce_key",
    "execute",
    "run_daemon",
]
