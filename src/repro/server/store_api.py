"""The project-store HTTP surface: ``/projects/...`` → repository calls.

Pure request mapping, no I/O of its own: :func:`store_request` takes the
already-parsed method/path/payload, drives one
:class:`~repro.store.repository.ProjectRepository` operation, and returns
``(status, document)``.  The daemon runs it off the event loop; tests can
drive it directly.

Routes (the reader framing strips query strings, so everything is a
subpath)::

    GET  /projects                       tenants + store stats
    GET  /projects/<t>                   one tenant's projects
    GET  /projects/<t>/<n>               head version record
    GET  /projects/<t>/<n>/v/<N>         pinned version record
    GET  /projects/<t>/<n>/log           full version history
    GET  /projects/<t>/<n>/diff/<a>/<b>  delta between two versions
    POST /projects/<t>/<n>               put {project, message?, scenario?}
    POST /projects/<t>/<n>/fork          {to_tenant, to_name, version?, message?}
    POST /projects/<t>/<n>/diff          {version_a?, version_b?, to_tenant?, to_name?}
    POST /projects/gc                    {max_bytes?}

Failure mapping: a quota violation is **403** (with ``Retry-After`` added
by the daemon, mirroring 503 backpressure); an unknown tenant/project/
version/blob is **404**; anything malformed is **400**.
"""

from __future__ import annotations

from typing import Any

from repro.errors import QuotaExceeded, StoreError
from repro.store.repository import ProjectRepository


def _error(kind: str, message: str, **extra: Any) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "type": "banger-error", "kind": kind, "message": message,
    }
    doc.update(extra)
    return doc


def _record(
    repo: ProjectRepository, tenant: str, name: str, version: int | None
) -> dict[str, Any]:
    entry = repo.refs.resolve(tenant, name, version)
    manifest = repo.blobs.get(entry["manifest"])
    return {
        "type": "banger-project-record",
        "tenant": tenant,
        "name": name,
        "version": entry["v"],
        "message": entry.get("message", ""),
        "manifest": entry["manifest"],
        "project": manifest["project"],
        "document": repo.get(tenant, name, entry["v"]),
        "scenario": (
            repo.blobs.get(manifest["scenario"])
            if manifest.get("scenario")
            else None
        ),
    }


def _version_arg(raw: Any, what: str = "version") -> int:
    try:
        return int(raw)
    except (TypeError, ValueError):
        raise StoreError(f"bad {what} {raw!r}: expected an integer") from None


def _get(repo: ProjectRepository, rest: list[str]) -> dict[str, Any]:
    if not rest:
        return {
            "type": "banger-projects",
            "tenants": repo.refs.tenants(),
            "stats": repo.stats(),
        }
    tenant = rest[0]
    if len(rest) == 1:
        if tenant not in repo.refs.tenants():
            raise StoreError(f"no tenant {tenant!r} in the store")
        projects = []
        for name in repo.refs.projects(tenant):
            head = repo.refs.head(tenant, name)
            projects.append(
                {"name": name, "version": head["v"], "manifest": head["manifest"]}
            )
        return {
            "type": "banger-projects",
            "tenant": tenant,
            "projects": projects,
        }
    name = rest[1]
    tail = rest[2:]
    if not tail:
        return _record(repo, tenant, name, None)
    if tail[0] == "v" and len(tail) == 2:
        return _record(repo, tenant, name, _version_arg(tail[1]))
    if tail == ["log"]:
        return {
            "type": "banger-project-log",
            "tenant": tenant,
            "name": name,
            "versions": repo.log(tenant, name),
        }
    if tail[0] == "diff" and len(tail) == 3:
        delta = repo.diff(
            tenant, name, _version_arg(tail[1]), _version_arg(tail[2])
        )
        return {"type": "banger-project-diff", **delta}
    raise StoreError(f"no such projects route: /{'/'.join(['projects'] + rest)}")


def _post(
    repo: ProjectRepository, rest: list[str], payload: dict[str, Any]
) -> dict[str, Any]:
    if rest == ["gc"]:
        max_bytes = payload.get("max_bytes")
        result = repo.gc(
            _version_arg(max_bytes, "max_bytes") if max_bytes is not None else None
        )
        return {"type": "banger-store-gc", **result}
    if len(rest) < 2:
        raise StoreError("POST needs /projects/<tenant>/<name>")
    tenant, name, tail = rest[0], rest[1], rest[2:]
    if not tail:
        project = payload.get("project")
        if not isinstance(project, dict):
            raise StoreError("payload must carry a 'project' document")
        scenario = payload.get("scenario")
        if scenario is not None and not isinstance(scenario, dict):
            raise StoreError("'scenario' must be a JSON object when given")
        info = repo.put(
            tenant, name, project,
            message=str(payload.get("message", "")),
            scenario=scenario,
        )
        return {"type": "banger-project-put", **info}
    if tail == ["fork"]:
        to_tenant = payload.get("to_tenant", tenant)
        to_name = payload.get("to_name")
        if not isinstance(to_name, str) or not to_name:
            raise StoreError("fork payload must carry a 'to_name'")
        version = payload.get("version")
        info = repo.fork(
            tenant, name, str(to_tenant), to_name,
            version=_version_arg(version) if version is not None else None,
            message=str(payload.get("message", "")),
        )
        return {"type": "banger-project-fork", **info}
    if tail == ["diff"]:
        va, vb = payload.get("version_a"), payload.get("version_b")
        delta = repo.diff(
            tenant, name,
            _version_arg(va) if va is not None else None,
            _version_arg(vb) if vb is not None else None,
            to_tenant=payload.get("to_tenant"),
            to_name=payload.get("to_name"),
        )
        return {"type": "banger-project-diff", **delta}
    raise StoreError(f"no such projects route: /{'/'.join(['projects'] + rest)}")


def store_request(
    repo: ProjectRepository,
    method: str,
    path: str,
    payload: dict[str, Any],
) -> tuple[int, dict[str, Any]]:
    """Serve one ``/projects`` request; returns ``(status, document)``."""
    rest = [part for part in path.split("/") if part][1:]  # drop "projects"
    try:
        if method == "GET":
            return 200, _get(repo, rest)
        if method == "POST":
            return 200, _post(repo, rest, payload)
        return 405, _error(
            "method-not-allowed", "/projects routes accept GET and POST"
        )
    except QuotaExceeded as exc:
        return 403, _error(
            "quota-exceeded", str(exc),
            tenant=exc.tenant, quota=exc.quota, usage=exc.usage,
        )
    except StoreError as exc:
        message = str(exc)
        if message.startswith("store corruption"):
            return 500, _error("internal", message)
        if message.startswith("no ") or " has no version " in message:
            return 404, _error("not-found", message)
        return 400, _error("bad-request", message)
