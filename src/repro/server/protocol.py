"""Minimal HTTP/1.1 framing for the banger daemon (stdlib only).

The daemon speaks just enough HTTP to serve JSON to any stock client
(``curl``, ``http.client``, a browser): request-line + headers +
``Content-Length`` bodies, keep-alive connections, and chunked-free
responses.  No TLS, no multipart, no compression — the daemon sits behind
a reverse proxy in any real deployment, exactly like the multi-tier
run-time assistants it is modelled on.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError

#: Reject bodies larger than this (a design JSON is kilobytes; anything
#: bigger is a mistake or an attack).
MAX_BODY_BYTES = 32 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024

#: The subset of status lines the daemon emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(ReproError):
    """Malformed HTTP framing; the connection is answered 400 and closed."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> Any:
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from None


class BufferedConn:
    """A :class:`~asyncio.StreamReader` with push-back.

    The daemon peeks at the socket while a response is being computed to
    notice client disconnects; any bytes that peek swallows (an eager
    client's next request) are pushed back here so framing stays intact.
    """

    def __init__(self, reader: asyncio.StreamReader):
        self._reader = reader
        self._buf = b""

    def push_back(self, data: bytes) -> None:
        self._buf = data + self._buf

    async def peek(self) -> bytes:
        """Read whatever arrives next; ``b''`` means the peer closed."""
        if self._buf:
            return self._buf
        data = await self._reader.read(4096)
        self.push_back(data)
        return data

    async def _fill(self) -> bool:
        data = await self._reader.read(4096)
        if not data:
            return False
        self._buf += data
        return True

    async def read_line(self, limit: int = MAX_HEADER_BYTES) -> bytes | None:
        """One CRLF-terminated line, or ``None`` on clean EOF at a boundary."""
        while b"\n" not in self._buf:
            if len(self._buf) > limit:
                raise ProtocolError("header line too long")
            if not await self._fill():
                if self._buf:
                    raise ProtocolError("connection closed mid-line")
                return None
        line, self._buf = self._buf.split(b"\n", 1)
        return line.rstrip(b"\r")

    async def read_exactly(self, n: int) -> bytes:
        while len(self._buf) < n:
            if not await self._fill():
                raise ProtocolError(
                    f"connection closed mid-body ({len(self._buf)}/{n} bytes)"
                )
        data, self._buf = self._buf[:n], self._buf[n:]
        return data


async def read_request(conn: BufferedConn) -> Request | None:
    """Parse one request; ``None`` when the client closed between requests."""
    line = await conn.read_line()
    if line is None:
        return None
    if not line:  # tolerate a stray blank line between pipelined requests
        line = await conn.read_line()
        if not line:
            return None
    try:
        method, target, _version = line.decode("ascii").split(None, 2)
    except (UnicodeDecodeError, ValueError):
        raise ProtocolError(f"malformed request line: {line[:80]!r}") from None

    headers: dict[str, str] = {}
    total = 0
    while True:
        raw = await conn.read_line()
        if raw is None:
            raise ProtocolError("connection closed inside headers")
        if not raw:
            break
        total += len(raw)
        if total > MAX_HEADER_BYTES:
            raise ProtocolError("headers too large")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {raw[:80]!r}")
        headers[name.strip().lower()] = value.strip()

    length = headers.get("content-length", "0")
    try:
        n = int(length)
    except ValueError:
        raise ProtocolError(f"bad Content-Length: {length!r}") from None
    if n < 0 or n > MAX_BODY_BYTES:
        raise ProtocolError(f"unacceptable Content-Length: {n}")
    body = await conn.read_exactly(n) if n else b""
    path = target.split("?", 1)[0]
    return Request(method=method.upper(), path=path, headers=headers, body=body)


def encode_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize one complete HTTP/1.1 response."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body


def json_body(doc: Any) -> bytes:
    """The daemon's canonical response encoding (sorted keys, compact)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")


def error_body(kind: str, message: str, **extra: Any) -> bytes:
    doc: dict[str, Any] = {"type": "banger-error", "kind": kind, "message": message}
    doc.update(extra)
    return json_body(doc)
