"""A bounded pool of restartable worker processes for CPU-bound ops.

Why not one :class:`~concurrent.futures.ProcessPoolExecutor`?  Because a
dead worker breaks the *whole* pool there — every in-flight future gets
``BrokenProcessPool``.  The daemon's contract is stricter: a crash fails
only the request that was running on the dead worker, and the worker is
replaced before the next request needs it.  So each slot here is its own
``multiprocessing.Process`` with a private duplex pipe:

* **submit** — the slot is checked out of an :class:`asyncio.Queue` (one
  job per slot at a time), the job pickled down the pipe, and the reply
  awaited in a thread so the event loop never blocks;
* **crash** — the child dying mid-job surfaces as ``EOFError`` on the
  pipe; the slot restarts its process and only that request fails with
  :class:`WorkerCrash`;
* **timeout / cancellation** — a request that outlives its budget (or
  whose client disconnected) gets its worker *terminated* — the only way
  to actually stop CPU-bound Python — and the slot restarts;
* **drain** — :meth:`WorkerPool.close` finishes politely: a ``None``
  sentinel per slot, a bounded join, then force-kill.

Workers run :func:`repro.server.ops.execute`, so every reply carries the
work counters the daemon aggregates into ``/metrics``.
"""

from __future__ import annotations

import asyncio
import multiprocessing as mp
import threading
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.errors import ReproError
from repro.server.ops import execute


class WorkerError(ReproError):
    """Base class for pool-level failures (not op-level ones)."""


class WorkerCrash(WorkerError):
    """The worker process died mid-request (only that request fails)."""


class WorkerTimeout(WorkerError):
    """The request outlived its budget; its worker was killed and replaced."""


def _worker_main(conn) -> None:
    """The child's loop: recv a job, run the op, send the outcome."""
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if job is None:  # polite shutdown sentinel
            return
        op, payload = job
        try:
            outcome = ("ok", execute(op, payload))
        except ReproError as exc:
            outcome = ("user_error", type(exc).__name__, str(exc))
        except Exception as exc:  # noqa: BLE001 - shipped to the parent
            outcome = ("error", type(exc).__name__,
                       f"{exc}\n{traceback.format_exc(limit=8)}")
        try:
            conn.send(outcome)
        except (BrokenPipeError, OSError):
            return


def _pick_context() -> mp.context.BaseContext:
    """Fork where available (fast restarts); spawn elsewhere."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class WorkerSlot:
    """One restartable worker process plus its private pipe."""

    def __init__(self, ctx: mp.context.BaseContext, index: int):
        self._ctx = ctx
        self.index = index
        self.restarts = 0
        self._proc: mp.process.BaseProcess | None = None
        self._conn = None
        self._start()

    def _start(self) -> None:
        parent, child = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main, args=(child,), daemon=True,
            name=f"banger-worker-{self.index}",
        )
        proc.start()
        child.close()
        self._proc, self._conn = proc, parent

    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    def restart(self) -> None:
        """Kill whatever the slot is doing and bring up a fresh process."""
        self.kill()
        self.restarts += 1
        self._start()

    def kill(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None
        if self._proc is not None:
            if self._proc.is_alive():
                self._proc.terminate()
            self._proc.join(timeout=5.0)
            if self._proc.is_alive():  # pragma: no cover - stuck in a syscall
                self._proc.kill()
                self._proc.join(timeout=5.0)
            self._proc = None

    def request_stop(self) -> None:
        """Ask the worker to exit after its current job (drain path)."""
        if self._conn is not None:
            try:
                self._conn.send(None)
            except (BrokenPipeError, OSError):
                pass

    def run_blocking(self, op: str, payload: dict[str, Any]) -> tuple:
        """Ship one job and block for its reply (called from a thread).

        Raises ``EOFError``/``OSError`` when the child dies mid-job.
        """
        conn = self._conn
        if conn is None or not self.alive:
            raise EOFError("worker process is not running")
        conn.send((op, payload))
        return conn.recv()


class WorkerPool:
    """``size`` worker slots behind an async checkout queue."""

    def __init__(self, size: int):
        if size < 1:
            raise WorkerError(f"pool size must be >= 1, got {size}")
        self.size = size
        ctx = _pick_context()
        self._slots = [WorkerSlot(ctx, i) for i in range(size)]
        self._free: asyncio.Queue[WorkerSlot] = asyncio.Queue()
        for slot in self._slots:
            self._free.put_nowait(slot)
        # One thread per slot: each does nothing but block on its slot's
        # pipe while a job runs, so the event loop stays free.
        self._threads = ThreadPoolExecutor(
            max_workers=size, thread_name_prefix="banger-pool"
        )
        self._closed = False
        self._lock = threading.Lock()
        self.crashes = 0
        self.timeouts = 0

    @property
    def restarts(self) -> int:
        return sum(slot.restarts for slot in self._slots)

    async def run(
        self, op: str, payload: dict[str, Any], timeout: float | None = None
    ) -> tuple:
        """Run one op on the next free worker.

        Returns the worker's outcome tuple (``("ok", ...)`` /
        ``("user_error", ...)`` / ``("error", ...)``).  Raises
        :class:`WorkerCrash`, :class:`WorkerTimeout`, or propagates
        :class:`asyncio.CancelledError` after killing the worker.
        """
        if self._closed:
            raise WorkerError("pool is closed")
        slot = await self._free.get()
        loop = asyncio.get_running_loop()
        try:
            future = loop.run_in_executor(
                self._threads, slot.run_blocking, op, payload
            )
            try:
                outcome = await asyncio.wait_for(future, timeout)
            except asyncio.TimeoutError:
                # Checked before OSError: TimeoutError *is* an OSError
                # subclass, and this one means budget exceeded, not crash.
                with self._lock:
                    self.timeouts += 1
                slot.restart()
                self._swallow(future)
                raise WorkerTimeout(
                    f"{op!r} exceeded its {timeout:g}s budget; "
                    f"worker {slot.index} was recycled"
                ) from None
            except (EOFError, OSError) as exc:
                with self._lock:
                    self.crashes += 1
                slot.restart()
                raise WorkerCrash(
                    f"worker {slot.index} died while serving {op!r}"
                ) from exc
            except asyncio.CancelledError:
                # Client went away: the kill is the cancellation.
                slot.restart()
                self._swallow(future)
                raise
            return outcome
        finally:
            if not self._closed:
                self._free.put_nowait(slot)

    @staticmethod
    def _swallow(future: asyncio.Future) -> None:
        """The blocked pipe-read thread unblocks with EOF after the kill;
        consume its exception so nothing logs 'exception never retrieved'."""
        def _done(f: asyncio.Future) -> None:
            if not f.cancelled():
                f.exception()
        future.add_done_callback(_done)

    async def close(self, drain_timeout: float = 10.0) -> None:
        """Stop every worker: sentinel, bounded join, then terminate."""
        self._closed = True
        # Collect every slot back (waits for running jobs to check back in).
        held: list[WorkerSlot] = []
        deadline = asyncio.get_running_loop().time() + drain_timeout
        while len(held) < len(self._slots):
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                break
            try:
                held.append(
                    await asyncio.wait_for(self._free.get(), timeout=remaining)
                )
            except asyncio.TimeoutError:
                break
        for slot in self._slots:
            slot.request_stop()
        await asyncio.get_running_loop().run_in_executor(
            None, self._join_all
        )
        self._threads.shutdown(wait=False, cancel_futures=True)

    def _join_all(self) -> None:
        for slot in self._slots:
            slot.kill()

    def stats(self) -> dict[str, Any]:
        return {
            "size": self.size,
            "alive": sum(1 for s in self._slots if s.alive),
            "restarts": self.restarts,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
        }
