"""The banger daemon: coalescing, caching, backpressure, draining.

One asyncio event loop owns every connection; CPU-bound work never runs
on it.  A request travels::

    socket -> parse -> [backpressure?] -> body-hash -> coalesce key
           -> response cache?  -> in-flight duplicate?  -> worker pool
           -> response bytes  -> cache + every coalesced waiter

The coalesce key is content-addressed — ``(graph content_hash, machine
content_hash, scheduler cache key, options)`` via
:func:`repro.server.ops.coalesce_key` — so N concurrent identical
requests cost one scheduler run and share byte-identical responses, and
a warm repeat is a hash lookup.  Identical *bytes* short-circuit even the
key computation through a body-hash memo.

Failure semantics (documented in ``docs/server.md``, asserted by
``tests/server/``): payload problems are 400; backpressure is 503 with
``Retry-After``; a request that outlives ``--timeout`` is 504 and its
worker is recycled; a worker crash is 500 *for that request only*; a
client disconnect cancels its computation (kills the worker) unless other
waiters are coalesced onto it.  SIGTERM/SIGINT stop accepting new
connections, drain every in-flight request, then exit cleanly.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import signal
import sys
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import __version__
from repro.errors import ReproError
from repro.server import ops as ops_mod
from repro.server.metrics import ServerMetrics
from repro.server.ops import DEBUG_OPS, coalesce_key, execute, shared_service
from repro.server.protocol import (
    BufferedConn,
    ProtocolError,
    Request,
    encode_response,
    error_body,
    json_body,
    read_request,
)
from repro.server.store_api import store_request
from repro.server.workers import WorkerCrash, WorkerPool, WorkerTimeout
from repro.store import ProjectRepository, TenantQuota

#: URL path -> op name.  Debug routes exist only under ``--debug``.
ROUTES = {
    "/lint": "lint",
    "/schedule": "schedule",
    "/sweep": "sweep",
    "/simulate": "simulate",
    "/speedup": "speedup",
    "/codegen": "codegen",
    "/conform": "conform",
}
DEBUG_ROUTES = {
    "/debug/crash": "crash",
    "/debug/sleep": "sleep",
    "/debug/boom": "boom",
}

DEFAULT_PORT = 8045


class _ClientGone(Exception):
    """The client disconnected while its response was being computed."""


@dataclass
class _Inflight:
    """One in-progress computation every identical request shares."""

    future: asyncio.Future
    task: asyncio.Task | None = None
    waiters: int = 0


@dataclass
class _Outcome:
    status: int
    body: bytes
    kind: str  # computed | timeout | crashed | error
    counters: dict[str, Any] = field(default_factory=dict)


def _default_access_log(record: dict[str, Any]) -> None:
    print(json.dumps(record, sort_keys=True), file=sys.stderr, flush=True)


class BangerDaemon:
    """The long-lived service behind ``banger serve``.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    workers:
        ``>= 1``: that many restartable worker *processes*.  ``0``: run
        ops inline on a thread pool (no crash isolation, no hard
        cancellation — meant for tests and tiny deployments).  ``None``:
        ``min(4, cpu_count)``.
    queue_limit:
        Max admitted-but-unfinished compute requests; beyond it new work
        is answered 503 immediately (coalesced waiters ride along free).
    request_timeout:
        Per-request compute budget in seconds; exceeding it answers 504
        and recycles the worker.
    cache_entries:
        Bound of the response LRU (successful responses only).
    debug:
        Expose ``/debug/*`` fault-injection routes.
    access_log:
        Callable given one dict per finished request; ``None`` disables.
    store_dir:
        Directory for the project store's persistence; ``None`` keeps it
        in memory (still fully functional for the daemon's lifetime).
    tenant_quota:
        Per-tenant write limits (:class:`repro.store.TenantQuota`)
        enforced on ``/projects`` puts and forks; a violation is answered
        403 with ``Retry-After``, riding the same admission-control path
        as 503 backpressure.  ``None`` disables quotas.
    seed_corpus:
        Publish the built-in scenario corpus (shipped examples + every
        generator family) under the ``corpus`` tenant at startup.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        workers: int | None = None,
        queue_limit: int = 64,
        request_timeout: float = 30.0,
        cache_entries: int = 512,
        debug: bool = False,
        access_log: Callable[[dict[str, Any]], None] | None = _default_access_log,
        store_dir: str | None = None,
        tenant_quota: TenantQuota | None = None,
        seed_corpus: bool = True,
    ):
        import os

        self.host = host
        self.port = port
        self.workers = min(4, os.cpu_count() or 1) if workers is None else workers
        if self.workers < 0:
            raise ReproError(f"workers must be >= 0, got {workers}")
        self.queue_limit = queue_limit
        self.request_timeout = request_timeout
        self.cache_entries = cache_entries
        self.debug = debug
        self.access_log = access_log
        self.store_dir = store_dir
        self.tenant_quota = tenant_quota
        self.seed_corpus = seed_corpus
        self.store: ProjectRepository | None = None

        self.metrics = ServerMetrics()
        self.pool: WorkerPool | None = None
        self._inline: ThreadPoolExecutor | None = None
        self._keys: ThreadPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._started = time.monotonic()

        self._cache: "OrderedDict[str, bytes]" = OrderedDict()
        self._key_cache: "OrderedDict[str, str]" = OrderedDict()
        self._key_futures: dict[str, asyncio.Future] = {}
        self._inflight: dict[str, _Inflight] = {}
        self._active_ops = 0
        self._conn_tasks: set[asyncio.Task] = set()
        self._compute_tasks: set[asyncio.Task] = set()
        self._draining = False
        self._drain_event: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the socket and spin up the workers."""
        self._drain_event = asyncio.Event()
        self._stopped = asyncio.Event()
        if self.workers >= 1:
            self.pool = WorkerPool(self.workers)
        else:
            self._inline = ThreadPoolExecutor(
                max_workers=4, thread_name_prefix="banger-inline"
            )
        self._keys = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="banger-keys"
        )
        # The project store lives in the daemon process (refs are stateful;
        # worker processes only ever see immutable payloads).  Seeding runs
        # off-loop so a slow disk never delays the socket bind.
        self.store = ProjectRepository(self.store_dir, quota=self.tenant_quota)
        if self.seed_corpus:
            from repro.store.corpus import seed_corpus as _seed

            await asyncio.get_running_loop().run_in_executor(
                self._keys, _seed, self.store
            )
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes."""
        assert self._stopped is not None, "call start() first"
        await self._stopped.wait()

    async def shutdown(self, drain_timeout: float = 30.0) -> None:
        """Graceful stop: refuse new connections, drain, then exit."""
        if self._draining:
            return
        self._draining = True
        assert self._drain_event is not None and self._stopped is not None
        self._drain_event.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = asyncio.get_running_loop().time() + drain_timeout
        while self._conn_tasks:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                for task in self._conn_tasks:
                    task.cancel()
                break
            await asyncio.wait(set(self._conn_tasks), timeout=remaining)
        if self.pool is not None:
            await self.pool.close()
        if self._inline is not None:
            self._inline.shutdown(wait=False, cancel_futures=True)
        if self._keys is not None:
            self._keys.shutdown(wait=False, cancel_futures=True)
        self._stopped.set()

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        try:
            await self._connection_loop(reader, writer)
        except (_ClientGone, ConnectionResetError, BrokenPipeError):
            self.metrics.note_disconnect()
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(task)
            try:
                writer.close()
            except Exception:
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = BufferedConn(reader)
        peer = writer.get_extra_info("peername")
        client = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) else str(peer)
        assert self._drain_event is not None
        while True:
            read_task = asyncio.ensure_future(read_request(conn))
            drain_task = asyncio.ensure_future(self._drain_event.wait())
            try:
                done, _ = await asyncio.wait(
                    {read_task, drain_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if read_task not in done:
                    # Idle connection during drain: close it; nothing is lost.
                    read_task.cancel()
                    return
            finally:
                drain_task.cancel()

            try:
                request = read_task.result()
            except ProtocolError as exc:
                body = error_body("bad-request", str(exc))
                writer.write(encode_response(400, body, keep_alive=False))
                await writer.drain()
                return
            if request is None:
                return

            t0 = time.perf_counter()
            try:
                status, body, disposition = await self._dispatch(conn, request)
            except _ClientGone:
                self._log(request, client, 499, t0, "disconnect")
                raise
            ms = (time.perf_counter() - t0) * 1000.0
            keep = request.keep_alive and not self._draining
            extra = {"Retry-After": "1"} if status in (403, 503) else None
            # Record before writing: once the bytes are flushed the client
            # may act on them immediately, and observers (tests, scrapers)
            # must already see this request counted.
            self.metrics.observe(request.path, status, ms, disposition)
            self._log(request, client, status, t0, disposition)
            writer.write(
                encode_response(status, body, keep_alive=keep, extra_headers=extra)
            )
            await writer.drain()
            if not keep:
                return

    def _log(self, request: Request, client: str, status: int, t0: float,
             disposition: str) -> None:
        if self.access_log is None:
            return
        self.access_log({
            "ts": round(time.time(), 3),
            "client": client,
            "method": request.method,
            "path": request.path,
            "status": status,
            "ms": round((time.perf_counter() - t0) * 1000.0, 3),
            "disposition": disposition,
            "bytes_in": len(request.body),
        })

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    async def _dispatch(
        self, conn: BufferedConn, request: Request
    ) -> tuple[int, bytes, str]:
        path = request.path
        if path == "/healthz":
            return 200, json_body(self._healthz_doc()), "internal"
        if path == "/metrics":
            return 200, json_body(self._metrics_doc()), "internal"
        if path == "/projects" or path.startswith("/projects/"):
            return await self._store_dispatch(request)

        op = ROUTES.get(path)
        if op is None and self.debug:
            op = DEBUG_ROUTES.get(path)
        if op is None:
            return 404, error_body(
                "not-found", f"no such endpoint: {path}",
                endpoints=sorted(ROUTES) + ["/healthz", "/metrics", "/projects"],
            ), "error"
        if request.method != "POST":
            return 405, error_body(
                "method-not-allowed", f"{path} requires POST"
            ), "error"
        if op == "crash" and self.pool is None:
            return 400, error_body(
                "bad-request",
                "/debug/crash needs process workers (start with --workers >= 1)",
            ), "error"

        try:
            payload = request.json()
        except ProtocolError as exc:
            return 400, error_body("bad-request", str(exc)), "error"
        if not isinstance(payload, dict):
            return 400, error_body(
                "bad-request", "request body must be a JSON object"
            ), "error"

        if op in DEBUG_OPS:
            # Fault injection must hit the pool every time: no key, no
            # coalescing, no cache.
            return await self._lead_and_wait(conn, op, payload, key=None)

        # Backpressure: admission control before any CPU is spent.
        if self._active_ops >= self.queue_limit:
            return 503, error_body(
                "overloaded",
                f"daemon is at its queue limit ({self.queue_limit} in flight); "
                "retry shortly",
            ), "rejected"

        try:
            key = await self._coalesce_key(op, request.body, payload)
        except ReproError as exc:
            return 400, error_body("bad-request", str(exc)), "error"

        cached = self._cache_get(key)
        if cached is not None:
            return 200, cached, "cache"

        entry = self._inflight.get(key)
        if entry is not None:
            outcome = await self._wait_for_outcome(conn, entry)
            return outcome.status, outcome.body, "coalesced"
        return await self._lead_and_wait(conn, op, payload, key=key)

    async def _store_dispatch(
        self, request: Request
    ) -> tuple[int, bytes, str]:
        """Serve one ``/projects`` request off the event loop.

        Store operations are admitted through the same queue-limit gate as
        compute work (they hold an ``_active_ops`` slot while running), so
        an overloaded daemon answers 503 before touching the repository —
        and a quota violation inside it comes back 403 with the same
        ``Retry-After`` header 503 carries.
        """
        if self.store is None:
            return 404, error_body(
                "not-found", "the project store is not running yet"
            ), "error"
        if request.method == "POST":
            try:
                payload = request.json()
            except ProtocolError as exc:
                return 400, error_body("bad-request", str(exc)), "error"
            if not isinstance(payload, dict):
                return 400, error_body(
                    "bad-request", "request body must be a JSON object"
                ), "error"
        elif request.method == "GET":
            payload = {}
        else:
            return 405, error_body(
                "method-not-allowed",
                f"{request.path} accepts GET and POST",
            ), "error"
        if self._active_ops >= self.queue_limit:
            return 503, error_body(
                "overloaded",
                f"daemon is at its queue limit ({self.queue_limit} in flight); "
                "retry shortly",
            ), "rejected"
        loop = asyncio.get_running_loop()
        self._active_ops += 1
        self.metrics.enter(self._active_ops)
        try:
            status, doc = await loop.run_in_executor(
                self._keys, store_request,
                self.store, request.method, request.path, payload,
            )
        finally:
            self._active_ops -= 1
            self.metrics.exit(self._active_ops)
        disposition = "computed" if status == 200 else (
            "rejected" if status == 403 else "error"
        )
        return status, json_body(doc), disposition

    async def _lead_and_wait(
        self, conn: BufferedConn, op: str, payload: dict[str, Any],
        key: str | None,
    ) -> tuple[int, bytes, str]:
        if self._active_ops >= self.queue_limit:
            return 503, error_body(
                "overloaded",
                f"daemon is at its queue limit ({self.queue_limit} in flight); "
                "retry shortly",
            ), "rejected"
        loop = asyncio.get_running_loop()
        entry = _Inflight(future=loop.create_future())
        if key is not None:
            self._inflight[key] = entry
        entry.task = asyncio.ensure_future(self._compute(op, payload, key, entry))
        self._compute_tasks.add(entry.task)
        entry.task.add_done_callback(self._compute_tasks.discard)
        outcome = await self._wait_for_outcome(conn, entry)
        return outcome.status, outcome.body, outcome.kind

    async def _wait_for_outcome(
        self, conn: BufferedConn, entry: _Inflight
    ) -> _Outcome:
        """Await the shared outcome, watching the socket for disconnects."""
        entry.waiters += 1
        watcher = asyncio.ensure_future(conn.peek())
        try:
            while True:
                done, _ = await asyncio.wait(
                    {entry.future, watcher},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if entry.future in done:
                    return entry.future.result()
                data = watcher.result()
                if not data:
                    raise _ClientGone()
                # An eager client sent more bytes (already pushed back);
                # stop watching and just wait for the outcome.
                return await asyncio.shield(entry.future)
        finally:
            entry.waiters -= 1
            watcher.cancel()
            if (
                entry.waiters <= 0
                and not entry.future.done()
                and entry.task is not None
            ):
                # Nobody is listening any more: stop paying for the answer.
                entry.task.cancel()

    # ------------------------------------------------------------------ #
    # computation
    # ------------------------------------------------------------------ #
    async def _compute(
        self, op: str, payload: dict[str, Any], key: str | None, entry: _Inflight
    ) -> None:
        self._active_ops += 1
        self.metrics.enter(self._active_ops)
        outcome: _Outcome
        try:
            outcome = await self._run_op(op, payload)
        except asyncio.CancelledError:
            if not entry.future.done():
                entry.future.cancel()
            raise
        except Exception as exc:  # noqa: BLE001 - the response *is* the report
            outcome = _Outcome(
                500, error_body("internal", f"unexpected daemon error: {exc!r}"),
                "error",
            )
        finally:
            self._active_ops -= 1
            self.metrics.exit(self._active_ops)
            if key is not None:
                self._inflight.pop(key, None)
        if outcome.counters:
            self.metrics.fold_work(outcome.counters)
        if key is not None and outcome.status == 200:
            self._cache_put(key, outcome.body)
        if not entry.future.done():
            entry.future.set_result(outcome)

    async def _run_op(self, op: str, payload: dict[str, Any]) -> _Outcome:
        if self.pool is not None:
            try:
                reply = await self.pool.run(op, payload, self.request_timeout)
            except WorkerTimeout as exc:
                return _Outcome(504, error_body("timeout", str(exc)), "timeout")
            except WorkerCrash as exc:
                return _Outcome(
                    500, error_body("worker-crash", str(exc)), "crashed"
                )
        else:
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(self._inline, execute, op, payload)
            try:
                result = await asyncio.wait_for(
                    asyncio.shield(future), self.request_timeout
                )
                reply = ("ok", result)
            except asyncio.TimeoutError:
                future.add_done_callback(lambda f: f.cancelled() or f.exception())
                return _Outcome(
                    504,
                    error_body(
                        "timeout",
                        f"{op!r} exceeded its {self.request_timeout:g}s budget",
                    ),
                    "timeout",
                )
            except ReproError as exc:
                reply = ("user_error", type(exc).__name__, str(exc))
            except Exception as exc:  # noqa: BLE001
                reply = ("error", type(exc).__name__, str(exc))

        if reply[0] == "ok":
            doc = reply[1]
            return _Outcome(
                200, json_body(doc["result"]), "computed",
                counters=doc.get("counters", {}),
            )
        if reply[0] == "user_error":
            _, kind, message = reply
            return _Outcome(
                400, error_body("bad-request", message, detail=kind), "error"
            )
        _, kind, message = reply
        return _Outcome(
            500,
            error_body("internal", message.splitlines()[0] if message else kind,
                       detail=kind),
            "error",
        )

    # ------------------------------------------------------------------ #
    # coalesce keys + response cache
    # ------------------------------------------------------------------ #
    async def _coalesce_key(
        self, op: str, body: bytes, payload: dict[str, Any]
    ) -> str:
        """The request's content key, memoized by body bytes.

        Identical bodies skip even the project parse; the parse for a new
        body runs off-loop and concurrent identical bodies share it.
        """
        body_sha = hashlib.sha256(op.encode() + b"\0" + body).hexdigest()
        key = self._key_cache.get(body_sha)
        if key is not None:
            self._key_cache.move_to_end(body_sha)
            return key
        pending = self._key_futures.get(body_sha)
        if pending is None:
            loop = asyncio.get_running_loop()
            pending = loop.run_in_executor(self._keys, coalesce_key, op, payload)
            self._key_futures[body_sha] = pending
            try:
                key = await asyncio.shield(pending)
            finally:
                self._key_futures.pop(body_sha, None)
        else:
            key = await asyncio.shield(pending)
        self._key_cache[body_sha] = key
        self._key_cache.move_to_end(body_sha)
        while len(self._key_cache) > 4096:
            self._key_cache.popitem(last=False)
        return key

    def _cache_get(self, key: str) -> bytes | None:
        body = self._cache.get(key)
        if body is not None:
            self._cache.move_to_end(key)
        return body

    def _cache_put(self, key: str, body: bytes) -> None:
        self._cache[key] = body
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_entries:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------ #
    # introspection documents
    # ------------------------------------------------------------------ #
    def _worker_doc(self) -> dict[str, Any]:
        if self.pool is not None:
            doc = self.pool.stats()
            doc["mode"] = "process"
            return doc
        return {"mode": "inline", "size": 0, "alive": 0, "restarts": 0,
                "crashes": 0, "timeouts": 0}

    def _healthz_doc(self) -> dict[str, Any]:
        return {
            "type": "banger-healthz",
            "ok": True,
            "status": "draining" if self._draining else "serving",
            "version": __version__,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "workers": self._worker_doc(),
        }

    def _metrics_doc(self) -> dict[str, Any]:
        return {
            "type": "banger-metrics",
            "version": __version__,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "server": self.metrics.as_dict(),
            "workers": self._worker_doc(),
            "response_cache": {
                "entries": len(self._cache),
                "max_entries": self.cache_entries,
            },
            "service": shared_service().stats().as_dict(),
            "store": self.store.stats() if self.store is not None else None,
        }


# --------------------------------------------------------------------- #
# entry point used by `banger serve`
# --------------------------------------------------------------------- #
async def run_daemon(
    daemon: BangerDaemon,
    install_signals: bool = True,
    ready: Callable[[BangerDaemon], None] | None = None,
) -> None:
    """Start ``daemon``, wire SIGTERM/SIGINT to graceful drain, serve."""
    await daemon.start()
    if install_signals:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(daemon.shutdown())
                )
            except NotImplementedError:  # pragma: no cover - non-Unix
                pass
    if ready is not None:
        ready(daemon)
    await daemon.serve_forever()
