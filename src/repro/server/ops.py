"""The daemon's operations: one pure function per compute endpoint.

Each op maps a JSON payload to a JSON-able result document.  The same
functions run in three places — the daemon's worker processes, its inline
thread executor (``--workers 0``), and unit tests calling them directly —
so they hold no server state: every op gets its project from the payload
and its caching from the process-local :func:`shared_service`.

:func:`execute` wraps an op with counter accounting (kernel +
:class:`~repro.sched.service.ServiceStats` deltas) so the daemon can
aggregate *work* observability across processes, and
:func:`coalesce_key` derives the content-addressed identity the daemon
coalesces and caches on: ``(graph content_hash, machine content_hash,
scheduler cache key, remaining options)``.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict
from typing import Any, Callable

from repro.env.project import BangerProject
from repro.errors import ReproError, ValidationError
from repro.graph.serialize import fingerprint
from repro.lint import lint_project, to_json
from repro.sched.core import kernel_counters
from repro.sched.reactive import reactive_counters
from repro.sched.incremental import incremental_reschedule
from repro.sched.registry import resolve_scheduler, scheduler_cache_key
from repro.sched.serialize import schedule_from_dict, schedule_to_dict
from repro.sched.service import ScheduleRequest, ScheduleService
from repro.sim import dynamic_counters, simulate
from repro.viz.gantt import render_gantt


class OpError(ReproError):
    """A request payload the ops cannot serve — answered 400, never 500."""


# --------------------------------------------------------------------- #
# the process-local service (one per daemon worker / inline host)
# --------------------------------------------------------------------- #
_SERVICE: ScheduleService | None = None


def shared_service() -> ScheduleService:
    """The process-local :class:`ScheduleService` every op schedules through.

    Worker processes each hold one, so repeated misses that land on the
    same worker still reuse its kernel/schedule caches; the daemon's inline
    mode shares one across its whole thread pool (it is thread-safe).
    """
    global _SERVICE
    if _SERVICE is None:
        _SERVICE = ScheduleService()
    return _SERVICE


def reset_shared_service() -> None:
    """Drop the process-local service (tests)."""
    global _SERVICE
    _SERVICE = None


# --------------------------------------------------------------------- #
# payload helpers
# --------------------------------------------------------------------- #
def _project_from_payload(payload: dict[str, Any]) -> BangerProject:
    doc = payload.get("project")
    if not isinstance(doc, dict):
        raise OpError("payload must carry a 'project' object (a saved project "
                      "document, as produced by BangerProject.save)")
    try:
        return BangerProject.from_dict(doc, service=shared_service())
    except ValidationError as exc:
        raise OpError(str(exc)) from None
    except (KeyError, TypeError, AttributeError) as exc:
        raise OpError(f"malformed project document: {exc!r}") from None


def _proc_counts(payload: dict[str, Any]) -> tuple[int, ...] | None:
    raw = payload.get("proc_counts")
    if raw is None:
        return None
    try:
        counts = tuple(int(n) for n in raw)
    except (TypeError, ValueError):
        raise OpError(f"proc_counts must be a list of integers, got {raw!r}") from None
    if not counts or any(n < 1 for n in counts):
        raise OpError(f"proc_counts must be positive integers, got {raw!r}")
    return counts


def _scheduler_name(payload: dict[str, Any], key: str = "scheduler") -> str:
    name = payload.get(key, "mh")
    if not isinstance(name, str):
        raise OpError(f"{key} must be a scheduler name string, got {name!r}")
    return name


def _request(payload: dict[str, Any]) -> ScheduleRequest:
    return ScheduleRequest(
        scheduler=_scheduler_name(payload),
        proc_counts=_proc_counts(payload),
        family=payload.get("family"),
        # Server-side sweeps default to serial workers: the daemon already
        # fans requests out across its own pool, and nesting process pools
        # inside worker processes multiplies memory for little gain.
        jobs=int(payload.get("jobs", 1)),
        use_cache=bool(payload.get("use_cache", True)),
    )


# --------------------------------------------------------------------- #
# the ops
# --------------------------------------------------------------------- #
def op_lint(payload: dict[str, Any]) -> dict[str, Any]:
    project = _project_from_payload(payload)
    suppress = payload.get("suppress") or []
    if not isinstance(suppress, list):
        raise OpError(f"suppress must be a list of rule IDs, got {suppress!r}")
    fail_on = payload.get("fail_on", "error")
    if fail_on not in ("error", "warning"):
        raise OpError(f"fail_on must be 'error' or 'warning', got {fail_on!r}")
    concurrency = bool(payload.get("concurrency", False))
    scheduler = str(payload.get("scheduler", "mh"))
    report = lint_project(
        project,
        suppress=[str(r) for r in suppress],
        concurrency=concurrency,
        scheduler=scheduler,
    )
    failed = report.error_count > 0 or (
        fail_on == "warning" and report.warning_count > 0
    )
    doc = to_json(report)
    doc["type"] = "banger-lint"
    doc["ok"] = not failed
    return doc


def _base_schedule(payload: dict[str, Any]):
    """The previous schedule for an incremental request, if any."""
    doc = payload.get("base_schedule")
    if doc is None:
        return None
    if not isinstance(doc, dict):
        raise OpError(
            f"base_schedule must be a saved schedule document, got {doc!r}"
        )
    try:
        return schedule_from_dict(doc)
    except ReproError as exc:
        raise OpError(f"malformed base_schedule: {exc}") from None
    except (KeyError, TypeError, ValueError) as exc:
        raise OpError(f"malformed base_schedule document: {exc!r}") from None


def op_schedule(payload: dict[str, Any]) -> dict[str, Any]:
    from repro.sched.metrics import report as schedule_report

    project = _project_from_payload(payload)
    req = _request(payload)
    base = _base_schedule(payload)
    incremental = None
    if base is not None:
        # Edit-loop path: re-time against the client's previous schedule
        # instead of scheduling from scratch.  The base document is part of
        # the coalesce key, so identical edits still share one computation.
        try:
            result = incremental_reschedule(base, project.flat())
        except ReproError as exc:
            raise OpError(f"incremental reschedule failed: {exc}") from None
        schedule = result.schedule
        incremental = {
            "n_tasks": result.n_tasks,
            "n_dirty": result.n_dirty,
            "n_reused": result.n_reused,
            "reused_fraction": result.reused_fraction,
            "unchanged": result.unchanged,
            "fallback": result.fallback,
        }
    else:
        schedule = project.schedule(
            ScheduleRequest(scheduler=req.scheduler, use_cache=req.use_cache)
        )
    doc: dict[str, Any] = {
        "type": "banger-schedule",
        "project": project.name,
        "scheduler": schedule.scheduler,
        "n_procs": schedule.machine.n_procs,
        "makespan": schedule.makespan(),
        "report": asdict(schedule_report(schedule)),
        "schedule": schedule_to_dict(schedule),
    }
    if incremental is not None:
        doc["incremental"] = incremental
    if payload.get("gantt"):
        doc["gantt"] = render_gantt(schedule)
    return doc


def op_speedup(payload: dict[str, Any]) -> dict[str, Any]:
    project = _project_from_payload(payload)
    report = project.speedup(_request(payload))
    doc = asdict(report)
    doc["type"] = "banger-speedup"
    doc["points"] = [asdict(p) for p in report.points]
    return doc


def op_sweep(payload: dict[str, Any]) -> dict[str, Any]:
    project = _project_from_payload(payload)
    raw = payload.get("schedulers", ["mh"])
    if not isinstance(raw, list) or not raw:
        raise OpError(f"schedulers must be a non-empty list of names, got {raw!r}")
    reports = {}
    for name in raw:
        req = _request({**payload, "scheduler": name})
        rep = project.speedup(req)
        reports[str(name)] = {
            "family": rep.family,
            "serial_time": rep.serial_time,
            "max_parallelism": rep.max_parallelism,
            "points": [asdict(p) for p in rep.points],
        }
    return {
        "type": "banger-sweep",
        "project": project.name,
        "schedulers": reports,
    }


def _scenario(payload: dict[str, Any]):
    """The fault scenario for a dynamic simulate request, if any."""
    doc = payload.get("scenario")
    if doc is None:
        return None
    if not isinstance(doc, dict):
        raise OpError(f"scenario must be a fault-scenario document, got {doc!r}")
    from repro.machine.scenario import FaultScenario

    try:
        return FaultScenario.from_dict(doc)
    except ReproError as exc:
        raise OpError(f"malformed scenario: {exc}") from None
    except (KeyError, TypeError, ValueError) as exc:
        raise OpError(f"malformed scenario document: {exc!r}") from None


def op_simulate(payload: dict[str, Any]) -> dict[str, Any]:
    project = _project_from_payload(payload)
    req = _request(payload)
    contention = bool(payload.get("contention", False))
    scenario = _scenario(payload)
    schedule = project.schedule(
        ScheduleRequest(scheduler=req.scheduler, use_cache=req.use_cache)
    )
    doc: dict[str, Any] = {
        "type": "banger-simulate",
        "project": project.name,
        "scheduler": schedule.scheduler,
        "contention": contention,
        "static_makespan": schedule.makespan(),
    }
    if scenario is None:
        trace = simulate(schedule, contention=contention)
        doc["simulated_makespan"] = trace.makespan()
        return doc

    try:
        scenario.validate_for(schedule.machine)
    except ReproError as exc:
        raise OpError(f"scenario does not fit the project machine: {exc}") from None
    doc["scenario"] = scenario.name or "scenario"
    if payload.get("reactive"):
        from repro.sched.reactive import reactive_execute

        try:
            threshold = float(payload.get("threshold", 2.0))
        except (TypeError, ValueError) as exc:
            raise OpError(f"threshold must be a number: {exc}") from None
        result = reactive_execute(
            schedule, scenario, threshold=threshold, contention=contention
        )
        trace = result.trace
        doc["reactive"] = {
            "threshold": threshold,
            "rounds": result.n_rounds,
            "remapped_tasks": result.total_remaps,
            "passive_makespan": result.traces[0].makespan(),
        }
    else:
        from repro.sim.dynamic import simulate_dynamic

        trace = simulate_dynamic(schedule, scenario, contention=contention)
    doc["simulated_makespan"] = trace.makespan()
    doc["stranded"] = sorted(trace.stranded)
    doc["killed"] = sorted(trace.killed)
    doc["lost_messages"] = len(trace.lost)
    return doc


def op_codegen(payload: dict[str, Any]) -> dict[str, Any]:
    from repro.codegen.backends import get_backend
    from repro.errors import CodegenError
    from repro.graph.serialize import _encode_value

    project = _project_from_payload(payload)
    target = payload.get("target", "threads")
    if not isinstance(target, str):
        raise OpError(f"target must be a backend name string, got {target!r}")
    req = _request(payload)
    try:
        backend = get_backend(target)
        program = project.lower(
            ScheduleRequest(scheduler=req.scheduler, use_cache=req.use_cache)
        )
    except CodegenError as exc:
        raise OpError(str(exc)) from None
    doc: dict[str, Any] = {
        "type": "banger-codegen",
        "project": project.name,
        "target": target,
        "scheduler": program.scheduler,
        "n_procs": program.n_procs,
        "makespan": program.makespan,
        "ir_hash": program.content_hash(),
    }
    if backend.emits_source:
        doc["source"] = backend.emit(program)
    if payload.get("run"):
        if not backend.runnable:
            raise OpError(f"target {target!r} cannot run in-process; "
                          f"request its source instead")
        try:
            outputs = backend.run(program)
        except CodegenError as exc:
            raise OpError(str(exc)) from None
        doc["outputs"] = {k: _encode_value(v) for k, v in outputs.items()}
    return doc


def op_conform(payload: dict[str, Any]) -> dict[str, Any]:
    from repro.conformance import run

    oracles = payload.get("oracles") or None
    if oracles is not None and not isinstance(oracles, list):
        raise OpError(f"oracles must be a list of oracle names, got {oracles!r}")
    try:
        seed = int(payload.get("seed", 0))
        runs = int(payload.get("runs", 50))
    except (TypeError, ValueError) as exc:
        raise OpError(f"seed/runs must be integers: {exc}") from None
    budget = payload.get("budget")
    report = run(
        seed=seed,
        runs=runs,
        oracles=[str(o) for o in oracles] if oracles else None,
        time_budget=float(budget) if budget is not None else None,
    )
    doc = report.as_dict()
    doc["type"] = "banger-conform"
    return doc


# --------------------------------------------------------------------- #
# debug ops (refused unless the daemon runs with --debug)
# --------------------------------------------------------------------- #
def op_crash(payload: dict[str, Any]) -> dict[str, Any]:
    """Kill the hosting process mid-request (crash-isolation testing)."""
    os._exit(13)


def op_sleep(payload: dict[str, Any]) -> dict[str, Any]:
    """Hold a worker busy (timeout / drain / backpressure testing)."""
    seconds = float(payload.get("seconds", 1.0))
    time.sleep(min(seconds, 60.0))
    return {"type": "banger-sleep", "slept": seconds}


def op_boom(payload: dict[str, Any]) -> dict[str, Any]:
    """Raise an unexpected exception (500-path testing)."""
    raise RuntimeError("boom requested")


OPS: dict[str, Callable[[dict[str, Any]], dict[str, Any]]] = {
    "lint": op_lint,
    "schedule": op_schedule,
    "speedup": op_speedup,
    "sweep": op_sweep,
    "simulate": op_simulate,
    "codegen": op_codegen,
    "conform": op_conform,
    "crash": op_crash,
    "sleep": op_sleep,
    "boom": op_boom,
}

#: Ops only reachable when the daemon was started with ``--debug``.
DEBUG_OPS = frozenset({"crash", "sleep", "boom"})

#: Ops whose payload carries a project document (keyed by content hashes).
PROJECT_OPS = frozenset({"lint", "schedule", "speedup", "sweep", "simulate", "codegen"})

#: Payload fields consumed by each project op beyond the project itself —
#: everything that changes the answer must be part of the coalesce key.
_OPTION_FIELDS: dict[str, tuple[str, ...]] = {
    "lint": ("suppress", "fail_on", "concurrency", "scheduler"),
    "schedule": ("use_cache", "gantt", "base_schedule"),
    "speedup": ("proc_counts", "family", "use_cache"),
    "sweep": ("schedulers", "proc_counts", "family", "use_cache"),
    "simulate": ("contention", "use_cache", "scenario", "reactive", "threshold"),
    "codegen": ("target", "run", "use_cache"),
}


def coalesce_key(op: str, payload: dict[str, Any]) -> str:
    """The content-addressed identity of one request.

    Two requests with equal keys are guaranteed the same answer, so the
    daemon runs one and shares the bytes.  Project ops are keyed by the
    flattened graph's content hash, the machine's content hash, the
    resolved scheduler's cache key, and the op's remaining options — a
    reordered-but-identical JSON body maps to the same key.
    """
    if op not in OPS:
        raise OpError(f"unknown operation {op!r}")
    if op in PROJECT_OPS:
        project = _project_from_payload(payload)
        fps = project.fingerprints()
        if op in ("schedule", "speedup", "simulate", "codegen"):
            sched_key = scheduler_cache_key(
                resolve_scheduler(_scheduler_name(payload))
            )
        else:
            sched_key = ""
        options = {f: payload.get(f) for f in _OPTION_FIELDS[op]}
        return fingerprint([op, fps["graph"], fps["machine"], sched_key, options])
    return fingerprint([op, payload])


def execute(op: str, payload: dict[str, Any]) -> dict[str, Any]:
    """Run one op with counter accounting.

    Returns ``{"result": <response doc>, "counters": <work deltas>}`` —
    the daemon sends ``result`` to the client and folds ``counters`` into
    ``/metrics`` so scheduler runs are observable no matter which process
    performed them.
    """
    fn = OPS.get(op)
    if fn is None:
        raise OpError(f"unknown operation {op!r}")
    service = shared_service()
    k0, s0 = kernel_counters(), service.stats()
    d0, r0 = dynamic_counters(), reactive_counters()
    result = fn(payload)
    k1, s1 = kernel_counters(), service.stats()
    d1, r1 = dynamic_counters(), reactive_counters()
    return {
        "result": result,
        "counters": {
            "sched_runs": s1.misses - s0.misses,
            "service_hits": s1.hits - s0.hits,
            "kernel_builds": int(k1["kernel_builds"] - k0["kernel_builds"]),
            "kernel_build_ms": k1["kernel_build_ms"] - k0["kernel_build_ms"],
            "route_cache_hits": int(k1["route_cache_hits"] - k0["route_cache_hits"]),
            "route_cache_misses": int(
                k1["route_cache_misses"] - k0["route_cache_misses"]
            ),
            "compiled_hits": int(k1["compiled_hits"] - k0["compiled_hits"]),
            "compiled_misses": int(k1["compiled_misses"] - k0["compiled_misses"]),
            "reactive_remaps": int(r1["reactive_remaps"] - r0["reactive_remaps"]),
            "stranded_tasks": int(d1["stranded_tasks"] - d0["stranded_tasks"]),
        },
    }
