"""Server-side observability: request counters and latency percentiles.

Everything the daemon can answer about itself lives here.  Three layers
feed ``/metrics``:

* **server counters** — requests by endpoint and status, coalesce/cache
  dispositions, rejections, timeouts, worker crashes, live queue depth;
* **latency windows** — a bounded ring of recent per-endpoint latencies,
  reported as ``count``/``p50``/``p95`` (sliding-window percentiles, the
  way a scientist actually reads "is it still instant?");
* **work counters** — kernel/service deltas reported back by whichever
  process ran each op, summed here so scheduler runs are visible even
  when they happened three worker processes away.

All mutators take the lock: the daemon itself is single-threaded asyncio,
but inline mode folds counters in from executor threads and tests read
snapshots from other threads.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

#: Per-endpoint sliding-window size; at 1k req/s this is the last ~2 s,
#: at interactive rates the last several minutes.
LATENCY_WINDOW = 2048

#: The request dispositions an access-log line / counter may carry.
DISPOSITIONS = (
    "computed",    # a fresh run on a worker (or inline executor)
    "cache",       # served from the daemon's response cache
    "coalesced",   # shared another in-flight request's computation
    "rejected",    # bounced by backpressure (503)
    "timeout",     # exceeded the per-request budget (504)
    "crashed",     # its worker died (500)
    "error",       # op raised (400/500)
    "internal",    # /healthz, /metrics
)


class LatencyWindow:
    """Sliding window of the most recent latencies with exact percentiles."""

    def __init__(self, capacity: int = LATENCY_WINDOW):
        self._ring: deque[float] = deque(maxlen=capacity)
        self.count = 0

    def observe(self, ms: float) -> None:
        self._ring.append(ms)
        self.count += 1

    def percentile(self, p: float) -> float:
        if not self._ring:
            return 0.0
        ordered = sorted(self._ring)
        rank = max(0, min(len(ordered) - 1, round(p * (len(ordered) - 1))))
        return ordered[rank]

    def as_dict(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "p50": round(self.percentile(0.50), 3),
            "p95": round(self.percentile(0.95), 3),
        }


class ServerMetrics:
    """All daemon counters, aggregated and snapshot-able."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests_total = 0
        self.by_endpoint: dict[str, int] = {}
        self.by_status: dict[str, int] = {}
        self.by_disposition: dict[str, int] = {d: 0 for d in DISPOSITIONS}
        self.coalesce_hits = 0
        self.cache_hits = 0
        self.computed = 0
        self.rejected = 0
        self.timeouts = 0
        self.worker_crashes = 0
        self.bad_requests = 0
        self.disconnects = 0
        self.in_flight = 0
        self.queue_depth = 0
        self._latency: dict[str, LatencyWindow] = {}
        self._work: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def observe(self, endpoint: str, status: int, ms: float,
                disposition: str) -> None:
        """Record one finished request."""
        with self._lock:
            self.requests_total += 1
            self.by_endpoint[endpoint] = self.by_endpoint.get(endpoint, 0) + 1
            self.by_status[str(status)] = self.by_status.get(str(status), 0) + 1
            if disposition in self.by_disposition:
                self.by_disposition[disposition] += 1
            if disposition == "coalesced":
                self.coalesce_hits += 1
            elif disposition == "cache":
                self.cache_hits += 1
            elif disposition == "computed":
                self.computed += 1
            elif disposition == "rejected":
                self.rejected += 1
            elif disposition == "timeout":
                self.timeouts += 1
            elif disposition == "crashed":
                self.worker_crashes += 1
            if status == 400:
                self.bad_requests += 1
            window = self._latency.get(endpoint)
            if window is None:
                window = self._latency[endpoint] = LatencyWindow()
            window.observe(ms)

    def fold_work(self, counters: dict[str, Any]) -> None:
        """Fold one op's work-counter deltas into the aggregate."""
        with self._lock:
            for name, value in counters.items():
                if isinstance(value, (int, float)):
                    self._work[name] = self._work.get(name, 0) + value

    def note_disconnect(self) -> None:
        with self._lock:
            self.disconnects += 1

    def enter(self, queued: int) -> None:
        with self._lock:
            self.in_flight += 1
            self.queue_depth = queued

    def exit(self, queued: int) -> None:
        with self._lock:
            self.in_flight = max(0, self.in_flight - 1)
            self.queue_depth = queued

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def latency(self, endpoint: str) -> LatencyWindow | None:
        with self._lock:
            return self._latency.get(endpoint)

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "requests_total": self.requests_total,
                "by_endpoint": dict(self.by_endpoint),
                "by_status": dict(self.by_status),
                "by_disposition": dict(self.by_disposition),
                "coalesce_hits": self.coalesce_hits,
                "cache_hits": self.cache_hits,
                "computed": self.computed,
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "worker_crashes": self.worker_crashes,
                "bad_requests": self.bad_requests,
                "disconnects": self.disconnects,
                "in_flight": self.in_flight,
                "queue_depth": self.queue_depth,
                "latency_ms": {
                    endpoint: window.as_dict()
                    for endpoint, window in sorted(self._latency.items())
                },
                "work": {k: round(v, 3) for k, v in sorted(self._work.items())},
            }
