"""The backend protocol: what every codegen target implements.

A backend consumes a :class:`~repro.codegen.ir.LoweredProgram` — never a
schedule, never a plan — and either renders it as source text
(:meth:`Backend.emit`) or executes it (:meth:`Backend.run`).  Backends
hold no configuration state, so the registry maps names to classes, the
same shape as :data:`repro.sched.registry.SCHEDULERS`.
"""

from __future__ import annotations

from typing import Any

from repro.codegen.ir import LoweredProgram
from repro.errors import CodegenError


class Backend:
    """One codegen target.

    Subclasses set the class attributes and override :meth:`emit` (source
    targets), :meth:`run` (execution targets), or both.  The defaults
    raise :class:`CodegenError`, so asking a listing-only backend to run —
    or an execution-only backend for source — fails with a typed error
    instead of an ``AttributeError``.
    """

    #: registry name (``threads``, ``inproc``, ``mpi``, ``c``)
    name: str = ""
    #: one-line human description (``banger codegen --list``, ``/codegen``)
    description: str = ""
    #: whether :meth:`emit` produces source text
    emits_source: bool = False
    #: whether :meth:`run` can execute the program in this process
    runnable: bool = False

    def emit(self, program: LoweredProgram, **opts: Any) -> str:
        """Render ``program`` as source text for this target."""
        raise CodegenError(
            f"backend {self.name!r} does not emit source; "
            f"use run() or pick a source-emitting target"
        )

    def run(
        self, program: LoweredProgram, inputs: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        """Execute ``program`` in this process; returns the design outputs."""
        raise CodegenError(
            f"backend {self.name!r} cannot execute programs in-process; "
            f"use emit() and run the source on its native runtime"
        )
