"""The ``inproc`` backend: execute the IR directly, no source round-trip.

Where the ``threads`` backend renders Python text and ``exec``\\ s it, this
backend walks the :class:`~repro.codegen.ir.LoweredProgram` itself: one
worker thread per used processor, a ``Queue(maxsize=1)`` per channel, task
functions compiled once from the IR's stored Python bodies.  Besides the
design outputs it returns a **timestamped event trace** — every compute,
send, and receive with a global sequence number — which is what the
``exec_trace`` conformance oracle checks against the schedule's precedence
and channel plan (:func:`trace_problems`).

Event-ordering guarantees the recorder enforces (and the oracle relies on):

* a ``send`` event is recorded *before* its queue put, a ``recv`` event
  *after* its blocking get returns — so ``send.seq < recv.seq`` whenever a
  message actually flowed through a channel;
* a ``compute`` event is recorded after the task function returns, after
  the step's receives and before its sends — so producer ``compute`` <
  ``send`` < ``recv`` < consumer ``compute`` holds transitively.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.codegen.backends.base import Backend
from repro.codegen.ir import Channel, ComputeStep, LoweredProgram
from repro.codegen.pits2py import function_name
from repro.errors import CodegenError

#: Seconds one worker may block on a single receive before declaring the
#: run wedged (same budget as the threaded simulator).
RECV_TIMEOUT = 30.0


@dataclass(frozen=True)
class TraceEvent:
    """One observed runtime event, globally ordered by ``seq``."""

    seq: int
    #: seconds since the run started (monotonic clock)
    t: float
    #: ``"compute"`` | ``"send"`` | ``"recv"``
    kind: str
    proc: int
    task: str
    #: the channel for send/recv events; ``None`` for compute
    channel: Channel | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "t": self.t,
            "kind": self.kind,
            "proc": self.proc,
            "task": self.task,
            "channel": list(self.channel) if self.channel else None,
        }


@dataclass
class ExecutionResult:
    """Outputs plus the observable behaviour of one in-process run."""

    outputs: dict[str, Any]
    displays: list[str] = field(default_factory=list)
    events: tuple[TraceEvent, ...] = ()

    def events_of(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]


class _Recorder:
    """Thread-safe event log with a global sequence counter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []
        self._t0 = time.perf_counter()

    def record(self, kind: str, proc: int, task: str, channel: Channel | None = None) -> None:
        with self._lock:
            self._events.append(
                TraceEvent(
                    seq=len(self._events),
                    t=time.perf_counter() - self._t0,
                    kind=kind,
                    proc=proc,
                    task=task,
                    channel=channel,
                )
            )

    def events(self) -> tuple[TraceEvent, ...]:
        with self._lock:
            return tuple(self._events)


def compile_task_functions(program: LoweredProgram) -> dict[str, Callable[..., dict[str, Any]]]:
    """Compile the IR's stored task bodies into callables, once per run."""
    import numpy as _np

    from repro.codegen import runtime as _rt

    namespace: dict[str, Any] = {
        "__name__": "banger_inproc",
        "_np": _np,
        "_rt": _rt,
    }
    fns: dict[str, Callable[..., dict[str, Any]]] = {}
    for task in program.task_order:
        code = program.tasks[task].python
        exec(compile(code, f"<banger-ir:{task}>", "exec"), namespace)
        fns[task] = namespace[function_name(task)]
    return fns


class InprocBackend(Backend):
    """Direct IR execution on worker threads, with an event trace."""

    name = "inproc"
    description = (
        "execute the lowered IR in-process (thread per processor), "
        "returning outputs and an event trace"
    )
    emits_source = False
    runnable = True

    def run(
        self, program: LoweredProgram, inputs: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        return self.execute(program, inputs).outputs

    def execute(
        self, program: LoweredProgram, inputs: dict[str, Any] | None = None
    ) -> ExecutionResult:
        bound = dict(program.input_defaults)
        bound.update(inputs or {})
        needed = {var for step in program.all_steps() for var in step.graph_inputs}
        missing = sorted(v for v in needed if v not in bound)
        if missing:
            raise CodegenError(f"missing graph input value(s): {', '.join(missing)}")

        fns = compile_task_functions(program)
        channels: dict[Channel, queue.Queue] = {
            chan: queue.Queue(maxsize=1) for chan in program.channels
        }
        stores: dict[int, dict[tuple[str, str], Any]] = {
            p: {} for p in program.procs_used()
        }
        recorder = _Recorder()
        displays: list[str] = []
        display_lock = threading.Lock()
        failures: list[BaseException] = []

        def worker(proc: int) -> None:
            try:
                store = stores[proc]
                for step in program.steps(proc):
                    env: dict[str, Any] = {}
                    for var in step.graph_inputs:
                        env[var] = bound[var]
                    for read in step.reads:
                        if read.var:
                            env[read.var] = store[(read.src_task, read.var)]
                    for recv in step.recvs:
                        chan = step.recv_channel(recv)
                        try:
                            value = channels[chan].get(timeout=RECV_TIMEOUT)
                        except queue.Empty:
                            raise CodegenError(
                                f"processor {proc}: timed out waiting for "
                                f"{recv.var!r} from {recv.src_task!r} "
                                f"(processor {recv.src_proc})"
                            ) from None
                        recorder.record("recv", proc, step.task, chan)
                        if recv.var:
                            env[recv.var] = value

                    def _display(line: str, _task: str = step.task) -> None:
                        with display_lock:
                            displays.append(f"{_task}: {line}")

                    out = fns[step.task](env, _display)
                    recorder.record("compute", proc, step.task)
                    for var, value in out.items():
                        store[(step.task, var)] = value
                    for send in step.sends:
                        chan = ComputeStep.send_channel(send)
                        payload = store.get((send.src_task, send.var)) if send.var else None
                        recorder.record("send", proc, step.task, chan)
                        channels[chan].put(payload)
            except BaseException as exc:  # propagate to the caller's thread
                failures.append(exc)

        threads = [
            threading.Thread(target=worker, args=(p,), name=f"proc{p}", daemon=True)
            for p in program.procs_used()
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=RECV_TIMEOUT * 4)
            if t.is_alive():
                raise CodegenError(f"thread {t.name} did not finish (deadlock?)")
        if failures:
            raise failures[0]

        outputs: dict[str, Any] = {}
        for var, (producer, proc) in program.output_sources.items():
            try:
                outputs[var] = stores[proc][(producer, var)]
            except KeyError:
                raise CodegenError(
                    f"graph output {var!r} missing from processor {proc}"
                ) from None
        return ExecutionResult(
            outputs=outputs, displays=displays, events=recorder.events()
        )


# --------------------------------------------------------------------- #
# trace validation — the exec_trace oracle's checker
# --------------------------------------------------------------------- #
def trace_problems(
    program: LoweredProgram, events: Iterable[TraceEvent]
) -> list[str]:
    """Every way ``events`` can contradict the program's plan, described.

    Checks, in order: per-processor compute sequences match the IR's step
    lists exactly; every channel carried exactly one message with the send
    observed before the receive; every receive preceded its step's compute
    and every send followed it; and every message's producer computed
    before its consumer (the schedule's precedence constraints, observed
    at runtime rather than assumed).
    """
    events = list(events)
    problems: list[str] = []

    # --- per-processor compute order ----------------------------------- #
    computed: dict[int, list[str]] = {}
    compute_seq: dict[tuple[str, int], int] = {}
    for e in events:
        if e.kind == "compute":
            computed.setdefault(e.proc, []).append(e.task)
            compute_seq[(e.task, e.proc)] = e.seq
    for proc in program.procs_used():
        expected = [s.task for s in program.steps(proc)]
        got = computed.get(proc, [])
        if got != expected:
            problems.append(
                f"processor {proc} computed {got!r}, plan says {expected!r}"
            )

    # --- channel traffic ------------------------------------------------ #
    sends: dict[Channel, list[TraceEvent]] = {}
    recvs: dict[Channel, list[TraceEvent]] = {}
    for e in events:
        if e.kind == "send" and e.channel is not None:
            sends.setdefault(e.channel, []).append(e)
        elif e.kind == "recv" and e.channel is not None:
            recvs.setdefault(e.channel, []).append(e)
    for chan in program.channels:
        ns, nr = len(sends.get(chan, [])), len(recvs.get(chan, []))
        if ns != 1 or nr != 1:
            problems.append(
                f"channel {chan!r} carried {ns} send(s) and {nr} recv(s); "
                f"expected exactly one of each"
            )
            continue
        send, recv = sends[chan][0], recvs[chan][0]
        if not send.seq < recv.seq:
            problems.append(
                f"channel {chan!r}: recv (seq {recv.seq}) observed before "
                f"send (seq {send.seq})"
            )
    for chan in set(sends) | set(recvs):
        if chan not in set(program.channels):
            problems.append(f"unplanned channel {chan!r} carried traffic")

    # --- step-local ordering and cross-step precedence ------------------ #
    for step in program.all_steps():
        my_seq = compute_seq.get((step.task, step.proc))
        if my_seq is None:
            continue  # already reported as a missing compute above
        for recv in step.recvs:
            chan = step.recv_channel(recv)
            for e in recvs.get(chan, []):
                if e.seq > my_seq:
                    problems.append(
                        f"step {step.task!r}@{step.proc}: recv on {chan!r} "
                        f"(seq {e.seq}) after its compute (seq {my_seq})"
                    )
            src_seq = compute_seq.get((recv.src_task, recv.src_proc))
            if src_seq is not None and not src_seq < my_seq:
                problems.append(
                    f"precedence violated: {recv.src_task!r}@{recv.src_proc} "
                    f"(seq {src_seq}) did not complete before "
                    f"{step.task!r}@{step.proc} (seq {my_seq})"
                )
        for send in step.sends:
            chan = ComputeStep.send_channel(send)
            for e in sends.get(chan, []):
                if e.proc == step.proc and e.seq < my_seq:
                    problems.append(
                        f"step {step.task!r}@{step.proc}: send on {chan!r} "
                        f"(seq {e.seq}) before its compute (seq {my_seq})"
                    )
        for read in step.reads:
            src_seq = compute_seq.get((read.src_task, step.proc))
            if src_seq is not None and not src_seq < my_seq:
                problems.append(
                    f"local read violated: {read.src_task!r}@{step.proc} "
                    f"(seq {src_seq}) did not complete before "
                    f"{step.task!r}@{step.proc} (seq {my_seq})"
                )
    return problems
