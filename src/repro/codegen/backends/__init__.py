"""The backend registry: name -> codegen target class.

Mirrors :mod:`repro.sched.registry` — every surface that accepts "a
target" (``repro.codegen.generate``, ``banger codegen --target``, the
daemon's ``/codegen`` op) funnels through :func:`get_backend`, so the
dispatch rule and its error message exist exactly once.
"""

from __future__ import annotations

from typing import Any

from repro.codegen.backends.base import Backend
from repro.codegen.backends.c import CBackend
from repro.codegen.backends.inproc import (
    ExecutionResult,
    InprocBackend,
    TraceEvent,
    trace_problems,
)
from repro.codegen.backends.mpi import MpiBackend
from repro.codegen.backends.threads import ThreadsBackend, run_generated
from repro.errors import CodegenError

#: Backend registry: name -> zero-argument class (backends are stateless).
BACKENDS: dict[str, type[Backend]] = {
    "threads": ThreadsBackend,
    "inproc": InprocBackend,
    "mpi": MpiBackend,
    "c": CBackend,
}


def get_backend(name: str) -> Backend:
    """Instantiate a registered backend by name."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise CodegenError(
            f"unknown codegen target {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
    return cls()


def backend_names() -> list[str]:
    """Registered target names, sorted."""
    return sorted(BACKENDS)


def list_backends() -> list[dict[str, Any]]:
    """One descriptor per registered backend (name, description, abilities)."""
    out = []
    for name in sorted(BACKENDS):
        backend = BACKENDS[name]()
        out.append(
            {
                "name": backend.name,
                "description": backend.description,
                "emits_source": backend.emits_source,
                "runnable": backend.runnable,
            }
        )
    return out


__all__ = [
    "BACKENDS",
    "Backend",
    "CBackend",
    "ExecutionResult",
    "InprocBackend",
    "MpiBackend",
    "ThreadsBackend",
    "TraceEvent",
    "backend_names",
    "get_backend",
    "list_backends",
    "run_generated",
    "trace_problems",
]
