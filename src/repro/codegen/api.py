"""The one public codegen entry point: ``generate`` / ``run`` over targets.

Every codegen surface — :class:`~repro.env.project.BangerProject`, the CLI,
the daemon — funnels through :func:`generate` (source) or :func:`run`
(execution): coerce the argument to a :class:`~repro.codegen.ir.LoweredProgram`
once (:func:`as_lowered`), then hand it to the registered backend.  The old
per-target entry points (``generate_python`` / ``generate_mpi`` /
``generate_c``) survive as :class:`DeprecationWarning` aliases over this
API and emit byte-identical output.
"""

from __future__ import annotations

from typing import Any

from repro.codegen.backends import get_backend, list_backends
from repro.codegen.ir import LoweredProgram, lower
from repro.errors import CodegenError
from repro.sched.schedule import Schedule

__all__ = ["as_lowered", "generate", "list_backends", "run"]


def as_lowered(
    obj: Any, scheduler: Any = "mh", use_cache: bool = True
) -> LoweredProgram:
    """Coerce a project, schedule, or already-lowered program to the IR.

    * :class:`LoweredProgram` — returned as-is (``scheduler`` is ignored);
    * :class:`Schedule` — lowered directly (it already fixes the scheduler);
    * :class:`~repro.env.project.BangerProject` — scheduled with
      ``scheduler`` and lowered through the project's
      :class:`~repro.sched.service.ScheduleService`, so repeated calls hit
      the content-addressed IR cache.
    """
    if isinstance(obj, LoweredProgram):
        return obj
    if isinstance(obj, Schedule):
        return lower(obj)
    from repro.env.project import BangerProject  # env imports codegen; stay lazy

    if isinstance(obj, BangerProject):
        return obj.lower(scheduler, use_cache=use_cache)
    raise CodegenError(
        "expected a BangerProject, Schedule, or LoweredProgram, "
        f"got {type(obj).__name__}"
    )


def generate(
    project_or_schedule: Any,
    target: str = "threads",
    *,
    scheduler: Any = "mh",
    use_cache: bool = True,
    **opts: Any,
) -> str:
    """Source text for ``project_or_schedule`` on the named ``target``.

    ``scheduler``/``use_cache`` only apply when a project is passed (a
    schedule or lowered program already pins both).  Remaining keyword
    options go to the backend (e.g. ``module_doc=`` for ``threads``).
    Raises :class:`CodegenError` for unknown targets and for targets that
    do not emit source (``inproc`` — use :func:`run`).
    """
    program = as_lowered(project_or_schedule, scheduler, use_cache=use_cache)
    return get_backend(target).emit(program, **opts)


def run(
    project_or_schedule: Any,
    target: str = "inproc",
    inputs: dict[str, Any] | None = None,
    *,
    scheduler: Any = "mh",
    use_cache: bool = True,
) -> dict[str, Any]:
    """Execute ``project_or_schedule`` on a runnable target; returns outputs.

    ``inproc`` walks the IR directly; ``threads`` emits the program text
    and executes it in a fresh namespace.  ``mpi`` and ``c`` raise
    :class:`CodegenError` (their output runs on external runtimes).
    """
    program = as_lowered(project_or_schedule, scheduler, use_cache=use_cache)
    return get_backend(target).run(program, inputs)
