"""Code generation — the paper's promised final step, implemented.

Three generators, all driven by the schedule's communication plan:

* :func:`generate_python` — a runnable threaded message-passing Python
  program (:func:`run_generated` executes it for tests and demos);
* :func:`generate_mpi` — an mpi4py script (one rank per processor);
* :func:`generate_c` — C-like pseudocode for human review.

PITS-level translation lives in :mod:`repro.codegen.pits2py`
(:func:`gen_task_function`), with runtime semantics shared with the
interpreter via :mod:`repro.codegen.runtime`.
"""

from repro.codegen.cgen import generate_c
from repro.codegen.mpigen import generate_mpi
from repro.codegen.pits2py import function_name, gen_expr, gen_task_function, mangle
from repro.codegen.pygen import generate_python, run_generated

__all__ = [
    "function_name",
    "gen_expr",
    "gen_task_function",
    "generate_c",
    "generate_mpi",
    "generate_python",
    "mangle",
    "run_generated",
]
