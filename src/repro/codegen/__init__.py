"""Code generation — the paper's promised final step, implemented.

One lowering IR, many targets: a schedule is lowered once to a
:class:`~repro.codegen.ir.LoweredProgram` (:func:`lower`), and pluggable
backends (:mod:`repro.codegen.backends`) render or execute it:

* ``threads`` — a runnable threaded message-passing Python program;
* ``inproc`` — direct in-process execution of the IR, with an event trace;
* ``mpi`` — an mpi4py script (one rank per processor);
* ``c`` — C-like pseudocode for human review.

The public entry points are :func:`generate` (source text for any target)
and :func:`run` (execute on a runnable target); :func:`list_backends`
enumerates targets.  The historical per-target functions
(:func:`generate_python`, :func:`generate_mpi`, :func:`generate_c`) are
:class:`DeprecationWarning` aliases with byte-identical output.

PITS-level translation lives in :mod:`repro.codegen.pits2py`
(:func:`gen_task_function`), with runtime semantics shared with the
interpreter via :mod:`repro.codegen.runtime`.
"""

from repro.codegen.api import as_lowered, generate, run
from repro.codegen.backends import (
    BACKENDS,
    Backend,
    ExecutionResult,
    TraceEvent,
    backend_names,
    get_backend,
    list_backends,
    run_generated,
    trace_problems,
)
from repro.codegen.cgen import generate_c
from repro.codegen.ir import LoweredProgram, lower
from repro.codegen.mpigen import generate_mpi
from repro.codegen.pits2py import function_name, gen_expr, gen_task_function, mangle
from repro.codegen.pygen import generate_python

__all__ = [
    "BACKENDS",
    "Backend",
    "ExecutionResult",
    "LoweredProgram",
    "TraceEvent",
    "as_lowered",
    "backend_names",
    "function_name",
    "gen_expr",
    "gen_task_function",
    "generate",
    "generate_c",
    "generate_mpi",
    "generate_python",
    "get_backend",
    "list_backends",
    "lower",
    "mangle",
    "run",
    "run_generated",
    "trace_problems",
]
