"""The lowering IR: one canonical program form every backend consumes.

A :class:`LoweredProgram` is derived **once** from a schedule (flattened
graph + placement) and is the single source of truth for everything the
execution layer does with it:

* the ``threads`` backend renders it as the threaded message-passing
  Python program (:mod:`repro.codegen.backends.threads`);
* the ``inproc`` backend executes it directly on a thread pool with no
  source round-trip (:mod:`repro.codegen.backends.inproc`);
* the ``mpi`` and ``c`` backends render mpi4py / C-pseudocode listings;
* the static concurrency analyzer (:mod:`repro.analysis.concurrency`)
  extracts its channel-op sequences from the same step lists, so whatever
  the backends emit is exactly what gets verified.

Step ordering is delegated to the generator's historical ordering hook,
:func:`repro.codegen.pygen.proc_steps` (looked up at call time): patching
the hook changes the IR, and therefore *every* backend and the analyzer,
identically — that is the drift-proofing this module exists for.

The IR is canonical-JSON-serializable (:meth:`LoweredProgram.to_dict` /
:meth:`from_dict` round-trip) and content-hashed with the same fingerprint
machinery as :mod:`repro.graph.serialize`, so it can live in the
:class:`repro.sched.service.ScheduleService` cache and key daemon request
coalescing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import CodegenError
from repro.graph.serialize import _decode_value, _encode_value, fingerprint
from repro.sched.schedule import Schedule
from repro.sim.plan import CommPlan, build_comm_plan

#: Bump when the document layout changes; hashes embed it, so old cache
#: entries can never be mistaken for new ones.
IR_VERSION = 1

#: (src_task, dst_task, var, dst_proc) — one single-shot message channel.
Channel = tuple[str, str, str, int]


# --------------------------------------------------------------------- #
# per-step operations
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ReadOp:
    """Read ``var`` of ``src_task`` from this processor's local store."""

    src_task: str
    var: str


@dataclass(frozen=True)
class RecvOp:
    """Block until ``var`` of ``src_task`` arrives from ``src_proc``."""

    src_task: str
    var: str
    src_proc: int
    size: float = 1.0


@dataclass(frozen=True)
class SendOp:
    """Ship ``var`` (produced here by ``src_task``) to ``dst_proc``."""

    src_task: str
    dst_task: str
    var: str
    dst_proc: int
    size: float = 1.0


@dataclass(frozen=True)
class ComputeStep:
    """Run one task copy: receive, read locals, execute, then send."""

    task: str
    proc: int
    start: float
    graph_inputs: tuple[str, ...] = ()
    reads: tuple[ReadOp, ...] = ()
    recvs: tuple[RecvOp, ...] = ()
    sends: tuple[SendOp, ...] = ()

    def recv_channel(self, recv: RecvOp) -> Channel:
        return (recv.src_task, self.task, recv.var, self.proc)

    @staticmethod
    def send_channel(send: SendOp) -> Channel:
        return (send.src_task, send.dst_task, send.var, send.dst_proc)


@dataclass(frozen=True)
class TaskCode:
    """Both renderings of one task's routine the backends need."""

    #: the original PITS source (C backend re-parses it)
    pits: str
    #: the translated Python ``def`` (threads/inproc/mpi backends)
    python: str


# --------------------------------------------------------------------- #
# the program
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class LoweredProgram:
    """Canonical per-processor program lowered from one schedule."""

    design: str
    machine: str
    n_procs: int
    scheduler: str
    makespan: float
    #: emission order for task routines (deduplicated topological order)
    task_order: tuple[str, ...]
    tasks: dict[str, TaskCode] = field(default_factory=dict)
    input_defaults: dict[str, Any] = field(default_factory=dict)
    #: processor -> its step list, in execution order; empty processors
    #: are omitted (keys iterate sorted)
    procs: dict[int, tuple[ComputeStep, ...]] = field(default_factory=dict)
    #: every channel, deduplicated, in first-send order
    channels: tuple[Channel, ...] = ()
    #: graph output variable -> (producer task, processor holding it)
    output_sources: dict[str, tuple[str, int]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def procs_used(self) -> list[int]:
        return sorted(self.procs)

    def steps(self, proc: int) -> tuple[ComputeStep, ...]:
        return self.procs.get(proc, ())

    def all_steps(self) -> Iterator[ComputeStep]:
        for proc in sorted(self.procs):
            yield from self.procs[proc]

    def step_count(self) -> int:
        return sum(len(steps) for steps in self.procs.values())

    # ------------------------------------------------------------------ #
    # serialization + content addressing
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {
            "format": IR_VERSION,
            "type": "lowered-program",
            "design": self.design,
            "machine": self.machine,
            "n_procs": self.n_procs,
            "scheduler": self.scheduler,
            "makespan": self.makespan,
            "task_order": list(self.task_order),
            "tasks": {
                name: {"pits": code.pits, "python": code.python}
                for name, code in self.tasks.items()
            },
            "input_defaults": {
                k: _encode_value(v) for k, v in self.input_defaults.items()
            },
            "procs": [
                {
                    "proc": proc,
                    "steps": [
                        {
                            "task": s.task,
                            "start": s.start,
                            "graph_inputs": list(s.graph_inputs),
                            "reads": [[r.src_task, r.var] for r in s.reads],
                            "recvs": [
                                [r.src_task, r.var, r.src_proc, r.size]
                                for r in s.recvs
                            ],
                            "sends": [
                                [s_.src_task, s_.dst_task, s_.var,
                                 s_.dst_proc, s_.size]
                                for s_ in s.sends
                            ],
                        }
                        for s in self.procs[proc]
                    ],
                }
                for proc in sorted(self.procs)
            ],
            "channels": [list(c) for c in self.channels],
            "output_sources": {
                var: [task, proc]
                for var, (task, proc) in self.output_sources.items()
            },
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "LoweredProgram":
        if doc.get("type") != "lowered-program":
            raise CodegenError(
                f"not a lowered-program document (type={doc.get('type')!r})"
            )
        if doc.get("format") != IR_VERSION:
            raise CodegenError(
                f"unsupported lowered-program format {doc.get('format')!r}; "
                f"this build reads version {IR_VERSION}"
            )
        procs: dict[int, tuple[ComputeStep, ...]] = {}
        for entry in doc.get("procs", []):
            proc = int(entry["proc"])
            procs[proc] = tuple(
                ComputeStep(
                    task=s["task"],
                    proc=proc,
                    start=float(s["start"]),
                    graph_inputs=tuple(s.get("graph_inputs", ())),
                    reads=tuple(ReadOp(*r) for r in s.get("reads", ())),
                    recvs=tuple(
                        RecvOp(r[0], r[1], int(r[2]), float(r[3]))
                        for r in s.get("recvs", ())
                    ),
                    sends=tuple(
                        SendOp(x[0], x[1], x[2], int(x[3]), float(x[4]))
                        for x in s.get("sends", ())
                    ),
                )
                for s in entry.get("steps", ())
            )
        return cls(
            design=doc.get("design", ""),
            machine=doc.get("machine", ""),
            n_procs=int(doc.get("n_procs", 0)),
            scheduler=doc.get("scheduler", ""),
            makespan=float(doc.get("makespan", 0.0)),
            task_order=tuple(doc.get("task_order", ())),
            tasks={
                name: TaskCode(pits=entry["pits"], python=entry["python"])
                for name, entry in (doc.get("tasks") or {}).items()
            },
            input_defaults={
                k: _decode_value(v)
                for k, v in (doc.get("input_defaults") or {}).items()
            },
            procs=procs,
            channels=tuple(
                (c[0], c[1], c[2], int(c[3])) for c in doc.get("channels", ())
            ),
            output_sources={
                var: (pair[0], int(pair[1]))
                for var, pair in (doc.get("output_sources") or {}).items()
            },
        )

    def content_hash(self) -> str:
        """SHA-256 fingerprint of the canonical document — the cache key."""
        return fingerprint(self.to_dict())


# --------------------------------------------------------------------- #
# lowering
# --------------------------------------------------------------------- #
def lower_steps(
    plan: CommPlan,
) -> tuple[dict[int, tuple[ComputeStep, ...]], tuple[Channel, ...]]:
    """The structural half of lowering: per-processor step lists + channels.

    Ordering is delegated to :func:`repro.codegen.pygen.proc_steps` (looked
    up at call time, so a patched hook changes the IR — and with it every
    backend and the concurrency analyzer — identically).
    """
    from repro.codegen import pygen

    procs: dict[int, tuple[ComputeStep, ...]] = {}
    channels: list[Channel] = []
    seen: set[Channel] = set()
    for proc in sorted(plan.steps_by_proc):
        steps = []
        for step in pygen.proc_steps(plan, proc):
            compute = ComputeStep(
                task=step.task,
                proc=proc,
                start=step.start,
                graph_inputs=tuple(step.graph_inputs),
                reads=tuple(ReadOp(r.src_task, r.var) for r in step.local_reads),
                recvs=tuple(
                    RecvOp(r.src_task, r.var, r.src_proc, r.size)
                    for r in step.recvs
                ),
                sends=tuple(
                    SendOp(s.src_task, s.dst_task, s.var, s.dst_proc, s.size)
                    for s in step.sends
                ),
            )
            steps.append(compute)
            for send in compute.sends:
                chan = ComputeStep.send_channel(send)
                if chan not in seen:
                    seen.add(chan)
                    channels.append(chan)
        if steps:
            procs[proc] = tuple(steps)
    return procs, tuple(channels)


def lower(schedule: Schedule, plan: CommPlan | None = None) -> LoweredProgram:
    """Lower one schedule to its canonical :class:`LoweredProgram`.

    Raises :class:`CodegenError` if any task has no PITS program or a
    program with static errors — exactly the gate the source generators
    have always applied.
    """
    from repro.codegen.pits2py import gen_task_function

    graph = schedule.graph
    plan = plan if plan is not None else build_comm_plan(schedule)

    task_order = tuple(dict.fromkeys(graph.topological_order()))
    tasks: dict[str, TaskCode] = {}
    for task in task_order:
        source = graph.task(task).program
        if source is None:
            raise CodegenError(
                f"task {task!r} has no PITS program; cannot generate code"
            )
        tasks[task] = TaskCode(pits=source, python=gen_task_function(task, source))

    procs, channels = lower_steps(plan)
    return LoweredProgram(
        design=graph.name,
        machine=schedule.machine.name,
        n_procs=schedule.machine.n_procs,
        scheduler=schedule.scheduler,
        makespan=schedule.makespan(),
        task_order=task_order,
        tasks=tasks,
        input_defaults=dict(graph.input_values),
        procs=procs,
        channels=channels,
        output_sources={
            var: (task, proc)
            for var, (task, proc) in plan.output_sources.items()
        },
    )
