"""Deprecated facade over the ``mpi`` backend.

The emitter lives in :mod:`repro.codegen.backends.mpi`, driven by the
lowering IR; :func:`generate_mpi` survives as a :class:`DeprecationWarning`
alias with byte-identical output.
"""

from __future__ import annotations

import warnings

from repro.sched.schedule import Schedule


def generate_mpi(schedule: Schedule) -> str:
    """Deprecated alias: use ``repro.codegen.generate(schedule, target="mpi")``."""
    warnings.warn(
        "generate_mpi() is deprecated; use "
        "repro.codegen.generate(schedule, target='mpi')",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.codegen.api import generate

    return generate(schedule, target="mpi")
