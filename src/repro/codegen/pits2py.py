"""Translate PITS routines into Python functions.

Each dataflow node's routine becomes::

    def task_<name>(env, _display):
        v_a = env['a']            # inputs
        ...translated body...
        return {'x': v_x}         # outputs

Variables are prefixed ``v_`` so PITS names can never collide with Python
keywords or the runtime.  All arithmetic with nontrivial semantics (1-based
subscripts, guarded division, inclusive float loops, builtins) goes through
:mod:`repro.codegen.runtime` (imported as ``_rt``), so generated programs
compute exactly what the interpreter computes — including name resolution:
declared variables shadow constants, as in the interpreter's
env-before-constants lookup.
"""

from __future__ import annotations

from repro.calc import ast
from repro.calc.analyze import errors as static_errors
from repro.calc.builtins import CONSTANTS
from repro.calc.parser import parse
from repro.errors import CodegenError

_INDENT = "    "

_BINOPS = {
    "+": "+",
    "-": "-",
    "*": "*",
    "=": "==",
    "<>": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "and": "and",
    "or": "or",
}


def mangle(name: str) -> str:
    return f"v_{name}"


class _Translator:
    """Carries the program's declared-name set through the recursion."""

    def __init__(self, declared: frozenset[str]):
        self.declared = declared

    # ------------------------------------------------------------------ #
    def expr(self, e: ast.Expr) -> str:
        if isinstance(e, ast.Num):
            return repr(e.value)
        if isinstance(e, ast.BoolLit):
            return "True" if e.value else "False"
        if isinstance(e, ast.Str):
            return repr(e.value)
        if isinstance(e, ast.Name):
            if e.ident not in self.declared:
                if e.ident in CONSTANTS:
                    return repr(CONSTANTS[e.ident])
                if e.ident.lower() == e.ident and e.ident.upper() in CONSTANTS:
                    return repr(CONSTANTS[e.ident.upper()])
            return mangle(e.ident)
        if isinstance(e, ast.Index):
            subs = ", ".join(self.expr(s) for s in e.subscripts)
            return f"_rt.get({mangle(e.base)}, {e.base!r}, {subs})"
        if isinstance(e, ast.Unary):
            if e.op == "not":
                return f"(not {self.expr(e.operand)})"
            return f"({e.op}{self.expr(e.operand)})"
        if isinstance(e, ast.Binary):
            l, r = self.expr(e.left), self.expr(e.right)
            if e.op == "/":
                return f"_rt.div({l}, {r})"
            if e.op == "%":
                return f"_rt.mod({l}, {r})"
            if e.op == "^":
                return f"_rt.power({l}, {r})"
            return f"({l} {_BINOPS[e.op]} {r})"
        if isinstance(e, ast.Call):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"_rt.call({e.func!r}{', ' if args else ''}{args})"
        if isinstance(e, ast.ArrayLit):
            if e.elements and all(isinstance(x, ast.ArrayLit) for x in e.elements):
                rows = ", ".join(
                    "[" + ", ".join(self.expr(v) for v in row.elements) + "]"  # type: ignore[union-attr]
                    for row in e.elements
                )
                return f"_np.array([{rows}], dtype=float)"
            items = ", ".join(self.expr(x) for x in e.elements)
            return f"_np.array([{items}], dtype=float)"
        raise CodegenError(f"cannot generate code for {type(e).__name__}")

    # ------------------------------------------------------------------ #
    def stmt(self, s: ast.Stmt, depth: int) -> list[str]:
        pad = _INDENT * depth
        if isinstance(s, ast.Assign):
            value = self.expr(s.value)
            if isinstance(s.target, ast.Name):
                return [f"{pad}{mangle(s.target.ident)} = _rt.assign({value})"]
            target = s.target
            subs = ", ".join(self.expr(x) for x in target.subscripts)  # type: ignore[union-attr]
            return [
                f"{pad}_rt.set_({mangle(target.base)}, {target.base!r}, {value}, {subs})"  # type: ignore[union-attr]
            ]
        if isinstance(s, ast.If):
            lines = [f"{pad}if {self.expr(s.cond)}:"]
            lines += self.block(s.then, depth + 1)
            for cond, block in s.elifs:
                lines.append(f"{pad}elif {self.expr(cond)}:")
                lines += self.block(block, depth + 1)
            if s.orelse:
                lines.append(f"{pad}else:")
                lines += self.block(s.orelse, depth + 1)
            return lines
        if isinstance(s, ast.While):
            return [f"{pad}while {self.expr(s.cond)}:"] + self.block(s.body, depth + 1)
        if isinstance(s, ast.Repeat):
            lines = [f"{pad}while True:"]
            lines += self.block(s.body, depth + 1)
            lines.append(f"{pad}{_INDENT}if {self.expr(s.cond)}:")
            lines.append(f"{pad}{_INDENT}{_INDENT}break")
            return lines
        if isinstance(s, ast.For):
            step = self.expr(s.step) if s.step is not None else "1.0"
            header = (
                f"{pad}for {mangle(s.var)} in _rt.for_range("
                f"{self.expr(s.start)}, {self.expr(s.stop)}, {step}):"
            )
            return [header] + self.block(s.body, depth + 1)
        if isinstance(s, ast.CallStmt):
            if s.call.func == "display":
                args = ", ".join(self.expr(a) for a in s.call.args)
                return [f"{pad}_display(_rt.display_line({args}))"]
            return [f"{pad}{self.expr(s.call)}"]
        raise CodegenError(f"cannot generate code for {type(s).__name__}")

    def block(self, stmts: tuple[ast.Stmt, ...], depth: int) -> list[str]:
        if not stmts:
            return [f"{_INDENT * depth}pass"]
        out: list[str] = []
        for s in stmts:
            out += self.stmt(s, depth)
        return out


def _declared_names(program: ast.Program) -> frozenset[str]:
    loop_vars = {s.var for s in ast.walk_stmts(program.body) if isinstance(s, ast.For)}
    return program.declared | loop_vars


def gen_expr(e: ast.Expr, declared: frozenset[str] = frozenset()) -> str:
    """Python expression text for a PITS expression (standalone helper)."""
    return _Translator(declared).expr(e)


def function_name(task: str) -> str:
    """A safe Python function name for a (possibly dotted) task name."""
    safe = "".join(c if c.isalnum() else "_" for c in task)
    return f"task_{safe}"


def _elidable_statements(program: ast.Program) -> set[int]:
    """Indices of top-level statements safe to drop from generated code.

    A trailing statement (after the last one that writes an output or
    displays) can be elided when the effect summary proves it pure (no
    display) and total (cannot raise) and no kept later statement reads
    what it writes — eliding it is then unobservable: same outputs, same
    display lines, same exceptions.
    """
    from repro.analysis.absint import interpret

    effects = interpret(program).effects
    outputs = frozenset(program.outputs)
    last_live = -1
    for i, eff in enumerate(effects):
        if (eff.writes & outputs) or eff.displays:
            last_live = i
    elide: set[int] = set()
    needed: set[str] = set()
    for i in range(len(program.body) - 1, last_live, -1):
        eff = effects[i]
        if eff.pure and eff.total and not (eff.writes & needed):
            elide.add(i)
        else:
            needed |= eff.reads
    return elide


def gen_task_function(task: str, source: str) -> str:
    """Full ``def`` text for one task's PITS routine.

    Raises :class:`CodegenError` if the routine has static errors — Banger
    refuses to generate code for a design that fails instant feedback.
    Top-level statements the effect analysis proves dead, pure, and total
    are not emitted (the static-reordering gate: only statements with no
    observable effect may move or vanish).
    """
    problems = static_errors(source)
    if problems:
        raise CodegenError(
            f"task {task!r} has static errors: "
            + "; ".join(str(p) for p in problems[:5])
        )
    program = parse(source)
    elide = _elidable_statements(program)
    body = tuple(s for i, s in enumerate(program.body) if i not in elide)
    translator = _Translator(_declared_names(program))
    lines = [f"def {function_name(task)}(env, _display):"]
    doc = f"PITS routine {program.name or task!r}"
    lines.append(f'{_INDENT}"""{doc}."""')
    for name in program.inputs:
        lines.append(f"{_INDENT}{mangle(name)} = env[{name!r}]")
    lines += translator.block(body, 1)
    returns = ", ".join(f"{name!r}: {mangle(name)}" for name in program.outputs)
    lines.append(f"{_INDENT}return {{{returns}}}")
    return "\n".join(lines)
