"""Runtime support for generated Python programs.

Generated code references this module as ``_rt`` so that its numeric
semantics are *identical* to the PITS interpreter's (1-based subscripts,
value-semantics assignment, the same builtin implementations and domain
errors).  Keeping one implementation here is what lets the test suite assert
bit-for-bit equality between interpreted and generated runs.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.calc.builtins import BUILTINS, CONSTANTS
from repro.errors import CalcRuntimeError, CalcTypeError

__all__ = ["call", "get", "set_", "assign", "div", "mod", "power", "display_line",
           "CONSTANTS", "for_range"]


def call(name: str, *args: Any) -> Any:
    """Invoke a PITS builtin by name (arity already checked at generation)."""
    return BUILTINS[name].fn(*args)


def _index(sub: float, extent: int, base: str) -> int:
    k = int(round(float(sub)))
    if abs(float(sub) - k) > 1e-9:
        raise CalcTypeError(f"subscript {sub} is not an integer")
    if not 1 <= k <= extent:
        raise CalcRuntimeError(f"subscript {k} out of range 1..{extent} for {base!r}")
    return k - 1


def get(arr: Any, base: str, *subs: float) -> float:
    """1-based read ``arr[subs...]`` with the interpreter's checks."""
    if not isinstance(arr, np.ndarray):
        raise CalcTypeError(f"{base!r} is not an array")
    if arr.ndim != len(subs):
        raise CalcTypeError(f"{base!r} has rank {arr.ndim}, {len(subs)} subscript(s) given")
    idx = tuple(_index(s, extent, base) for s, extent in zip(subs, arr.shape))
    return float(arr[idx])


def set_(arr: Any, base: str, value: float, *subs: float) -> None:
    """1-based write ``arr[subs...] := value``."""
    if not isinstance(arr, np.ndarray):
        raise CalcTypeError(f"{base!r} is not an array (create it with zeros(...) first)")
    if arr.ndim != len(subs):
        raise CalcTypeError(f"{base!r} has rank {arr.ndim}, {len(subs)} subscript(s) given")
    idx = tuple(_index(s, extent, base) for s, extent in zip(subs, arr.shape))
    arr[idx] = float(value)


def assign(value: Any) -> Any:
    """Value semantics: whole-array assignment copies."""
    if isinstance(value, np.ndarray):
        return value.copy()
    return value


def div(l: Any, r: Any) -> Any:
    if isinstance(l, np.ndarray) or isinstance(r, np.ndarray):
        with np.errstate(divide="raise", invalid="raise"):
            try:
                return l / r
            except FloatingPointError:
                raise CalcRuntimeError("array division by zero") from None
    if r == 0:
        raise CalcRuntimeError("division by zero")
    return l / r


def mod(l: float, r: float) -> float:
    if r == 0:
        raise CalcRuntimeError("modulo by zero")
    return l % r


def power(l: float, r: float) -> float:
    try:
        result = l**r
    except (OverflowError, ZeroDivisionError, ValueError) as exc:
        raise CalcRuntimeError(f"{l} ^ {r}: {exc}") from None
    if isinstance(result, complex):
        raise CalcRuntimeError(f"{l} ^ {r} is not a real number")
    return float(result)


def for_range(start: float, stop: float, step: float):
    """Inclusive float loop matching the interpreter's ``for`` semantics."""
    if step == 0:
        raise CalcRuntimeError("for step must not be 0")
    i = float(start)
    stop = float(stop)
    step = float(step)
    while (step > 0 and i <= stop + 1e-12) or (step < 0 and i >= stop - 1e-12):
        yield i
        i += step


def display_line(*parts: Any) -> str:
    """Render a ``display(...)`` call the way the interpreter does."""
    rendered = []
    for v in parts:
        if isinstance(v, str):
            rendered.append(v)
        elif isinstance(v, bool):
            rendered.append("true" if v else "false")
        elif isinstance(v, float):
            rendered.append(f"{v:g}")
        elif isinstance(v, np.ndarray):
            rendered.append(np.array2string(v, precision=6, suppress_small=True))
        else:
            rendered.append(str(v))
    return " ".join(rendered)
