"""The threaded-Python generator's historical home (now a thin facade).

The emitter itself lives in :mod:`repro.codegen.backends.threads`, driven
by the lowering IR (:mod:`repro.codegen.ir`).  This module keeps two
things:

* :func:`proc_steps` — **the** step-ordering hook.  The IR lowering
  (:func:`repro.codegen.ir.lower_steps`) looks it up at call time, so
  patching it reorders the IR and with it every backend *and* the static
  concurrency analyzer, identically.
* :func:`generate_python` — a :class:`DeprecationWarning` alias for
  ``repro.codegen.generate(schedule, target="threads")``, kept
  byte-identical to the historical output.

:func:`run_generated` is re-exported from the threads backend unchanged.
"""

from __future__ import annotations

import warnings

from repro.codegen.backends.threads import run_generated  # noqa: F401
from repro.sched.schedule import Schedule
from repro.sim.plan import CommPlan, Step


def proc_steps(plan: CommPlan, proc: int) -> list[Step]:
    """The steps of one processor, in the order the generated code runs them.

    This is the single point deciding emission order; the IR lowering calls
    it for every processor, so whatever order it returns is what every
    backend emits and what the static concurrency analyzer
    (:mod:`repro.analysis.concurrency`) checks for deadlock freedom.
    """
    return plan.steps_by_proc[proc]


def generate_python(schedule: Schedule, module_doc: str = "") -> str:
    """Deprecated alias: use ``repro.codegen.generate(schedule, target="threads")``."""
    warnings.warn(
        "generate_python() is deprecated; use "
        "repro.codegen.generate(schedule, target='threads')",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.codegen.api import generate

    return generate(schedule, target="threads", module_doc=module_doc)
