"""Deprecated facade over the ``c`` backend.

The pseudocode renderer lives in :mod:`repro.codegen.backends.c`, driven
by the lowering IR; :func:`generate_c` survives as a
:class:`DeprecationWarning` alias with byte-identical output.
"""

from __future__ import annotations

import warnings

from repro.sched.schedule import Schedule


def generate_c(schedule: Schedule) -> str:
    """Deprecated alias: use ``repro.codegen.generate(schedule, target="c")``."""
    warnings.warn(
        "generate_c() is deprecated; use "
        "repro.codegen.generate(schedule, target='c')",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.codegen.api import generate

    return generate(schedule, target="c")
