"""The shared oldest-first eviction policy for on-disk tiers.

Two disk tiers grow without bound unless something trims them: the
versioned schedule cache in :mod:`repro.sched.service` and the project
store's blob tier (:mod:`repro.store.blobs`).  Both reuse this one policy —
scan the files, order by age (modification time, then name so ties are
deterministic), delete oldest-first until the tier fits its byte cap.

Deletion is advisory and corruption-tolerant in the same spirit as the
caches themselves: a file that vanishes mid-scan or cannot be unlinked is
skipped, never a traceback — the caller's next enforcement pass picks it
up again.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable


def dir_files(root: Path | str, pattern: str = "**/*.json") -> list[Path]:
    """Every regular file under ``root`` matching ``pattern`` (recursive)."""
    base = Path(root)
    if not base.is_dir():
        return []
    return [p for p in base.glob(pattern) if p.is_file()]


def oldest_first(paths: Iterable[Path]) -> list[Path]:
    """``paths`` ordered oldest-modified first; name breaks mtime ties.

    Files that disappear between listing and ``stat`` sort first (they are
    already gone, deleting them is a no-op) so racing cleaners converge.
    """

    def age_key(path: Path) -> tuple[float, str]:
        try:
            return (path.stat().st_mtime, path.name)
        except OSError:
            return (float("-inf"), path.name)

    return sorted(paths, key=age_key)


def total_bytes(paths: Iterable[Path]) -> int:
    """Sum of file sizes, skipping files that vanished."""
    total = 0
    for path in paths:
        try:
            total += path.stat().st_size
        except OSError:
            pass
    return total


def enforce_size_cap(
    paths: Iterable[Path],
    max_bytes: int,
    keep: frozenset[Path] | set[Path] = frozenset(),
) -> list[Path]:
    """Delete oldest files until the set fits ``max_bytes``.

    ``keep`` names files that must survive no matter their age (the blob
    tier passes its live set).  Returns the paths actually deleted, in
    deletion order; the caller folds the count into its stats.
    """
    candidates = oldest_first(paths)
    sizes: dict[Path, int] = {}
    for path in candidates:
        try:
            sizes[path] = path.stat().st_size
        except OSError:
            sizes[path] = 0
    over = sum(sizes.values()) - max_bytes
    deleted: list[Path] = []
    for path in candidates:
        if over <= 0:
            break
        if path in keep:
            continue
        try:
            os.unlink(path)
        except OSError:
            continue
        over -= sizes[path]
        deleted.append(path)
    return deleted
