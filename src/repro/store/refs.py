"""The ref tier: tenant-scoped project names with linear version history.

A *ref* is the mutable part of the store — everything else is immutable
blobs.  Each tenant owns a flat namespace of project names, and each name
carries a linear list of versions; version ``N`` points at a manifest blob
by content hash and remembers an optional commit message.  Forking a
project is just writing a new ref whose first version reuses an existing
manifest hash — no blob is copied.

Disk layout (when a root directory is given)::

    refs/<tenant>/<name>.json
        {"type": "project-ref", "format": 1,
         "versions": [{"v": 1, "manifest": "<hash>", "message": "..."}]}

Writes are atomic (tmp + replace) and the whole tier is thread-safe.
"""

from __future__ import annotations

import json
import re
import threading
from pathlib import Path
from typing import Any

from repro.errors import StoreError

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


def check_name(kind: str, value: str) -> str:
    """Validate a tenant or project name; returns it unchanged."""
    if not isinstance(value, str) or not _NAME_RE.match(value):
        raise StoreError(
            f"bad {kind} name {value!r}: use letters, digits, '_', '-', '.'"
        )
    return value


class RefStore:
    """Named, versioned pointers into the blob tier."""

    def __init__(self, root: str | Path | None = None):
        self._root = Path(root) if root is not None else None
        # tenant -> name -> list of version entries (dicts)
        self._refs: dict[str, dict[str, list[dict[str, Any]]]] = {}
        self._lock = threading.RLock()
        if self._root is not None:
            self._load_disk()

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def _refs_dir(self) -> Path:
        assert self._root is not None
        return self._root / "refs"

    def _path(self, tenant: str, name: str) -> Path:
        return self._refs_dir() / tenant / f"{name}.json"

    def _load_disk(self) -> None:
        base = self._refs_dir()
        if not base.is_dir():
            return
        for path in sorted(base.glob("*/*.json")):
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
                versions = doc["versions"]
            except (OSError, json.JSONDecodeError, KeyError):
                continue  # corrupt ref: skip, never crash startup
            tenant, name = path.parent.name, path.stem
            self._refs.setdefault(tenant, {})[name] = list(versions)

    def _persist(self, tenant: str, name: str) -> None:
        if self._root is None:
            return
        path = self._path(tenant, name)
        doc = {
            "type": "project-ref",
            "format": 1,
            "versions": self._refs[tenant][name],
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(
                json.dumps(doc, sort_keys=True, indent=1), encoding="utf-8"
            )
            tmp.replace(path)
        except OSError:
            pass  # memory copy stays authoritative for this process

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._refs)

    def projects(self, tenant: str) -> list[str]:
        with self._lock:
            return sorted(self._refs.get(tenant, {}))

    def versions(self, tenant: str, name: str) -> list[dict[str, Any]]:
        """The full history, oldest first; copies so callers cannot mutate."""
        with self._lock:
            try:
                entries = self._refs[tenant][name]
            except KeyError:
                raise StoreError(
                    f"no project {tenant}/{name} in the store"
                ) from None
            return [dict(e) for e in entries]

    def head(self, tenant: str, name: str) -> dict[str, Any]:
        return self.versions(tenant, name)[-1]

    def resolve(self, tenant: str, name: str, version: int | None = None
                ) -> dict[str, Any]:
        """Version entry for ``version`` (1-based), or the head if ``None``."""
        history = self.versions(tenant, name)
        if version is None:
            return history[-1]
        for entry in history:
            if entry["v"] == version:
                return entry
        raise StoreError(
            f"{tenant}/{name} has no version {version} "
            f"(history has {len(history)})"
        )

    def exists(self, tenant: str, name: str) -> bool:
        with self._lock:
            return name in self._refs.get(tenant, {})

    def version_count(self, tenant: str) -> int:
        """Total versions across all of one tenant's projects."""
        with self._lock:
            return sum(
                len(v) for v in self._refs.get(tenant, {}).values()
            )

    def manifests(self, heads_only: bool = False) -> set[str]:
        """Every manifest hash any ref points at (the GC live roots).

        ``heads_only`` restricts the set to each project's newest version —
        the roots a size-capped GC must preserve when it trims history.
        """
        with self._lock:
            return {
                entry["manifest"]
                for projects in self._refs.values()
                for history in projects.values()
                for entry in (history[-1:] if heads_only else history)
            }

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def append(self, tenant: str, name: str, manifest: str,
               message: str = "") -> int:
        """Add one version pointing at ``manifest``; returns its number."""
        check_name("tenant", tenant)
        check_name("project", name)
        with self._lock:
            history = self._refs.setdefault(tenant, {}).setdefault(name, [])
            version = history[-1]["v"] + 1 if history else 1
            history.append(
                {"v": version, "manifest": manifest, "message": message}
            )
            self._persist(tenant, name)
            return version

    def delete(self, tenant: str, name: str) -> None:
        with self._lock:
            try:
                del self._refs[tenant][name]
            except KeyError:
                raise StoreError(
                    f"no project {tenant}/{name} in the store"
                ) from None
            if not self._refs[tenant]:
                del self._refs[tenant]
        if self._root is not None:
            try:
                self._path(tenant, name).unlink()
            except OSError:
                pass
