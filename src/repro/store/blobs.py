"""The blob tier: content-addressed, deduplicating document storage.

A blob is one JSON-able document stored under the SHA-256 of its canonical
JSON rendering (:func:`repro.graph.serialize.canonical_json`) — the same
hashes the scheduling cache and daemon coalescing already key on, so a
design stored here and a design posted to ``/schedule`` share one identity.
Writing the same content twice stores it once; that is the whole
deduplication story, and :meth:`BlobStore.stats` measures how much it saved.

The store is memory-first with an optional disk tier (``objects/ab/abcd….json``,
git-style fan-out).  Disk reads are corruption-tolerant: an entry whose
bytes no longer hash to its name is evicted and reported missing, never a
traceback.  All methods are thread-safe — the daemon serves many
connections over one store.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Iterator

from repro.errors import StoreError
from repro.graph.serialize import canonical_json, fingerprint
from repro.store.evict import dir_files, enforce_size_cap, oldest_first


class BlobStats:
    """Write/read accounting for one blob store."""

    def __init__(self) -> None:
        self.puts = 0
        self.dedup_hits = 0
        self.gets = 0
        self.misses = 0
        self.evictions = 0
        self.logical_bytes = 0   # bytes callers asked to store (pre-dedup)
        self.stored_bytes = 0    # bytes actually held (post-dedup)

    @property
    def dedup_ratio(self) -> float:
        """logical / stored — > 1.0 whenever deduplication saved anything."""
        return self.logical_bytes / self.stored_bytes if self.stored_bytes else 1.0

    def as_dict(self) -> dict[str, Any]:
        doc = dict(vars(self))
        doc["dedup_ratio"] = round(self.dedup_ratio, 4)
        return doc


class BlobStore:
    """Content-addressed blob storage with optional disk persistence.

    Parameters
    ----------
    root:
        Directory for the disk tier (created lazily); ``None`` keeps every
        blob in memory only.
    """

    def __init__(self, root: str | Path | None = None):
        self._root = Path(root) if root is not None else None
        self._mem: dict[str, str] = {}
        self._lock = threading.RLock()
        self.stats = BlobStats()
        if self._root is not None:
            # Adopt whatever a previous process left behind so stored_bytes
            # and dedup accounting stay truthful across restarts.
            for path in dir_files(self._objects_dir()):
                self.stats.stored_bytes += path.stat().st_size

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    def _objects_dir(self) -> Path:
        assert self._root is not None
        return self._root / "objects"

    def _path(self, digest: str) -> Path:
        return self._objects_dir() / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------ #
    # core operations
    # ------------------------------------------------------------------ #
    def put(self, doc: Any) -> str:
        """Store ``doc``; returns its content hash.  Idempotent by content."""
        text = canonical_json(doc)
        digest = fingerprint(doc)
        with self._lock:
            self.stats.puts += 1
            self.stats.logical_bytes += len(text)
            if digest in self._mem or (
                self._root is not None and self._path(digest).exists()
            ):
                self.stats.dedup_hits += 1
                self._mem.setdefault(digest, text)
                return digest
            self._mem[digest] = text
            self.stats.stored_bytes += len(text)
        if self._root is not None:
            self._write(digest, text)
        return digest

    def _write(self, digest: str, text: str) -> None:
        path = self._path(digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(text, encoding="utf-8")
            tmp.replace(path)
        except OSError:
            # A full or read-only disk must never break a put: the blob
            # still lives in memory for this process's lifetime.
            pass

    def get(self, digest: str) -> Any:
        """The stored document, or :class:`StoreError` if absent/corrupt."""
        with self._lock:
            self.stats.gets += 1
            text = self._mem.get(digest)
        if text is None and self._root is not None:
            text = self._disk_read(digest)
            if text is not None:
                with self._lock:
                    self._mem.setdefault(digest, text)
        if text is None:
            with self._lock:
                self.stats.misses += 1
            raise StoreError(f"no blob {digest[:12]}… in the store")
        return json.loads(text)

    def _disk_read(self, digest: str) -> str | None:
        path = self._path(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        # Verify the content address: bytes that do not hash to their own
        # name are corrupt and get evicted rather than served.
        if self._text_fingerprint(text) != digest:
            try:
                path.unlink()
            except OSError:
                pass
            with self._lock:
                self.stats.evictions += 1
                self.stats.stored_bytes = max(
                    0, self.stats.stored_bytes - len(text)
                )
            return None
        return text

    @staticmethod
    def _text_fingerprint(text: str) -> str:
        try:
            return fingerprint(json.loads(text))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return ""

    def has(self, digest: str) -> bool:
        with self._lock:
            if digest in self._mem:
                return True
        return self._root is not None and self._path(digest).exists()

    def delete(self, digest: str) -> bool:
        """Remove one blob; returns whether anything was deleted."""
        removed = False
        with self._lock:
            text = self._mem.pop(digest, None)
            if text is not None:
                removed = True
                self.stats.stored_bytes = max(
                    0, self.stats.stored_bytes - len(text)
                )
        if self._root is not None:
            path = self._path(digest)
            try:
                size = path.stat().st_size
                path.unlink()
                if not removed:
                    with self._lock:
                        self.stats.stored_bytes = max(
                            0, self.stats.stored_bytes - size
                        )
                removed = True
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------ #
    # enumeration + GC support
    # ------------------------------------------------------------------ #
    def digests(self) -> list[str]:
        """Every stored content hash (memory ∪ disk), sorted."""
        with self._lock:
            known = set(self._mem)
        if self._root is not None:
            for path in dir_files(self._objects_dir()):
                known.add(path.stem)
        return sorted(known)

    def __len__(self) -> int:
        return len(self.digests())

    def __iter__(self) -> Iterator[str]:
        return iter(self.digests())

    def total_bytes(self) -> int:
        with self._lock:
            return self.stats.stored_bytes

    def sweep(self, live: set[str]) -> list[str]:
        """Delete every blob not in ``live`` (oldest-first on disk).

        Returns the deleted digests; the shared eviction policy
        (:mod:`repro.store.evict`) orders the disk candidates.
        """
        deleted: list[str] = []
        if self._root is not None:
            dead = [
                p for p in oldest_first(dir_files(self._objects_dir()))
                if p.stem not in live
            ]
            for path in dead:
                if self.delete(path.stem):
                    deleted.append(path.stem)
        for digest in list(self.digests()):
            if digest not in live and digest not in deleted:
                if self.delete(digest):
                    deleted.append(digest)
        with self._lock:
            self.stats.evictions += len(deleted)
        return deleted

    def enforce_cap(
        self, max_bytes: int, keep: set[str] = frozenset()
    ) -> list[str]:
        """Trim oldest blobs until under ``max_bytes``, sparing ``keep``.

        In-memory-only blobs count toward the cap too and are trimmed in
        digest order after the disk tier; returns the deleted digests.
        """
        deleted: list[str] = []
        if self._root is not None:
            files = dir_files(self._objects_dir())
            sizes = {}
            for path in files:
                try:
                    sizes[path] = path.stat().st_size
                except OSError:
                    sizes[path] = 0
            keep_paths = {self._path(d) for d in keep}
            for path in enforce_size_cap(files, max_bytes, keep=keep_paths):
                digest = path.stem
                with self._lock:
                    self._mem.pop(digest, None)
                    self.stats.stored_bytes = max(
                        0, self.stats.stored_bytes - sizes.get(path, 0)
                    )
                deleted.append(digest)
        while self.total_bytes() > max_bytes:
            with self._lock:
                trimmable = sorted(set(self._mem) - set(keep) - set(deleted))
                if not trimmable:
                    break
            if self.delete(trimmable[0]):
                deleted.append(trimmable[0])
        with self._lock:
            self.stats.evictions += len(deleted)
        return deleted
