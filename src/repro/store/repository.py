"""The project repository: multi-tenant ``get/put/fork/diff/log`` over blobs.

A stored project decomposes into content-addressed components so that
shared structure is stored exactly once across every tenant and version:

* the **design** document, with each composite node's ``"subgraph"``
  replaced by ``{"__blob__": <hash>}`` (recursively) and each task node's
  PITS ``"program"`` source replaced by ``{"__pits__": <hash>}``,
* the **machine** document, if the project pins one,
* an optional **scenario** document (fault scripts, sweep configs, …),
* a **manifest** tying the component hashes together and pinning the
  fingerprint of the original, fully-inflated project document.

``get`` reinflates and *verifies* that pinned fingerprint, so a stored
project is byte-identical (in canonical JSON) to what was put — corruption
anywhere in the chain is detected, never silently served.  ``fork`` writes
a new ref at an existing manifest (zero copies); ``diff`` compares two
versions hash-by-hash and, when designs differ, reports node-level deltas
with dotted paths into composite subgraphs.

Per-tenant quotas (:class:`TenantQuota`) bound project count, history
length, and logical bytes written; violations raise
:class:`repro.errors.QuotaExceeded`, which the daemon maps to HTTP 403.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import QuotaExceeded, StoreError
from repro.graph.serialize import canonical_json, fingerprint
from repro.store.blobs import BlobStore
from repro.store.refs import RefStore

MANIFEST_FORMAT = 1

#: Tenants never subject to quota checks (the built-in corpus must always
#: seed successfully regardless of daemon configuration).
EXEMPT_TENANTS = frozenset({"corpus"})


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant write limits; ``0`` disables the corresponding check."""

    max_projects: int = 0
    max_versions_per_project: int = 0
    max_bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "max_projects": self.max_projects,
            "max_versions_per_project": self.max_versions_per_project,
            "max_bytes": self.max_bytes,
        }


class ProjectRepository:
    """Content-addressed, versioned, multi-tenant project storage.

    Parameters
    ----------
    root:
        Directory for persistence (blob + ref tiers); ``None`` keeps the
        repository purely in memory.
    quota:
        Default :class:`TenantQuota` applied to every non-exempt tenant.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        quota: TenantQuota | None = None,
    ):
        self.blobs = BlobStore(root)
        self.refs = RefStore(root)
        self.quota = quota
        self._usage: dict[str, int] = {}  # logical bytes written, per tenant
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # design decomposition
    # ------------------------------------------------------------------ #
    def _deflate_design(self, doc: dict[str, Any]) -> dict[str, Any]:
        """Replace subgraphs and PITS programs with blob references."""
        out = dict(doc)
        nodes = []
        for node in doc.get("nodes", []):
            node = dict(node)
            sub = node.get("subgraph")
            if isinstance(sub, dict):
                node["subgraph"] = {
                    "__blob__": self.blobs.put(self._deflate_design(sub))
                }
            program = node.get("program")
            if isinstance(program, str):
                node["program"] = {
                    "__pits__": self.blobs.put(
                        {"type": "pits-program", "source": program}
                    )
                }
            nodes.append(node)
        out["nodes"] = nodes
        return out

    def _inflate_design(self, doc: dict[str, Any]) -> dict[str, Any]:
        """Resolve blob references back into the original nested document."""
        out = dict(doc)
        nodes = []
        for node in doc.get("nodes", []):
            node = dict(node)
            sub = node.get("subgraph")
            if isinstance(sub, dict) and "__blob__" in sub:
                node["subgraph"] = self._inflate_design(
                    self.blobs.get(sub["__blob__"])
                )
            program = node.get("program")
            if isinstance(program, dict) and "__pits__" in program:
                node["program"] = self.blobs.get(program["__pits__"])["source"]
            nodes.append(node)
        out["nodes"] = nodes
        return out

    # ------------------------------------------------------------------ #
    # quota enforcement
    # ------------------------------------------------------------------ #
    def _check_quota(self, tenant: str, name: str, incoming_bytes: int) -> None:
        quota = self.quota
        if quota is None or tenant in EXEMPT_TENANTS:
            return
        if (
            quota.max_projects
            and not self.refs.exists(tenant, name)
            and len(self.refs.projects(tenant)) >= quota.max_projects
        ):
            raise QuotaExceeded(
                f"tenant {tenant!r} is at its project quota "
                f"({quota.max_projects})",
                tenant=tenant,
                quota=quota.max_projects,
                usage=len(self.refs.projects(tenant)),
            )
        if quota.max_versions_per_project and self.refs.exists(tenant, name):
            depth = len(self.refs.versions(tenant, name))
            if depth >= quota.max_versions_per_project:
                raise QuotaExceeded(
                    f"project {tenant}/{name} is at its version quota "
                    f"({quota.max_versions_per_project})",
                    tenant=tenant,
                    quota=quota.max_versions_per_project,
                    usage=depth,
                )
        if quota.max_bytes:
            would_be = self._usage.get(tenant, 0) + incoming_bytes
            if would_be > quota.max_bytes:
                raise QuotaExceeded(
                    f"tenant {tenant!r} would exceed its byte quota "
                    f"({would_be} > {quota.max_bytes})",
                    tenant=tenant,
                    quota=quota.max_bytes,
                    usage=would_be,
                )

    def usage(self, tenant: str) -> int:
        """Logical bytes this tenant has written (this process lifetime)."""
        with self._lock:
            return self._usage.get(tenant, 0)

    # ------------------------------------------------------------------ #
    # put / get
    # ------------------------------------------------------------------ #
    def put(
        self,
        tenant: str,
        name: str,
        project: Any,
        message: str = "",
        scenario: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Store one project version; returns ``{tenant, name, version, …}``.

        ``project`` is a ``banger-project`` document (or any object with a
        ``to_dict()`` producing one).  Storing identical content twice costs
        one manifest lookup — every blob deduplicates.
        """
        doc = project.to_dict() if hasattr(project, "to_dict") else project
        if not isinstance(doc, dict) or "design" not in doc:
            raise StoreError(
                "a stored project must be a mapping with a 'design' document"
            )
        text = canonical_json(doc)
        with self._lock:
            self._check_quota(tenant, name, len(text))
            project_hash = fingerprint(doc)
            shell = {
                k: v for k, v in doc.items() if k not in ("design", "machine")
            }
            manifest = {
                "type": "project-manifest",
                "format": MANIFEST_FORMAT,
                "project": project_hash,
                "shell": shell,
                "design": self.blobs.put(self._deflate_design(doc["design"])),
                "machine": (
                    self.blobs.put(doc["machine"]) if "machine" in doc else None
                ),
                "scenario": (
                    self.blobs.put(scenario) if scenario is not None else None
                ),
            }
            manifest_hash = self.blobs.put(manifest)
            version = self.refs.append(tenant, name, manifest_hash, message)
            self._usage[tenant] = self._usage.get(tenant, 0) + len(text)
        return {
            "tenant": tenant,
            "name": name,
            "version": version,
            "manifest": manifest_hash,
            "project": project_hash,
        }

    def manifest(
        self, tenant: str, name: str, version: int | None = None
    ) -> dict[str, Any]:
        """The manifest document for one version (head by default)."""
        entry = self.refs.resolve(tenant, name, version)
        return self.blobs.get(entry["manifest"])

    def get(
        self, tenant: str, name: str, version: int | None = None
    ) -> dict[str, Any]:
        """The fully reinflated project document, fingerprint-verified."""
        manifest = self.manifest(tenant, name, version)
        doc = dict(manifest["shell"])
        doc["design"] = self._inflate_design(self.blobs.get(manifest["design"]))
        if manifest.get("machine"):
            doc["machine"] = self.blobs.get(manifest["machine"])
        if fingerprint(doc) != manifest["project"]:
            raise StoreError(
                f"store corruption: {tenant}/{name} reassembled to "
                f"{fingerprint(doc)[:12]}…, manifest pins "
                f"{manifest['project'][:12]}…"
            )
        return doc

    def scenario(
        self, tenant: str, name: str, version: int | None = None
    ) -> dict[str, Any] | None:
        """The scenario blob attached to one version, if any."""
        manifest = self.manifest(tenant, name, version)
        digest = manifest.get("scenario")
        return self.blobs.get(digest) if digest else None

    # ------------------------------------------------------------------ #
    # log / fork / diff
    # ------------------------------------------------------------------ #
    def log(self, tenant: str, name: str) -> list[dict[str, Any]]:
        """Version history, oldest first, with per-version project hashes."""
        history = []
        for entry in self.refs.versions(tenant, name):
            try:
                project_hash = self.blobs.get(entry["manifest"])["project"]
            except StoreError:
                project_hash = None
            history.append({**entry, "project": project_hash})
        return history

    def fork(
        self,
        tenant: str,
        name: str,
        to_tenant: str,
        to_name: str,
        version: int | None = None,
        message: str = "",
    ) -> dict[str, Any]:
        """New ref pointing at an existing manifest — no blob is copied."""
        entry = self.refs.resolve(tenant, name, version)
        with self._lock:
            self._check_quota(to_tenant, to_name, 0)
            message = message or (
                f"fork of {tenant}/{name} v{entry['v']}"
            )
            new_version = self.refs.append(
                to_tenant, to_name, entry["manifest"], message
            )
        return {
            "tenant": to_tenant,
            "name": to_name,
            "version": new_version,
            "manifest": entry["manifest"],
            "forked_from": {"tenant": tenant, "name": name, "v": entry["v"]},
        }

    def diff(
        self,
        tenant: str,
        name: str,
        version_a: int | None = None,
        version_b: int | None = None,
        to_tenant: str | None = None,
        to_name: str | None = None,
    ) -> dict[str, Any]:
        """Compare two versions component-hash by component-hash.

        Defaults compare two versions of the same project; pass
        ``to_tenant``/``to_name`` to compare across refs (e.g. a fork
        against its origin).  When design hashes differ the result carries
        node-level deltas (added/removed/changed, dotted paths into
        composites) and arc-level deltas.
        """
        entry_a = self.refs.resolve(tenant, name, version_a)
        entry_b = self.refs.resolve(
            to_tenant or tenant, to_name or name, version_b
        )
        manifest_a = self.blobs.get(entry_a["manifest"])
        manifest_b = self.blobs.get(entry_b["manifest"])
        components = {}
        for key in ("design", "machine", "scenario"):
            ha, hb = manifest_a.get(key), manifest_b.get(key)
            components[key] = {"a": ha, "b": hb, "equal": ha == hb}
        delta: dict[str, Any] = {
            "identical": entry_a["manifest"] == entry_b["manifest"],
            "a": {"v": entry_a["v"], "manifest": entry_a["manifest"]},
            "b": {"v": entry_b["v"], "manifest": entry_b["manifest"]},
            "components": components,
            "nodes": {"added": [], "removed": [], "changed": []},
            "arcs": {"added": [], "removed": []},
        }
        if not components["design"]["equal"]:
            nodes_a = self._flat_nodes(self.blobs.get(manifest_a["design"]))
            nodes_b = self._flat_nodes(self.blobs.get(manifest_b["design"]))
            delta["nodes"]["added"] = sorted(set(nodes_b) - set(nodes_a))
            delta["nodes"]["removed"] = sorted(set(nodes_a) - set(nodes_b))
            delta["nodes"]["changed"] = sorted(
                path
                for path in set(nodes_a) & set(nodes_b)
                if canonical_json(nodes_a[path]) != canonical_json(nodes_b[path])
            )
            arcs_a = self._flat_arcs(self.blobs.get(manifest_a["design"]))
            arcs_b = self._flat_arcs(self.blobs.get(manifest_b["design"]))
            delta["arcs"]["added"] = sorted(arcs_b - arcs_a)
            delta["arcs"]["removed"] = sorted(arcs_a - arcs_b)
        return delta

    def _flat_nodes(
        self, design: dict[str, Any], prefix: str = ""
    ) -> dict[str, dict[str, Any]]:
        """Dotted-path → node map over a *deflated* design, recursing into
        composite subgraph blobs.  The subgraph ref itself is excluded from
        the node's comparison key so a composite only reads "changed" when
        its own attributes change, not when its children do (the children
        report themselves)."""
        out: dict[str, dict[str, Any]] = {}
        for node in design.get("nodes", []):
            path = prefix + node["name"]
            sub = node.get("subgraph")
            out[path] = {k: v for k, v in node.items() if k != "subgraph"}
            if isinstance(sub, dict) and "__blob__" in sub:
                out.update(
                    self._flat_nodes(
                        self.blobs.get(sub["__blob__"]), path + "."
                    )
                )
        return out

    def _flat_arcs(
        self, design: dict[str, Any], prefix: str = ""
    ) -> set[str]:
        out: set[str] = set()
        for arc in design.get("arcs", []):
            out.add(
                f"{prefix}{arc['src']} -> {prefix}{arc['dst']}"
                f" [{arc.get('var', '')}]"
            )
        for node in design.get("nodes", []):
            sub = node.get("subgraph")
            if isinstance(sub, dict) and "__blob__" in sub:
                out |= self._flat_arcs(
                    self.blobs.get(sub["__blob__"]), prefix + node["name"] + "."
                )
        return out

    # ------------------------------------------------------------------ #
    # GC + stats
    # ------------------------------------------------------------------ #
    def _reachable(self, heads_only: bool = False) -> set[str]:
        """Every blob hash reachable from some ref (the GC live set)."""
        live: set[str] = set()
        design_stack: list[str] = []
        for manifest_hash in self.refs.manifests(heads_only=heads_only):
            try:
                manifest = self.blobs.get(manifest_hash)
            except StoreError:
                continue
            live.add(manifest_hash)
            for key in ("machine", "scenario"):
                if manifest.get(key):
                    live.add(manifest[key])
            if manifest.get("design"):
                design_stack.append(manifest["design"])
        while design_stack:
            digest = design_stack.pop()
            if digest in live:
                continue
            live.add(digest)
            try:
                design = self.blobs.get(digest)
            except StoreError:
                continue
            for node in design.get("nodes", []):
                sub = node.get("subgraph")
                if isinstance(sub, dict) and "__blob__" in sub:
                    design_stack.append(sub["__blob__"])
                program = node.get("program")
                if isinstance(program, dict) and "__pits__" in program:
                    live.add(program["__pits__"])
        return live

    def gc(self, max_bytes: int | None = None) -> dict[str, Any]:
        """Mark-sweep unreferenced blobs; optionally cap stored bytes after.

        Without a cap only garbage goes.  When the store still exceeds
        ``max_bytes`` afterwards, blobs reachable *only from non-head
        versions* are trimmed oldest-first too (their version entries then
        read as missing blobs) — every project's newest version always
        stays loadable, whatever the cap.
        """
        with self._lock:
            live = self._reachable()
            deleted = self.blobs.sweep(live)
            if (
                max_bytes is not None
                and self.blobs.total_bytes() > max_bytes
            ):
                deleted += self.blobs.enforce_cap(
                    max_bytes, keep=self._reachable(heads_only=True)
                )
        return {
            "deleted": len(deleted),
            "live": len(live),
            "stored_bytes": self.blobs.total_bytes(),
        }

    def stats(self) -> dict[str, Any]:
        """Repository-wide counters, including the blob tier's dedup ratio."""
        tenants = self.refs.tenants()
        return {
            "tenants": len(tenants),
            "projects": sum(len(self.refs.projects(t)) for t in tenants),
            "versions": sum(self.refs.version_count(t) for t in tenants),
            "blobs": len(self.blobs),
            "blob": self.blobs.stats.as_dict(),
            "quota": self.quota.as_dict() if self.quota else None,
        }
