"""Multi-tenant, content-addressed project storage.

Layers, bottom-up: :mod:`repro.store.evict` (the shared oldest-first disk
eviction policy, also used by the schedule service's disk cache),
:mod:`repro.store.blobs` (deduplicating blob tier keyed on
``graph.serialize`` fingerprints), :mod:`repro.store.refs` (tenant/name →
linear version history), and :mod:`repro.store.repository`
(``get/put/fork/diff/log/gc`` plus quotas).

The scenario corpus lives in :mod:`repro.store.corpus`, which is *not*
imported here: it pulls in ``repro.env`` and ``repro.apps``, and this
package must stay importable from ``repro.sched.service`` (which uses the
eviction policy) without creating an import cycle.
"""

from repro.store.blobs import BlobStats, BlobStore
from repro.store.evict import (
    dir_files,
    enforce_size_cap,
    oldest_first,
    total_bytes,
)
from repro.store.refs import RefStore, check_name
from repro.store.repository import (
    EXEMPT_TENANTS,
    ProjectRepository,
    TenantQuota,
)

__all__ = [
    "BlobStats",
    "BlobStore",
    "EXEMPT_TENANTS",
    "ProjectRepository",
    "RefStore",
    "TenantQuota",
    "check_name",
    "dir_files",
    "enforce_size_cap",
    "oldest_first",
    "total_bytes",
]
