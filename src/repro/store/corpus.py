"""The first-class scenario corpus: every stock workload, stored.

The paper's environment is a repository of *reusable* parallel designs;
this module is that repository's seed content.  It gathers the six shipped
applications (:mod:`repro.apps`, the ones ``examples/save_projects.py``
writes as JSON) and one project per :data:`repro.graph.generators.FAMILIES`
entry — including the five families added with the store (pipeline,
wavefront, ML train/apply, bitonic, cholesky) — and publishes them all
under the reserved ``corpus`` tenant.

Everything downstream draws from here: the conformance fuzzer's
``CaseGenerator`` mixes stored corpus graphs into its case stream,
``banger sweep corpus://<name>`` runs directly against a stored project,
and the store benchmark measures dedup over exactly this content.

This module imports ``repro.apps`` and ``repro.env``; it is deliberately
NOT imported from ``repro.store.__init__`` (see the note there).
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.graph.generators import FAMILIES, as_dataflow
from repro.graph.hierarchy import flatten
from repro.graph.serialize import dataflow_to_dict
from repro.graph.taskgraph import TaskGraph
from repro.store.repository import ProjectRepository

#: The reserved tenant every seeded workload lives under (quota-exempt).
CORPUS_TENANT = "corpus"


def _example_factories() -> dict[str, Callable[[], Any]]:
    """The six legacy shipped applications, by project name."""
    from repro.apps import (
        heat_design,
        lu3_design,
        lun_design,
        matmul_design,
        montecarlo_design,
        pipeline_design,
    )

    return {
        "lu_decomposition": lu3_design,
        "lu_blocked": lambda: lun_design(4),
        "heat_equation": heat_design,
        "matrix_multiply": matmul_design,
        "montecarlo_pi": montecarlo_design,
        "signal_pipeline": pipeline_design,
    }


def example_project(name: str) -> Any:
    """One legacy example as a :class:`BangerProject`, built exactly the way
    ``examples/save_projects.py`` builds it — so its content hash matches
    the JSON shipped in ``examples/`` byte for byte."""
    from repro.env.project import BangerProject
    from repro.machine import MachineParams

    factory = _example_factories()[name]
    project = BangerProject(name).set_design(factory())
    project.set_machine(
        "hypercube", 4, MachineParams(msg_startup=0.2, transmission_rate=20.0)
    )
    return project


def family_project_doc(family: str) -> dict[str, Any]:
    """One generator family as a ``banger-project`` document.

    The task graph is lifted to a drawn design (``as_dataflow``) and paired
    with the default 8-processor hypercube, giving sweeps and fuzz cases a
    complete, schedulable project.
    """
    from repro.machine import MachineParams
    from repro.machine.machine import make_machine

    design = as_dataflow(FAMILIES[family]())
    machine = make_machine("hypercube", 8, MachineParams())
    return {
        "type": "banger-project",
        "name": f"family_{family}",
        "design": dataflow_to_dict(design),
        "machine": machine.to_dict(),
    }


def example_names() -> list[str]:
    """The six legacy shipped-application names, sorted."""
    return sorted(_example_factories())


def corpus_names() -> list[str]:
    """Every seeded corpus project name, sorted (examples + families)."""
    return sorted(_example_factories()) + sorted(
        f"family_{f}" for f in FAMILIES
    )


def seed_corpus(repo: ProjectRepository) -> dict[str, dict[str, Any]]:
    """Publish the full corpus into ``repo`` under the ``corpus`` tenant.

    Idempotent by content: re-seeding an already seeded repository only
    appends new versions when content actually changed — and the blob tier
    deduplicates everything regardless.  Returns name → put() info.
    """
    out: dict[str, dict[str, Any]] = {}
    for name in sorted(_example_factories()):
        doc = example_project(name).to_dict()
        out[name] = _put_if_changed(repo, name, doc, "seed: shipped example")
    for family in sorted(FAMILIES):
        doc = family_project_doc(family)
        out[f"family_{family}"] = _put_if_changed(
            repo, f"family_{family}", doc, f"seed: {family} generator family"
        )
    return out


def _put_if_changed(
    repo: ProjectRepository, name: str, doc: dict[str, Any], message: str
) -> dict[str, Any]:
    from repro.graph.serialize import fingerprint

    if repo.refs.exists(CORPUS_TENANT, name):
        head = repo.manifest(CORPUS_TENANT, name)
        if head["project"] == fingerprint(doc):
            entry = repo.refs.head(CORPUS_TENANT, name)
            return {
                "tenant": CORPUS_TENANT,
                "name": name,
                "version": entry["v"],
                "manifest": entry["manifest"],
                "project": head["project"],
            }
    return repo.put(CORPUS_TENANT, name, doc, message=message)


# --------------------------------------------------------------------- #
# the shared in-memory corpus (fuzzing, sweeps, benchmarks)
# --------------------------------------------------------------------- #
_default: ProjectRepository | None = None
_default_lock = threading.Lock()
_taskgraphs: dict[str, TaskGraph] = {}


def default_corpus() -> ProjectRepository:
    """The process-wide, lazily seeded, in-memory corpus repository."""
    global _default
    with _default_lock:
        if _default is None:
            repo = ProjectRepository()
            seed_corpus(repo)
            _default = repo
        return _default


def corpus_taskgraph(name: str) -> TaskGraph:
    """The flattened scheduling view of one stored corpus project (cached)."""
    with _default_lock:
        cached = _taskgraphs.get(name)
    if cached is not None:
        return cached
    from repro.graph.serialize import dataflow_from_dict

    doc = default_corpus().get(CORPUS_TENANT, name)
    tg = flatten(dataflow_from_dict(doc["design"]))
    with _default_lock:
        _taskgraphs[name] = tg
    return tg
