"""Baseline suppression: fail only on findings new since a recorded run.

``banger lint --baseline old-report.sarif`` reads a previously-rendered
SARIF report (our own :func:`repro.lint.render.to_sarif` output, or any
SARIF 2.1.0 document with ``ruleId`` / ``message`` / logical locations)
and filters the current report down to findings not present in it.  The
match key is ``(rule, node, message)`` — deliberately *not* the source
line, so reformatting a program does not resurrect suppressed findings;
editing the message (which embeds the variable names involved) does.
"""

from __future__ import annotations

import json
import pathlib

from repro.lint.diagnostics import Diagnostic, Report

#: One recorded finding: (rule_id, logical node name, message text).
BaselineKey = tuple[str, str, str]


def _result_key(result: dict) -> BaselineKey:
    node = ""
    for location in result.get("locations", ()):
        for logical in location.get("logicalLocations", ()):
            if logical.get("name"):
                node = logical["name"]
                break
    return (
        str(result.get("ruleId", "")),
        node,
        str(result.get("message", {}).get("text", "")),
    )


def load_baseline(path: str | pathlib.Path) -> frozenset[BaselineKey]:
    """The finding keys recorded in a SARIF report on disk.

    Raises ``ValueError`` on files that are not SARIF-shaped, so a typo'd
    path to a project JSON fails loudly instead of suppressing nothing.
    """
    doc = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or "runs" not in doc:
        raise ValueError(f"{path}: not a SARIF report (no 'runs' array)")
    keys: set[BaselineKey] = set()
    for run in doc["runs"]:
        for result in run.get("results", ()):
            keys.add(_result_key(result))
    return frozenset(keys)


def diagnostic_key(d: Diagnostic) -> BaselineKey:
    return (d.rule_id, d.node, d.message)


def apply_baseline(report: Report, baseline: frozenset[BaselineKey]) -> Report:
    """A copy of ``report`` with baseline-recorded findings removed."""
    kept = tuple(
        d for d in report.diagnostics if diagnostic_key(d) not in baseline
    )
    return Report(kept, report.name, report.suppressed)
