"""Schedule-feasibility rules (SCH2xx).

This is the single implementation behind
:func:`repro.sched.validate.schedule_problems` — feasibility is re-derived
from first principles (completeness, processor occupancy, execution
durations, and data readiness under the machine's communication cost
model) without reusing any scheduler machinery.  Message strings are the
historical ones; the lint layer adds rule IDs and locations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.approx import TOL, approx_eq, approx_ge, approx_le
from repro.lint.diagnostics import Diagnostic, make_diagnostic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.schedule import Schedule


def schedule_diagnostics(
    schedule: "Schedule", check_durations: bool = True
) -> list[Diagnostic]:
    """Collect every feasibility violation (empty list == valid schedule).

    Rules checked
    -------------
    * SCH201 completeness — every graph task has at least one placement;
    * SCH202 occupancy — no two placements overlap on one processor;
    * SCH203 durations — each placement lasts exactly
      ``machine.exec_time(task.work)`` (skippable for imported schedules);
    * SCH204/SCH205 data readiness — every placement of a task ``t`` starts
      no earlier than, for each in-edge ``u -> t``, the finish of *some*
      copy of ``u`` plus the communication cost between their processors.
    """
    diags: list[Diagnostic] = []
    graph, machine = schedule.graph, schedule.machine

    for t in graph.task_names:
        if t not in schedule:
            diags.append(
                make_diagnostic("SCH201", f"task {t!r} was never scheduled", node=t)
            )

    for proc in machine.procs():
        timeline = schedule.on_proc(proc)
        for a, b in zip(timeline, timeline[1:]):
            if not approx_le(a.finish, b.start):
                diags.append(
                    make_diagnostic(
                        "SCH202",
                        f"processor {proc}: {a.task!r} [{a.start:g},{a.finish:g}) "
                        f"overlaps {b.task!r} [{b.start:g},{b.finish:g})",
                        node=b.task,
                    )
                )

    if check_durations:
        for entry in schedule:
            expected = machine.exec_time(graph.work(entry.task))
            if not approx_eq(entry.duration, expected):
                diags.append(
                    make_diagnostic(
                        "SCH203",
                        f"task {entry.task!r} on processor {entry.proc}: duration "
                        f"{entry.duration:g} != exec_time {expected:g}",
                        node=entry.task,
                    )
                )

    for t in graph.task_names:
        if t not in schedule:
            continue
        for entry in schedule.placements(t):
            for edge in graph.in_edges(t):
                if edge.src not in schedule:
                    diags.append(
                        make_diagnostic(
                            "SCH204",
                            f"task {t!r} depends on unscheduled {edge.src!r}",
                            node=t,
                        )
                    )
                    continue
                ready = min(
                    src.finish + machine.comm_cost(src.proc, entry.proc, edge.size)
                    for src in schedule.placements(edge.src)
                )
                if not approx_ge(entry.start, ready):
                    diags.append(
                        make_diagnostic(
                            "SCH205",
                            f"task {t!r} on processor {entry.proc} starts at "
                            f"{entry.start:g} but edge {edge.src}->{t} "
                            f"({edge.var!r}) is only ready at {ready:g}",
                            node=t,
                        )
                    )
    return diags
