"""Design-structure (DF1xx) and cross-layer (XL3xx) rules.

The structural checks are the single implementation behind
:meth:`repro.graph.dataflow.DataflowGraph.problems` — the legacy free-form
message strings are preserved verbatim so that API keeps working, while the
lint engine gets rule IDs, severities, and node locations on top.

Two analyses go beyond the legacy checker:

* :func:`race_diagnostics` — the storage-write race detector: two task
  nodes writing the same storage node with no precedence path between them
  make the stored result depend on execution order (DF110, witness pair
  reported).  This *refines* the historical blanket "multiple writers"
  rule: writers sequentialised by a precedence path are legal
  (last-writer-wins, see :func:`repro.graph.hierarchy.flatten`);
* :func:`crosslayer_diagnostics` — each node's PITS ``input``/``output``
  window is matched against its in/out arc variable labels (XL301–XL304).
"""

from __future__ import annotations

from itertools import combinations
from typing import TYPE_CHECKING

from repro.calc.parser import parse
from repro.errors import CalcSyntaxError
from repro.graph.node import StorageNode, TaskNode
from repro.lint.diagnostics import Diagnostic, make_diagnostic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.dataflow import DataflowGraph


# ------------------------------------------------------------------ #
# DF1xx — structure (the legacy DataflowGraph.problems() checks)
# ------------------------------------------------------------------ #
def design_diagnostics(
    graph: "DataflowGraph", recurse: bool = True
) -> list[Diagnostic]:
    """Every structural problem of a design, with rule IDs.

    Message strings match the historical ``DataflowGraph.problems()``
    output (nested problems keep the ``composite/...`` prefix), except
    that the blanket multiple-writers check is now the precedence-aware
    race rule DF110: only *unordered* writer pairs are reported.
    """
    diags: list[Diagnostic] = []
    if not len(graph):
        diags.append(make_diagnostic("DF101", f"graph {graph.name!r} is empty"))
    cyc = graph.find_cycle()
    if cyc:
        diags.append(
            make_diagnostic(
                "DF102",
                f"graph {graph.name!r} has a cycle: {' -> '.join(cyc)}",
                node=cyc[0],
            )
        )
    diags.extend(race_diagnostics(graph))
    for arc in graph.arcs:
        s, d = graph.node(arc.src), graph.node(arc.dst)
        if isinstance(s, StorageNode) and isinstance(d, StorageNode):
            diags.append(
                make_diagnostic(
                    "DF104",
                    f"arc {arc.src}->{arc.dst} connects two storage nodes; "
                    "data must flow through a task",
                    node=arc.dst,
                )
            )
    for comp in graph.composites:
        sub = graph.subgraph(comp.name)
        for var, target in sub.inputs.items():
            targets = [target] if isinstance(target, str) else list(target)
            for t in targets:
                if t not in sub:
                    diags.append(
                        make_diagnostic(
                            "DF105",
                            f"composite {comp.name!r}: input port {var!r} names "
                            f"unknown internal node {t!r}",
                            node=comp.name,
                        )
                    )
        for var, source in sub.outputs.items():
            if source not in sub:
                diags.append(
                    make_diagnostic(
                        "DF106",
                        f"composite {comp.name!r}: output port {var!r} names "
                        f"unknown internal node {source!r}",
                        node=comp.name,
                    )
                )
        for arc in graph.in_arcs(comp.name):
            if arc.var and arc.var not in sub.inputs:
                diags.append(
                    make_diagnostic(
                        "DF107",
                        f"composite {comp.name!r}: incoming variable {arc.var!r} "
                        "has no input port in its subgraph",
                        node=comp.name,
                    )
                )
        for arc in graph.out_arcs(comp.name):
            if arc.var and arc.var not in sub.outputs:
                diags.append(
                    make_diagnostic(
                        "DF108",
                        f"composite {comp.name!r}: outgoing variable {arc.var!r} "
                        "has no output port in its subgraph",
                        node=comp.name,
                    )
                )
        if recurse:
            for child in design_diagnostics(sub, recurse=True):
                diags.append(
                    Diagnostic(
                        child.rule_id,
                        child.severity,
                        f"{comp.name}/{child.message}",
                        node=f"{comp.name}.{child.node}" if child.node else comp.name,
                        line=child.line,
                    )
                )
    return diags


# ------------------------------------------------------------------ #
# DF110 — the storage-write race detector
# ------------------------------------------------------------------ #
def _reachable(graph: "DataflowGraph", start: str) -> set[str]:
    seen: set[str] = set()
    stack = [start]
    while stack:
        for nxt in graph.successors(stack.pop()):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return seen


def race_diagnostics(graph: "DataflowGraph") -> list[Diagnostic]:
    """Flag unordered writer pairs of each storage node (one graph level).

    Two tasks writing one storage node are a nondeterministic-result race
    unless a precedence path (through any mix of task and storage arcs)
    orders them.  The witness pair is reported; sequentialising the writers
    with a control arc clears the diagnostic — an *ordered* multi-writer
    storage is legal and takes the last writer's value (see
    :func:`repro.graph.hierarchy.flatten`).
    """
    diags: list[Diagnostic] = []
    reach: dict[str, set[str]] = {}
    for storage in graph.storages:
        writers = sorted(
            w
            for w in set(graph.predecessors(storage.name))
            if isinstance(graph.node(w), TaskNode)
        )
        if len(writers) < 2:
            continue
        for a, b in combinations(writers, 2):
            if a not in reach:
                reach[a] = _reachable(graph, a)
            if b not in reach:
                reach[b] = _reachable(graph, b)
            if b not in reach[a] and a not in reach[b]:
                diags.append(
                    make_diagnostic(
                        "DF110",
                        f"storage {storage.name!r} has multiple writers with "
                        f"no precedence path between {a!r} and {b!r}; "
                        "the stored result is nondeterministic — "
                        "sequentialise the writers or give the datum a "
                        "single producer",
                        node=storage.name,
                    )
                )
    return diags


# ------------------------------------------------------------------ #
# XL3xx — program/graph interface checks
# ------------------------------------------------------------------ #
def crosslayer_diagnostics(flat: "DataflowGraph") -> list[Diagnostic]:
    """Match each primitive node's PITS interface against its arcs.

    Runs on the expanded design so composite port routing is already
    resolved; nodes without a program are skipped (DF109 covers those),
    as are unlabelled (pure-control) arcs.
    """
    diags: list[Diagnostic] = []
    for node in flat.tasks:
        if node.is_composite or node.program is None:
            continue
        try:
            prog = parse(node.program)
        except CalcSyntaxError:
            continue  # PITS001 already reported by the program analyzer
        in_vars = {a.var for a in flat.in_arcs(node.name) if a.var}
        out_vars = {a.var for a in flat.out_arcs(node.name) if a.var}
        prog_in, prog_out = set(prog.inputs), set(prog.outputs)
        for var in sorted(in_vars - prog_in):
            diags.append(
                make_diagnostic(
                    "XL301",
                    f"incoming variable {var!r} is not declared as an input "
                    f"of {node.name!r}'s program",
                    node=node.name,
                )
            )
        for var in sorted(prog_in - in_vars):
            diags.append(
                make_diagnostic(
                    "XL304",
                    f"program input {var!r} is never supplied by any "
                    "incoming arc",
                    node=node.name,
                )
            )
        for var in sorted(out_vars - prog_out):
            diags.append(
                make_diagnostic(
                    "XL302",
                    f"outgoing arc carries {var!r}, which {node.name!r}'s "
                    "program never produces",
                    node=node.name,
                )
            )
        for var in sorted(prog_out - out_vars):
            diags.append(
                make_diagnostic(
                    "XL303",
                    f"program output {var!r} has no consumer "
                    "(no outgoing arc carries it)",
                    node=node.name,
                )
            )
    return diags
