"""The single lint entry points: design, project, schedule.

Everything the environment knows how to check flows through here:
:func:`lint_project` is what ``env/feedback.py`` and the ``banger lint`` /
``banger feedback`` CLI commands delegate to.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.calc.analyze import analyze
from repro.graph.hierarchy import expand
from repro.graph.node import TaskNode
from repro.lint.design import crosslayer_diagnostics, design_diagnostics
from repro.lint.diagnostics import Diagnostic, Report, make_diagnostic
from repro.lint.machinefit import machine_diagnostics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.env.project import BangerProject
    from repro.graph.dataflow import DataflowGraph
    from repro.machine.machine import TargetMachine
    from repro.sched.schedule import Schedule
    from repro.sim.plan import CommPlan


def lint_design(
    design: "DataflowGraph | None",
    machine: "TargetMachine | None" = None,
    name: str = "",
    suppress: Iterable[str] = (),
) -> Report:
    """Run every static analysis over a design (and machine, if given)."""
    diags: list[Diagnostic] = []
    if design is None:
        diags.append(
            make_diagnostic("DF100", "no design yet — draw the dataflow graph first")
        )
        return Report(tuple(diags), name or "design").suppress(suppress)

    diags.extend(design_diagnostics(design))

    try:
        flat = expand(design)
    except Exception:
        flat = None  # structural problems already reported above
    nodes = [
        n
        for n in (flat.tasks if flat is not None else design.tasks)
        if isinstance(n, TaskNode) and not n.is_composite
    ]

    # per-program analysis is content-addressed: unchanged programs are
    # answered from the incremental cache (repro.analysis.cache)
    from repro.analysis.cache import cached_program_diagnostics

    for node in nodes:
        if node.program is None:
            diags.append(
                make_diagnostic("DF109", "no PITS program yet", node=node.name)
            )
            continue
        program_diags = (
            cached_program_diagnostics(node.program)
            if isinstance(node.program, str)
            else analyze(node.program)
        )
        for d in program_diags:
            diags.append(
                Diagnostic(d.rule or "PITS001", d.severity, d.message,
                           node=node.name, line=d.line)
            )

    if flat is not None:
        diags.extend(crosslayer_diagnostics(flat))

    if machine is not None:
        diags.extend(machine_diagnostics(nodes, machine, flat))

    return Report(tuple(diags), name or design.name).suppress(suppress)


def lint_project(
    project: "BangerProject",
    suppress: Iterable[str] = (),
    concurrency: bool = False,
    scheduler: str = "mh",
) -> Report:
    """Lint a whole Banger project: design + programs + machine fit.

    With ``concurrency=True`` the project is additionally scheduled (with
    ``scheduler``), lowered to its communication plan, and the plan is
    verified deadlock-free (the ``CG5xx`` family) — the same static gate
    the code generators rely on.
    """
    design = project.design if len(project.design) else None
    report = lint_design(
        design, project.machine, name=project.name, suppress=suppress
    )
    if concurrency and design is not None and not report.error_count:
        from repro.sim.plan import build_comm_plan

        plan = build_comm_plan(project.schedule(scheduler))
        extra = lint_comm_plan(plan, name=project.name).diagnostics
        report = Report(report.diagnostics + extra, report.name).suppress(suppress)
    return report


def lint_comm_plan(plan: "CommPlan", name: str = "") -> Report:
    """Verify one communication plan's channel protocol (CG5xx).

    Results are memoized on the plan's channel-op signature, so repeated
    lints of an unchanged schedule are answered from the analysis cache.
    """
    from repro.analysis.cache import cached_plan_diagnostics

    return Report(tuple(cached_plan_diagnostics(plan)), name)


def lint_schedule(
    schedule: "Schedule",
    check_durations: bool = True,
    suppress: Iterable[str] = (),
) -> Report:
    """Re-derive a schedule's feasibility as a lint report (SCH2xx)."""
    from repro.lint.schedrules import schedule_diagnostics

    return Report(
        tuple(schedule_diagnostics(schedule, check_durations=check_durations)),
        schedule.graph.name,
    ).suppress(suppress)
