"""The common diagnostic record and report every layer reports through."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.severity import Severity
from repro.lint.rules import Rule, get_rule


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation with its location.

    ``node`` is the (possibly dot-namespaced) culprit node name, empty for
    graph- or machine-level findings; ``line`` is the PITS source line
    within the node's program, 0 when not applicable.
    """

    rule_id: str
    severity: Severity
    message: str
    node: str = ""
    line: int = 0

    @property
    def rule(self) -> Rule:
        return get_rule(self.rule_id)

    @property
    def category(self) -> str:
        return self.rule.category

    def __str__(self) -> str:
        where = f"[{self.node}] " if self.node else ""
        line = f" (line {self.line})" if self.line else ""
        return f"{self.severity.value} {self.rule_id}: {where}{self.message}{line}"


def make_diagnostic(
    rule_id: str,
    message: str,
    node: str = "",
    line: int = 0,
    severity: Severity | None = None,
) -> Diagnostic:
    """Build a diagnostic, defaulting severity from the rule registry."""
    rule = get_rule(rule_id)
    return Diagnostic(rule_id, severity or rule.severity, message, node, line)


@dataclass(frozen=True)
class Report:
    """The result of one lint pass: an ordered list of diagnostics."""

    diagnostics: tuple[Diagnostic, ...] = ()
    name: str = ""
    suppressed: tuple[str, ...] = field(default=(), compare=False)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:  # truthiness = "has findings", like a list
        return bool(self.diagnostics)

    # -------------------------------------------------------------- #
    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def notes(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def error_count(self) -> int:
        return len(self.errors)

    @property
    def warning_count(self) -> int:
        return len(self.warnings)

    @property
    def ok(self) -> bool:
        """True when nothing blocks scheduling or code generation —
        exactly "no ERROR diagnostics"."""
        return self.error_count == 0

    # -------------------------------------------------------------- #
    def by_rule(self, rule_id: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    def by_category(self, category: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.category == category]

    def for_node(self, node: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.node == node]

    def suppress(self, rule_ids: Iterable[str]) -> "Report":
        """A copy with the given rule IDs filtered out (recorded in
        ``suppressed`` so renderers can say what was hidden)."""
        hidden = tuple(sorted(set(rule_ids)))
        if not hidden:
            return self
        kept = tuple(d for d in self.diagnostics if d.rule_id not in hidden)
        return replace(
            self,
            diagnostics=kept,
            suppressed=tuple(sorted(set(self.suppressed) | set(hidden))),
        )

    def summary(self) -> str:
        parts = [
            f"{self.error_count} error(s)",
            f"{self.warning_count} warning(s)",
        ]
        if self.notes:
            parts.append(f"{len(self.notes)} note(s)")
        if self.suppressed:
            parts.append(f"suppressed: {', '.join(self.suppressed)}")
        return ", ".join(parts)

    def render(self) -> str:
        """Human-readable one-line-per-finding text."""
        lines = [f"lint {self.name or 'project'}: {self.summary()}"]
        lines.extend(f"  {d}" for d in self.diagnostics)
        return "\n".join(lines)
