"""Unified static-analysis subsystem: one rule registry, one report model.

The paper's Principle 3 — instant feedback wherever possible — used to be
served by three disconnected checkers (PITS program analysis, design
structure validation, schedule feasibility) with free-form string messages.
This package gives them a shared vocabulary:

* :class:`Rule` / :data:`RULES` — the registry of stable rule IDs
  (``PITS0xx``, ``DF1xx``, ``SCH2xx``, ``XL3xx``, ``MF4xx``), each with a
  severity, category, and fix hint;
* :class:`Diagnostic` / :class:`Report` — the common finding record and
  the aggregate every layer reports through;
* :func:`lint_project` / :func:`lint_design` / :func:`lint_schedule` — the
  entry points ``env/feedback.py`` and the CLI delegate to;
* text / JSON / SARIF 2.1.0 renderers for terminals, tooling, and GitHub
  annotation.

See ``docs/diagnostics.md`` for the full rule catalogue with triggering
examples.
"""

from repro.severity import Severity
from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.diagnostics import Diagnostic, Report, make_diagnostic
from repro.lint.engine import (
    lint_comm_plan,
    lint_design,
    lint_project,
    lint_schedule,
)
from repro.lint.render import (
    render_json,
    render_sarif,
    render_text,
    to_json,
    to_sarif,
)
from repro.lint.rules import RULES, Rule, all_rules, get_rule, register

__all__ = [
    "Diagnostic",
    "Report",
    "Rule",
    "RULES",
    "Severity",
    "all_rules",
    "apply_baseline",
    "get_rule",
    "lint_comm_plan",
    "lint_design",
    "lint_project",
    "lint_schedule",
    "load_baseline",
    "make_diagnostic",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "to_json",
    "to_sarif",
]
