"""Machine/design fit advisories (MF4xx).

MF401/MF402 are the historical ``Feedback.machine_notes`` (same message
text, now with rule IDs and WARNING severity); MF403/MF404 are new
INFO-level advisories relating data-parallel width and topology shape to
the machine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.calc import ast
from repro.calc.parser import parse
from repro.errors import CalcSyntaxError
from repro.lint.diagnostics import Diagnostic, make_diagnostic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.dataflow import DataflowGraph
    from repro.graph.node import TaskNode
    from repro.machine.machine import TargetMachine


def _forall_width(loop: ast.For) -> int | None:
    """Iteration count of a forall with constant bounds, else None."""
    if not (isinstance(loop.start, ast.Num) and isinstance(loop.stop, ast.Num)):
        return None
    step = 1.0
    if loop.step is not None:
        if not isinstance(loop.step, ast.Num):
            return None
        step = loop.step.value
    if step <= 0:
        return None
    width = int((loop.stop.value - loop.start.value) // step) + 1
    return width if width >= 1 else None


def machine_diagnostics(
    nodes: Sequence["TaskNode"],
    machine: "TargetMachine",
    flat: "DataflowGraph | None" = None,
) -> list[Diagnostic]:
    """Advisories about how well the design fits the target machine."""
    diags: list[Diagnostic] = []
    n_tasks = len(nodes)
    if machine.n_procs > n_tasks:
        diags.append(
            make_diagnostic(
                "MF401",
                f"machine has {machine.n_procs} processors but the design has "
                f"only {n_tasks} tasks; some processors will idle",
            )
        )
    if machine.params.msg_startup > 0 and n_tasks > 1:
        mean_work = sum(n.work for n in nodes) / n_tasks if n_tasks else 0.0
        if machine.params.msg_startup > 10 * max(mean_work, 1e-12):
            diags.append(
                make_diagnostic(
                    "MF402",
                    "message startup cost dwarfs mean task work; expect the "
                    "scheduler to serialise the design (consider grain packing)",
                )
            )

    # MF403: a constant-width forall narrower than the machine caps the
    # usable parallelism of node splitting.
    for node in nodes:
        if node.program is None:
            continue
        try:
            prog = parse(node.program)
        except CalcSyntaxError:
            continue
        for s in ast.walk_stmts(prog.body):
            if isinstance(s, ast.For) and s.parallel:
                width = _forall_width(s)
                if width is not None and width < machine.n_procs:
                    diags.append(
                        make_diagnostic(
                            "MF403",
                            f"forall spans only {width} iteration(s) but the "
                            f"machine has {machine.n_procs} processors; "
                            f"splitting this node cannot fill the machine",
                            node=node.name,
                            line=s.line,
                        )
                    )

    # MF404: store-and-forward cost grows with distance; a high
    # communication-to-computation ratio on a high-diameter topology makes
    # remote placements expensive.
    if flat is not None and machine.n_procs > 1 and n_tasks > 0:
        sizes = [a.size for a in flat.arcs if a.size > 0]
        if sizes:
            diameter = machine.topology.diameter()
            mean_size = sum(sizes) / len(sizes)
            mean_exec = sum(machine.exec_time(n.work) for n in nodes) / n_tasks
            if mean_exec > 0 and diameter >= 3:
                ccr = machine.params.comm_time(mean_size, diameter) / mean_exec
                if ccr > 1.0:
                    diags.append(
                        make_diagnostic(
                            "MF404",
                            f"topology {machine.topology.name!r} has diameter "
                            f"{diameter} and the design's communication-to-"
                            f"computation ratio at that distance is {ccr:.1f}; "
                            "expect communication-bound schedules across "
                            "distant processors",
                        )
                    )
    return diags
