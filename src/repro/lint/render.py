"""Report renderers: human text, JSON, and SARIF 2.1.0.

The SARIF output follows the OASIS 2.1.0 schema closely enough for GitHub
code-scanning upload: one run, one driver with the rule metadata of every
fired rule, results with logical (node) and, when a source line is known,
physical locations.
"""

from __future__ import annotations

import json

from repro.severity import Severity
from repro.lint.diagnostics import Report
from repro.lint.rules import get_rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: lint severity -> SARIF result level
_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def render_text(report: Report) -> str:
    """One line per finding plus a summary headline."""
    return report.render()


def to_json(report: Report) -> dict:
    """A stable dict form of the report (see ``render_json``)."""
    return {
        "name": report.name,
        "ok": report.ok,
        "summary": {
            "errors": report.error_count,
            "warnings": report.warning_count,
            "notes": len(report.notes),
        },
        "suppressed": list(report.suppressed),
        "diagnostics": [
            {
                "rule": d.rule_id,
                "severity": d.severity.value,
                "category": d.category,
                "message": d.message,
                "node": d.node,
                "line": d.line,
            }
            for d in report.diagnostics
        ],
    }


def render_json(report: Report) -> str:
    return json.dumps(to_json(report), indent=2)


def to_sarif(report: Report, artifact: str | None = None) -> dict:
    """SARIF 2.1.0 document for ``report``.

    ``artifact`` is the analysed file (the project JSON); when given, every
    result carries a physical location pointing at it so GitHub can anchor
    annotations.
    """
    fired = sorted({d.rule_id for d in report.diagnostics})
    rule_index = {rid: i for i, rid in enumerate(fired)}
    rules = []
    for rid in fired:
        rule = get_rule(rid)
        rules.append(
            {
                "id": rule.id,
                "shortDescription": {"text": rule.summary},
                "help": {"text": rule.hint or rule.summary},
                "defaultConfiguration": {"level": _SARIF_LEVEL[rule.severity]},
                "properties": {"category": rule.category},
            }
        )

    results = []
    for d in report.diagnostics:
        result: dict = {
            "ruleId": d.rule_id,
            "ruleIndex": rule_index[d.rule_id],
            "level": _SARIF_LEVEL[d.severity],
            "message": {"text": d.message},
        }
        location: dict = {}
        if d.node:
            location["logicalLocations"] = [
                {"name": d.node, "kind": "element"}
            ]
        if artifact:
            physical: dict = {"artifactLocation": {"uri": artifact}}
            if d.line > 0:
                physical["region"] = {"startLine": d.line}
            location["physicalLocation"] = physical
        if location:
            result["locations"] = [location]
        results.append(result)

    run: dict = {
        "tool": {
            "driver": {
                "name": "banger-lint",
                "informationUri": "https://example.invalid/banger",
                "rules": rules,
            }
        },
        "results": results,
    }
    if artifact:
        run["artifacts"] = [{"location": {"uri": artifact}}]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def render_sarif(report: Report, artifact: str | None = None) -> str:
    return json.dumps(to_sarif(report, artifact), indent=2)
