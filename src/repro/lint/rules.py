"""The rule registry: every diagnostic the environment can emit, by ID.

Rule IDs are stable and namespaced by layer:

* ``PITS0xx`` — PITS program analysis (:mod:`repro.calc.analyze`);
* ``PITS1xx`` — PITS value-flow analysis (:mod:`repro.analysis.absint`);
* ``DF1xx``   — dataflow-design structure (:mod:`repro.lint.design`);
* ``SCH2xx``  — schedule feasibility (:mod:`repro.lint.schedrules`);
* ``XL3xx``   — cross-layer program/graph interface (:mod:`repro.lint.design`);
* ``MF4xx``   — machine/design fit advisories (:mod:`repro.lint.machinefit`);
* ``CG5xx``   — generated-code concurrency (:mod:`repro.analysis.concurrency`).

Each rule carries a default severity, a category, a one-line summary, and a
fix hint; :mod:`docs/diagnostics.md` catalogues them with triggering
examples (a test keeps the catalogue in sync with this registry).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.severity import Severity

#: Rule categories, in report order.
CATEGORIES = ("pits", "design", "cross-layer", "machine", "schedule", "codegen")


@dataclass(frozen=True)
class Rule:
    """One entry of the diagnostics catalogue."""

    id: str
    severity: Severity
    category: str
    summary: str
    hint: str = ""

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(f"rule {self.id}: unknown category {self.category!r}")


RULES: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return rule


def get_rule(rule_id: str) -> Rule:
    try:
        return RULES[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule id {rule_id!r}") from None


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by ID."""
    return [RULES[k] for k in sorted(RULES)]


def _r(rule_id: str, severity: Severity, category: str, summary: str, hint: str) -> None:
    register(Rule(rule_id, severity, category, summary, hint))


# ------------------------------------------------------------------ #
# PITS0xx — PITS program analysis
# ------------------------------------------------------------------ #
_r("PITS001", Severity.ERROR, "pits", "syntax error",
   "fix the PITS source so it parses; the message names the offending line")
_r("PITS002", Severity.ERROR, "pits", "variable is not declared",
   "declare the variable in the input, output, or local window")
_r("PITS003", Severity.ERROR, "pits", "input is read-only",
   "copy the input into a local before modifying it")
_r("PITS004", Severity.ERROR, "pits", "unknown function",
   "use a calculator builtin (see docs/LANGUAGE.md for the catalogue)")
_r("PITS005", Severity.ERROR, "pits", "wrong number of arguments",
   "match the builtin's arity shown in the message")
_r("PITS006", Severity.ERROR, "pits", "output is never assigned",
   "assign the output somewhere, or remove it from the output window")
_r("PITS007", Severity.WARNING, "pits", "input is never used",
   "use the input or remove it (an unused input still costs a message)")
_r("PITS008", Severity.WARNING, "pits", "local is never used",
   "delete the unused local declaration")
_r("PITS009", Severity.WARNING, "pits", "input shadows a constant",
   "rename the input so PI/E keep their usual meaning")
_r("PITS010", Severity.ERROR, "pits", "loop variable is an input",
   "loop variables are written by the loop; use a different name")
_r("PITS011", Severity.ERROR, "pits", "forall body assigns a scalar",
   "forall iterations must be independent; write array elements indexed "
   "by the loop variable")
_r("PITS012", Severity.ERROR, "pits", "forall writes non-disjoint elements",
   "make the first subscript of every write the forall loop variable")
_r("PITS013", Severity.ERROR, "pits", "nested forall",
   "make the inner loop a plain for; only one level can be split")
_r("PITS014", Severity.WARNING, "pits", "display inside forall",
   "move the display after the loop for deterministic output order")
_r("PITS015", Severity.ERROR, "pits", "local read before assignment",
   "assign the local on every path before reading it")
_r("PITS016", Severity.ERROR, "pits", "scalar/array kind mismatch",
   "initialise arrays with zeros()/ones() or a literal before subscripting; "
   "never subscript a scalar")
_r("PITS017", Severity.WARNING, "pits", "statement after outputs are final",
   "delete trailing statements that cannot affect any output")

# ------------------------------------------------------------------ #
# PITS1xx — PITS value-flow analysis (abstract interpretation)
# ------------------------------------------------------------------ #
_r("PITS101", Severity.ERROR, "pits", "guaranteed division by zero",
   "the divisor is the constant 0 on every execution; fix the expression "
   "computing it")
_r("PITS102", Severity.ERROR, "pits", "guaranteed domain error",
   "the argument range is entirely outside the function's domain "
   "(sqrt of a negative, ln of a non-positive, asin/acos outside [-1, 1])")
_r("PITS103", Severity.WARNING, "pits", "branch can never execute",
   "the condition is decided by constants; delete the dead branch or fix "
   "the condition")
_r("PITS104", Severity.WARNING, "pits", "output is provably constant",
   "the output ignores every input; either that is intentional or a "
   "variable was shadowed by a literal")
_r("PITS105", Severity.WARNING, "pits", "dead store",
   "the assigned value is overwritten before any statement can read it; "
   "delete the first assignment")

# ------------------------------------------------------------------ #
# DF1xx — design structure
# ------------------------------------------------------------------ #
_r("DF100", Severity.ERROR, "design", "no design yet",
   "draw the dataflow graph first")
_r("DF101", Severity.ERROR, "design", "graph is empty",
   "add at least one task node")
_r("DF102", Severity.ERROR, "design", "graph has a cycle",
   "remove an arc of the reported cycle; dataflow designs must be acyclic")
_r("DF104", Severity.ERROR, "design", "arc connects two storage nodes",
   "route the data through a task node")
_r("DF105", Severity.ERROR, "design", "composite input port names unknown node",
   "point the port map at an existing node of the subgraph")
_r("DF106", Severity.ERROR, "design", "composite output port names unknown node",
   "point the port map at an existing node of the subgraph")
_r("DF107", Severity.ERROR, "design", "incoming variable has no input port",
   "add the variable to the composite subgraph's input port map")
_r("DF108", Severity.ERROR, "design", "outgoing variable has no output port",
   "add the variable to the composite subgraph's output port map")
_r("DF109", Severity.ERROR, "design", "task has no PITS program",
   "open the calculator panel on the node and write its routine")
_r("DF110", Severity.ERROR, "design", "storage-write race",
   "add a precedence arc between the two writers (or merge them) so the "
   "stored result is deterministic")

# ------------------------------------------------------------------ #
# SCH2xx — schedule feasibility
# ------------------------------------------------------------------ #
_r("SCH201", Severity.ERROR, "schedule", "task was never scheduled",
   "every task of the graph needs at least one placement")
_r("SCH202", Severity.ERROR, "schedule", "placements overlap on a processor",
   "shift one of the overlapping placements; a processor runs one task "
   "at a time")
_r("SCH203", Severity.ERROR, "schedule", "placement duration mismatch",
   "set the placement's duration to machine.exec_time(task.work)")
_r("SCH204", Severity.ERROR, "schedule", "task depends on unscheduled task",
   "schedule the predecessor first")
_r("SCH205", Severity.ERROR, "schedule", "task starts before its data is ready",
   "delay the start past every predecessor's finish plus communication cost")

# ------------------------------------------------------------------ #
# XL3xx — cross-layer interface
# ------------------------------------------------------------------ #
_r("XL301", Severity.ERROR, "cross-layer", "incoming variable not a program input",
   "declare the arc's variable in the node's input window, or relabel "
   "the arc")
_r("XL302", Severity.ERROR, "cross-layer", "outgoing variable never produced",
   "the node's program must declare (and assign) the arc's variable as "
   "an output")
_r("XL303", Severity.WARNING, "cross-layer", "program output has no consumer",
   "connect the output to a storage node or downstream task, or drop it")
_r("XL304", Severity.ERROR, "cross-layer", "program input never supplied",
   "draw an arc carrying the variable into the node")

# ------------------------------------------------------------------ #
# MF4xx — machine/design fit
# ------------------------------------------------------------------ #
_r("MF401", Severity.WARNING, "machine", "more processors than tasks",
   "shrink the machine or split data-parallel nodes to add tasks")
_r("MF402", Severity.WARNING, "machine", "message startup dwarfs task work",
   "pack tasks into larger grains, or pick a machine with cheaper messages")
_r("MF403", Severity.INFO, "machine", "forall width below processor count",
   "a forall with fewer iterations than processors cannot use the whole "
   "machine once split")
_r("MF404", Severity.INFO, "machine", "high CCR on a high-diameter topology",
   "communication-bound designs schedule better on denser topologies "
   "(hypercube, full)")

# ------------------------------------------------------------------ #
# CG5xx — generated-code concurrency (communication-plan verification)
# ------------------------------------------------------------------ #
_r("CG501", Severity.ERROR, "codegen", "generated program deadlocks",
   "the per-processor send/receive sequences cannot all complete under "
   "blocking queue semantics; re-derive the schedule or report a codegen bug")
_r("CG502", Severity.ERROR, "codegen", "receive has no matching send",
   "a processor blocks forever waiting on a channel nobody sends on; the "
   "communication plan is missing a producer")
_r("CG503", Severity.WARNING, "codegen", "message is never received",
   "a sent message is never consumed; the channel stays full for the "
   "lifetime of the program")
_r("CG504", Severity.ERROR, "codegen", "channel carries more than one message",
   "each (producer, consumer, variable, processor) channel must be used by "
   "exactly one send and one receive")
_r("CG505", Severity.WARNING, "codegen", "send to the sender's own processor",
   "same-processor data transfer should be lowered to a local store read, "
   "not a queue message")
